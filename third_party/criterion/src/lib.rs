//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], benchmark groups with
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Differences from upstream, deliberately accepted: no warm-up phase,
//! no statistical analysis or outlier detection, no HTML reports. Each
//! benchmark runs `sample_size` samples and prints the per-iteration
//! mean and min wall-clock time — enough to compare runs by eye and to
//! keep `cargo bench` functional offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. Only the variant the
/// workspace uses is provided; it never batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every single routine invocation.
    PerIteration,
    /// Let the harness pick a batch size (treated as per-iteration here).
    SmallInput,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            iters_per_sample: 1,
            results: Vec::new(),
        }
    }

    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.results
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.results.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.results.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.results.iter().sum();
        let mean = total / self.results.len() as u32;
        let min = self.results.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {mean:>12?}   min {min:>12?}   ({} samples)",
            self.results.len()
        );
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Hook for [`criterion_main!`]; upstream parses CLI args here.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Hook for [`criterion_main!`]; upstream prints the final summary.
    pub fn final_summary(&self) {}

    fn run_one<F>(&mut self, id: &str, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Bundles benchmark functions under one name, optionally with a custom
/// [`Criterion`] configuration. Both upstream invocation forms are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Criterion {
        Criterion::default().sample_size(3)
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u32;
        quiet().bench_function("counter", |b| b.iter(|| runs += 1));
        // 3 samples x 1 iter each.
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_reruns_setup_per_iteration() {
        let mut setups = 0u32;
        quiet().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quiet();
        let mut group = c.benchmark_group("g");
        for n in [1u32, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| b.iter(|| n + 1));
        }
        group.bench_with_input(BenchmarkId::new("sub", 3), &3u32, |b, &n| b.iter(|| n + 1));
        group.finish();
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench, noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn both_group_macro_forms_expand() {
        plain_group();
        configured_group();
    }
}
