//! Anatomy of the inter-blockchain machinery, without the session sugar:
//! drive the BTC simulator, the PSC chain, and the PayJudger contract
//! directly through their public APIs.
//!
//! ```text
//! cargo run --example cross_chain_anatomy
//! ```

use btcfast_suite::btcsim::chain::Chain;
use btcfast_suite::btcsim::miner::Miner;
use btcfast_suite::btcsim::params::ChainParams;
use btcfast_suite::btcsim::spv::SpvEvidence;
use btcfast_suite::btcsim::wallet::Wallet;
use btcfast_suite::btcsim::Amount;
use btcfast_suite::crypto::keys::KeyPair;
use btcfast_suite::crypto::Hash256;
use btcfast_suite::payjudger::contract::PayJudger;
use btcfast_suite::payjudger::types::JudgerConfig;
use btcfast_suite::payjudger::PayJudgerClient;
use btcfast_suite::pscsim::params::PscParams;
use btcfast_suite::pscsim::PscChain;
use std::sync::Arc;

fn main() {
    // ---------------------------------------------------------------- BTC
    println!("[1] Bitcoin side: mine a funded chain and a merchant payment");
    let params = ChainParams::regtest();
    let mut btc = Chain::new(params.clone());
    let customer_btc = Wallet::from_seed(b"anatomy customer");
    let merchant_btc = Wallet::from_seed(b"anatomy merchant");
    let mut miner = Miner::new(params.clone(), customer_btc.address());

    for i in 1..=2u64 {
        let block = miner.mine_block(&btc, vec![], i * 600);
        btc.submit_block(block).unwrap();
    }
    println!(
        "    chain height {}, customer balance {}",
        btc.height(),
        customer_btc.balance(&btc)
    );

    let pay = customer_btc
        .create_payment(
            &btc,
            merchant_btc.address(),
            Amount::from_sats(2_500_000).unwrap(),
            Amount::from_sats(800).unwrap(),
            Some(b"escrow:0/payment:0".to_vec()), // OP_RETURN binding
        )
        .unwrap();
    let txid = pay.txid();
    let b3 = miner.mine_block(&btc, vec![pay], 1800);
    btc.submit_block(b3).unwrap();
    for i in 4..=9u64 {
        let block = miner.mine_block(&btc, vec![], i * 600);
        btc.submit_block(block).unwrap();
    }
    println!(
        "    payment {} buried under {} confirmations",
        txid,
        btc.confirmations(&txid).unwrap()
    );

    // ---------------------------------------------------------------- PSC
    println!("[2] PSC side: deploy PayJudger, fund an escrow");
    let mut psc = PscChain::new(PscParams::ethereum_like());
    psc.register_code(Arc::new(PayJudger));
    let customer = KeyPair::from_seed(b"anatomy psc customer");
    let merchant = KeyPair::from_seed(b"anatomy psc merchant");
    psc.faucet(customer.address().into(), 1_000_000_000_000);
    psc.faucet(merchant.address().into(), 1_000_000_000_000);

    let judger_config = JudgerConfig {
        checkpoint: Hash256::ZERO,
        min_target_bits: params.pow_limit_bits.0,
        challenge_window_secs: 600,
        min_evidence_blocks: 6,
    };
    let deploy = PayJudgerClient::deploy_tx(&customer, 0, &judger_config, 20);
    let deploy_hash = psc.submit_transaction(deploy).unwrap();
    psc.produce_block(15);
    let contract = psc
        .receipt(&deploy_hash)
        .unwrap()
        .contract_address
        .expect("deployed");
    let judger = PayJudgerClient::new(contract, 20);
    println!("    PayJudger at {contract}");

    let deposit = judger.deposit_tx(&customer, 1, 5_000_000);
    psc.submit_transaction(deposit).unwrap();
    psc.produce_block(30);
    let escrow = judger.escrow(&psc, customer.address().into()).unwrap();
    println!(
        "    escrow balance {} / locked {}",
        escrow.balance, escrow.locked
    );

    // ------------------------------------------------------- registration
    println!("[3] Register the BTC payment intent with the escrow");
    let open = judger.open_payment_tx(
        &customer,
        2,
        merchant.address().into(),
        txid,
        2_500_000,
        3_000_000,
    );
    let open_hash = psc.submit_transaction(open).unwrap();
    psc.produce_block(45);
    let payment_id =
        PayJudgerClient::payment_id_from(psc.receipt(&open_hash).unwrap()).expect("opened");
    println!("    payment id {payment_id}, collateral 3,000,000 locked");

    // ----------------------------------------------------------- dispute
    println!("[4] A (frivolous) dispute: the merchant claims non-payment");
    let dispute = judger.dispute_tx(&merchant, 0, customer.address().into(), payment_id);
    psc.submit_transaction(dispute).unwrap();
    psc.produce_block(60);

    println!("[5] The customer answers with PoW evidence from the BTC chain");
    let evidence = SpvEvidence::from_chain(&btc, 1, btc.height(), Some(&txid));
    println!(
        "    segment of {} headers, inclusion proof depth {}",
        evidence.segment.len(),
        evidence.inclusion.as_ref().unwrap().proof.depth()
    );
    let submit = judger.submit_evidence_tx(
        &customer,
        3,
        customer.address().into(),
        payment_id,
        evidence,
    );
    let submit_hash = psc.submit_transaction(submit).unwrap();
    psc.produce_block(75);
    let receipt = psc.receipt(&submit_hash).unwrap();
    println!(
        "    evidence verified on-chain for {} gas",
        receipt.gas_used
    );

    println!("[6] After the evidence window, anyone triggers judgment");
    psc.produce_block(800); // window (600 s) passes
    let judge = judger.judge_tx(&merchant, 1, customer.address().into(), payment_id);
    let judge_hash = psc.submit_transaction(judge).unwrap();
    psc.produce_block(815);
    let verdict = PayJudgerClient::verdict_from(psc.receipt(&judge_hash).unwrap()).unwrap();
    println!("    verdict: {verdict:?}");

    let escrow = judger.escrow(&psc, customer.address().into()).unwrap();
    println!(
        "    escrow after judgment: balance {} / locked {}",
        escrow.balance, escrow.locked
    );
    assert_eq!(escrow.locked, 0);
    assert_eq!(escrow.balance, 5_000_000); // honest customer keeps everything
    println!("\nOK: the PoW judgment dismissed the frivolous dispute.");
}
