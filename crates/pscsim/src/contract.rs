//! The contract runtime: the [`Contract`] trait, execution environment, and
//! the gas-metered [`Storage`] interface contracts persist state through.

use crate::account::AccountId;
use crate::codec::CodecError;
use crate::gas::{Gas, GasMeter, GasSchedule, OutOfGas};
use crate::state::{StateError, WorldState};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The execution environment visible to a contract call.
#[derive(Clone, Copy, Debug)]
pub struct Env {
    /// The externally owned account that signed the transaction.
    pub caller: AccountId,
    /// The contract's own account.
    pub contract: AccountId,
    /// Native value attached to the call (already credited to the contract
    /// when the method runs; reverts return it).
    pub value: u128,
    /// Number of the block including the call.
    pub block_number: u64,
    /// Timestamp of the block including the call.
    pub block_time: u64,
}

/// An event emitted by a contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The emitting contract.
    pub contract: AccountId,
    /// Event name.
    pub topic: String,
    /// ABI-encoded payload.
    pub data: Vec<u8>,
}

/// Contract execution failures. `Revert` carries the contract's message;
/// everything reverts state (the fee is still charged, as on Ethereum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// Explicit revert by contract logic.
    Revert(String),
    /// Gas limit exhausted.
    OutOfGas(OutOfGas),
    /// The method name is not part of the contract's ABI.
    UnknownMethod(String),
    /// Call arguments failed to decode.
    BadArguments(CodecError),
    /// A contract-initiated transfer exceeded its balance.
    InsufficientContractBalance {
        /// Balance available to the contract.
        available: u128,
        /// Amount requested.
        requested: u128,
    },
    /// A contract-initiated transfer would overflow the recipient's
    /// `u128` balance; the call reverts instead of aborting the process.
    BalanceOverflow {
        /// The recipient whose balance cannot absorb the transfer.
        account: AccountId,
    },
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Revert(msg) => write!(f, "reverted: {msg}"),
            ContractError::OutOfGas(e) => write!(f, "{e}"),
            ContractError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ContractError::BadArguments(e) => write!(f, "bad call arguments: {e}"),
            ContractError::InsufficientContractBalance {
                available,
                requested,
            } => write!(
                f,
                "contract balance {available} cannot cover transfer of {requested}"
            ),
            ContractError::BalanceOverflow { account } => {
                write!(f, "transfer would overflow the balance of {account}")
            }
        }
    }
}

impl Error for ContractError {}

impl From<OutOfGas> for ContractError {
    fn from(e: OutOfGas) -> ContractError {
        ContractError::OutOfGas(e)
    }
}

impl From<CodecError> for ContractError {
    fn from(e: CodecError) -> ContractError {
        ContractError::BadArguments(e)
    }
}

/// The gas-metered world interface handed to a contract during a call.
///
/// Every operation charges the schedule *before* executing, so a contract
/// cannot observe state it did not pay for.
pub trait Storage {
    /// Reads a storage slot.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ContractError>;

    /// Writes a storage slot.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ContractError>;

    /// Deletes a storage slot.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    fn remove(&mut self, key: &[u8]) -> Result<(), ContractError>;

    /// Emits an event.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    fn emit(&mut self, topic: &str, data: Vec<u8>) -> Result<(), ContractError>;

    /// Sends native value from the contract's balance to `to`.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`] or
    /// [`ContractError::InsufficientContractBalance`].
    fn transfer_out(&mut self, to: AccountId, value: u128) -> Result<(), ContractError>;

    /// The contract's current native balance.
    fn contract_balance(&self) -> u128;

    /// Charges gas for contract-specific computation (e.g. PoW header
    /// verification), per the schedule the host exposes.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError::OutOfGas`].
    fn charge(&mut self, gas: Gas) -> Result<(), ContractError>;

    /// The active gas schedule (for computing custom charges).
    fn schedule(&self) -> &GasSchedule;

    /// Gas consumed so far in this call.
    fn gas_used(&self) -> Gas;
}

/// A deployable contract. Implementations are **stateless**: all persistent
/// data must go through [`Storage`].
pub trait Contract: Send + Sync {
    /// The registry identifier for this code.
    fn code_id(&self) -> &'static str;

    /// Dispatches a method call.
    ///
    /// The special method `"init"` is invoked once at deployment.
    ///
    /// # Errors
    ///
    /// See [`ContractError`]; any error reverts the call's state changes.
    fn call(
        &self,
        env: &Env,
        method: &str,
        args: &[u8],
        storage: &mut dyn Storage,
    ) -> Result<Vec<u8>, ContractError>;
}

/// The host-side [`Storage`] implementation backing a single call.
///
/// Public so that contract crates can unit-test their logic against a real
/// metered storage without standing up a full chain.
pub struct HostStorage<'a> {
    /// The world state being mutated.
    pub world: &'a mut WorldState,
    /// The call's gas meter.
    pub meter: &'a mut GasMeter,
    /// The active cost schedule.
    pub schedule: &'a GasSchedule,
    /// The executing contract's account (storage namespace).
    pub contract: AccountId,
    /// Events emitted so far.
    pub events: Vec<Event>,
    /// Transfers executed by the contract; applied immediately to `world`
    /// (the caller holds a pre-call snapshot for revert).
    pub transfers: Vec<(AccountId, u128)>,
}

impl Storage for HostStorage<'_> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ContractError> {
        self.meter.charge(self.schedule.storage_read)?;
        Ok(self.world.storage_get(&self.contract, key).cloned())
    }

    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ContractError> {
        let exists = self.world.storage_get(&self.contract, key).is_some();
        let base = if exists {
            self.schedule.storage_write_existing
        } else {
            self.schedule.storage_write_new
        };
        let byte_cost = self.schedule.storage_byte * (value.len() as u64).saturating_sub(32);
        self.meter.charge(base + byte_cost)?;
        self.world
            .storage_set(self.contract, key.to_vec(), value.to_vec());
        Ok(())
    }

    fn remove(&mut self, key: &[u8]) -> Result<(), ContractError> {
        self.meter.charge(self.schedule.storage_delete)?;
        self.world.storage_remove(&self.contract, key);
        Ok(())
    }

    fn emit(&mut self, topic: &str, data: Vec<u8>) -> Result<(), ContractError> {
        self.meter.charge(
            self.schedule.log_base + self.schedule.log_byte * (topic.len() + data.len()) as u64,
        )?;
        self.events.push(Event {
            contract: self.contract,
            topic: topic.to_string(),
            data,
        });
        Ok(())
    }

    fn transfer_out(&mut self, to: AccountId, value: u128) -> Result<(), ContractError> {
        self.meter.charge(self.schedule.transfer)?;
        let available = self.world.balance(&self.contract);
        if available < value {
            return Err(ContractError::InsufficientContractBalance {
                available,
                requested: value,
            });
        }
        if let Err(e) = self.world.transfer(self.contract, to, value) {
            return Err(match e {
                StateError::InsufficientBalance {
                    available,
                    requested,
                    ..
                } => ContractError::InsufficientContractBalance {
                    available,
                    requested,
                },
                StateError::BalanceOverflow { account, .. } => {
                    ContractError::BalanceOverflow { account }
                }
            });
        }
        self.transfers.push((to, value));
        Ok(())
    }

    fn contract_balance(&self) -> u128 {
        self.world.balance(&self.contract)
    }

    fn charge(&mut self, gas: Gas) -> Result<(), ContractError> {
        self.meter.charge(gas)?;
        Ok(())
    }

    fn schedule(&self) -> &GasSchedule {
        self.schedule
    }

    fn gas_used(&self) -> Gas {
        self.meter.used()
    }
}

/// A read-only [`Storage`] host for view calls: reads go straight to a
/// *borrowed* world state, while any writes the viewed method makes land in
/// a private overlay that is discarded when the view returns. This keeps
/// view execution zero-copy — no clone of the world state is ever taken —
/// while charging exactly the same gas as [`HostStorage`] would for the
/// same operations against the same underlying state.
pub struct ViewStorage<'a> {
    world: &'a WorldState,
    meter: &'a mut GasMeter,
    schedule: &'a GasSchedule,
    contract: AccountId,
    /// Uncommitted slot writes made during the view (`None` = deleted).
    writes: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// Uncommitted balance overrides from view-time transfers.
    balances: HashMap<AccountId, u128>,
    /// Events emitted during the view (discarded with the overlay).
    pub events: Vec<Event>,
}

impl<'a> ViewStorage<'a> {
    /// A view host over `world` for `contract`, metered by `meter`.
    pub fn new(
        world: &'a WorldState,
        meter: &'a mut GasMeter,
        schedule: &'a GasSchedule,
        contract: AccountId,
    ) -> ViewStorage<'a> {
        ViewStorage {
            world,
            meter,
            schedule,
            contract,
            writes: HashMap::new(),
            balances: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// Overlay-then-base slot lookup.
    fn slot(&self, key: &[u8]) -> Option<&Vec<u8>> {
        match self.writes.get(key) {
            Some(Some(value)) => Some(value),
            Some(None) => None,
            None => self.world.storage_get(&self.contract, key),
        }
    }

    /// Overlay-then-base balance lookup.
    fn balance_of(&self, id: &AccountId) -> u128 {
        self.balances
            .get(id)
            .copied()
            .unwrap_or_else(|| self.world.balance(id))
    }
}

impl Storage for ViewStorage<'_> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ContractError> {
        self.meter.charge(self.schedule.storage_read)?;
        Ok(self.slot(key).cloned())
    }

    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ContractError> {
        let exists = self.slot(key).is_some();
        let base = if exists {
            self.schedule.storage_write_existing
        } else {
            self.schedule.storage_write_new
        };
        let byte_cost = self.schedule.storage_byte * (value.len() as u64).saturating_sub(32);
        self.meter.charge(base + byte_cost)?;
        self.writes.insert(key.to_vec(), Some(value.to_vec()));
        Ok(())
    }

    fn remove(&mut self, key: &[u8]) -> Result<(), ContractError> {
        self.meter.charge(self.schedule.storage_delete)?;
        self.writes.insert(key.to_vec(), None);
        Ok(())
    }

    fn emit(&mut self, topic: &str, data: Vec<u8>) -> Result<(), ContractError> {
        self.meter.charge(
            self.schedule.log_base + self.schedule.log_byte * (topic.len() + data.len()) as u64,
        )?;
        self.events.push(Event {
            contract: self.contract,
            topic: topic.to_string(),
            data,
        });
        Ok(())
    }

    fn transfer_out(&mut self, to: AccountId, value: u128) -> Result<(), ContractError> {
        self.meter.charge(self.schedule.transfer)?;
        let available = self.balance_of(&self.contract);
        if available < value {
            return Err(ContractError::InsufficientContractBalance {
                available,
                requested: value,
            });
        }
        if to == self.contract {
            // Debit-then-credit of the same account nets to zero.
            return Ok(());
        }
        let to_balance = self.balance_of(&to);
        let new_to_balance = to_balance
            .checked_add(value)
            .ok_or(ContractError::BalanceOverflow { account: to })?;
        self.balances.insert(self.contract, available - value);
        self.balances.insert(to, new_to_balance);
        Ok(())
    }

    fn contract_balance(&self) -> u128 {
        self.balance_of(&self.contract)
    }

    fn charge(&mut self, gas: Gas) -> Result<(), ContractError> {
        self.meter.charge(gas)?;
        Ok(())
    }

    fn schedule(&self) -> &GasSchedule {
        self.schedule
    }

    fn gas_used(&self) -> Gas {
        self.meter.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host<'a>(
        world: &'a mut WorldState,
        meter: &'a mut GasMeter,
        schedule: &'a GasSchedule,
    ) -> HostStorage<'a> {
        HostStorage {
            world,
            meter,
            schedule,
            contract: AccountId([0xCC; 20]),
            events: Vec::new(),
            transfers: Vec::new(),
        }
    }

    #[test]
    fn storage_ops_charge_gas() {
        let mut world = WorldState::new();
        let mut meter = GasMeter::new(1_000_000);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);

        storage.set(b"k", b"v").unwrap();
        let after_new_write = storage.gas_used();
        assert_eq!(after_new_write, schedule.storage_write_new);

        storage.set(b"k", b"v2").unwrap();
        assert_eq!(
            storage.gas_used(),
            after_new_write + schedule.storage_write_existing
        );

        assert_eq!(storage.get(b"k").unwrap().unwrap(), b"v2");
        storage.remove(b"k").unwrap();
        assert!(storage.get(b"k").unwrap().is_none());
    }

    #[test]
    fn long_values_cost_more() {
        let mut world = WorldState::new();
        let mut meter = GasMeter::new(10_000_000);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);
        storage.set(b"a", &[0u8; 32]).unwrap();
        let small = storage.gas_used();
        storage.set(b"b", &[0u8; 132]).unwrap();
        let big = storage.gas_used() - small;
        assert_eq!(
            big,
            schedule.storage_write_new + 100 * schedule.storage_byte
        );
    }

    #[test]
    fn out_of_gas_surfaces() {
        let mut world = WorldState::new();
        let mut meter = GasMeter::new(10);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);
        assert!(matches!(
            storage.set(b"k", b"v"),
            Err(ContractError::OutOfGas(_))
        ));
    }

    #[test]
    fn events_recorded() {
        let mut world = WorldState::new();
        let mut meter = GasMeter::new(1_000_000);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);
        storage.emit("Deposited", vec![1, 2, 3]).unwrap();
        assert_eq!(storage.events.len(), 1);
        assert_eq!(storage.events[0].topic, "Deposited");
    }

    #[test]
    fn transfer_out_moves_balance() {
        let mut world = WorldState::new();
        let contract_id = AccountId([0xCC; 20]);
        world.credit(contract_id, 100).unwrap();
        let mut meter = GasMeter::new(1_000_000);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);
        let dest = AccountId([0x01; 20]);
        storage.transfer_out(dest, 60).unwrap();
        assert_eq!(storage.contract_balance(), 40);
        assert!(matches!(
            storage.transfer_out(dest, 41),
            Err(ContractError::InsufficientContractBalance { .. })
        ));
        drop(storage);
        assert_eq!(world.balance(&dest), 60);
    }

    #[test]
    fn view_overlay_reads_own_writes_without_touching_base() {
        let mut world = WorldState::new();
        let contract_id = AccountId([0xCC; 20]);
        world.storage_set(contract_id, b"k".to_vec(), b"base".to_vec());
        let base_commitment = world.commitment();
        let schedule = GasSchedule::evm_shaped();
        let mut meter = GasMeter::new(1_000_000);
        let mut view = ViewStorage::new(&world, &mut meter, &schedule, contract_id);

        assert_eq!(view.get(b"k").unwrap().unwrap(), b"base");
        view.set(b"k", b"shadow").unwrap();
        assert_eq!(view.get(b"k").unwrap().unwrap(), b"shadow");
        view.remove(b"k").unwrap();
        assert!(view.get(b"k").unwrap().is_none());
        view.set(b"fresh", b"v").unwrap();
        assert_eq!(view.get(b"fresh").unwrap().unwrap(), b"v");
        drop(view);
        // The borrowed base state is untouched.
        assert_eq!(world.commitment(), base_commitment);
        assert_eq!(world.storage_get(&contract_id, b"k").unwrap(), b"base");
    }

    #[test]
    fn view_gas_matches_host_storage() {
        let schedule = GasSchedule::evm_shaped();
        let contract_id = AccountId([0xCC; 20]);
        let mut base = WorldState::new();
        base.storage_set(contract_id, b"k".to_vec(), b"v".to_vec());
        base.credit(contract_id, 100).unwrap();

        let script = |s: &mut dyn Storage| -> Result<(), ContractError> {
            s.get(b"k")?;
            s.set(b"k", b"v2")?; // existing slot
            s.set(b"new", &[0u8; 64])?; // new slot, 32 bytes beyond base
            s.remove(b"k")?;
            s.emit("Topic", vec![1, 2, 3])?;
            s.transfer_out(AccountId([0x01; 20]), 40)?;
            Ok(())
        };

        let mut host_world = base.clone();
        let mut host_meter = GasMeter::new(1_000_000);
        let mut host = host(&mut host_world, &mut host_meter, &schedule);
        script(&mut host).unwrap();
        let host_gas = host.gas_used();

        let mut view_meter = GasMeter::new(1_000_000);
        let mut view = ViewStorage::new(&base, &mut view_meter, &schedule, contract_id);
        script(&mut view).unwrap();
        assert_eq!(view.gas_used(), host_gas);
    }

    #[test]
    fn view_transfer_overlays_balances() {
        let mut world = WorldState::new();
        let contract_id = AccountId([0xCC; 20]);
        world.credit(contract_id, 100).unwrap();
        let schedule = GasSchedule::evm_shaped();
        let mut meter = GasMeter::new(1_000_000);
        let mut view = ViewStorage::new(&world, &mut meter, &schedule, contract_id);
        let dest = AccountId([0x01; 20]);
        view.transfer_out(dest, 60).unwrap();
        assert_eq!(view.contract_balance(), 40);
        assert!(matches!(
            view.transfer_out(dest, 41),
            Err(ContractError::InsufficientContractBalance { .. })
        ));
        // Self-transfer leaves the balance unchanged, as debit+credit would.
        view.transfer_out(contract_id, 10).unwrap();
        assert_eq!(view.contract_balance(), 40);
        drop(view);
        assert_eq!(world.balance(&contract_id), 100);
        assert_eq!(world.balance(&dest), 0);
    }

    #[test]
    fn host_transfer_overflow_is_typed_not_a_panic() {
        // A recipient sitting at u128::MAX used to trip the
        // `expect("balance checked above")` in HostStorage::transfer_out.
        let mut world = WorldState::new();
        let contract_id = AccountId([0xCC; 20]);
        let dest = AccountId([0x01; 20]);
        world.credit(contract_id, 100).unwrap();
        world.credit(dest, u128::MAX).unwrap();
        let mut meter = GasMeter::new(1_000_000);
        let schedule = GasSchedule::evm_shaped();
        let mut storage = host(&mut world, &mut meter, &schedule);
        assert_eq!(
            storage.transfer_out(dest, 1),
            Err(ContractError::BalanceOverflow { account: dest })
        );
        // The failed transfer left both balances untouched.
        assert_eq!(storage.contract_balance(), 100);
        drop(storage);
        assert_eq!(world.balance(&dest), u128::MAX);
    }

    #[test]
    fn view_transfer_overflow_reverts_instead_of_aborting() {
        // Same hostile state through the view overlay: the old
        // checked_add().expect() aborted the process.
        let mut world = WorldState::new();
        let contract_id = AccountId([0xCC; 20]);
        let dest = AccountId([0x01; 20]);
        world.credit(contract_id, 100).unwrap();
        world.credit(dest, u128::MAX).unwrap();
        let schedule = GasSchedule::evm_shaped();
        let mut meter = GasMeter::new(1_000_000);
        let mut view = ViewStorage::new(&world, &mut meter, &schedule, contract_id);
        assert_eq!(
            view.transfer_out(dest, 1),
            Err(ContractError::BalanceOverflow { account: dest })
        );
        // The overlay records nothing for a failed transfer.
        assert_eq!(view.contract_balance(), 100);
    }

    #[test]
    fn error_display() {
        for e in [
            ContractError::Revert("nope".into()),
            ContractError::UnknownMethod("m".into()),
            ContractError::BadArguments(CodecError::UnexpectedEnd),
            ContractError::InsufficientContractBalance {
                available: 1,
                requested: 2,
            },
            ContractError::BalanceOverflow {
                account: AccountId([1; 20]),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
