//! # btcfast-analysis
//!
//! Analytical models behind the BTCFast evaluation:
//!
//! * [`nakamoto`] — Nakamoto's double-spend race probability (the whitepaper
//!   model: catching up to a tie counts as success);
//! * [`rosenfeld`] — Rosenfeld's corrected analysis (negative-binomial
//!   attacker progress, strict overtake required);
//! * [`waiting`] — confirmation-latency distributions (Erlang) and the
//!   BTCFast fast-path latency model;
//! * [`profit`] — attack profitability and the collateral sizing rule that
//!   makes double-spending against BTCFast unprofitable;
//! * [`mathutil`] — the special functions the above need (log-gamma,
//!   regularized incomplete gamma, Poisson terms).
//!
//! These curves are what E2/E3/E8 plot against the Monte-Carlo and
//! full-machinery simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mathutil;
pub mod nakamoto;
pub mod profit;
pub mod rosenfeld;
pub mod waiting;
