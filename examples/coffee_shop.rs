//! The paper's motivating scenario: a coffee shop taking many small BTC
//! payments over a morning, all against one escrow.
//!
//! Shows the amortization behind the "no extra operation fee" claim: the
//! escrow is funded once, every cup is a sub-second 0-conf acceptance, and
//! the PSC-side gas per cup trends to the per-payment registration cost.
//!
//! ```text
//! cargo run --example coffee_shop
//! ```

use btcfast_suite::protocol::fees::{FeeModel, GasUsage};
use btcfast_suite::protocol::{FastPaySession, SessionConfig};

fn main() {
    let cups = 12u64;
    let cup_price_sats = 30_000; // ~a coffee at the paper's exchange rates

    let config = SessionConfig {
        escrow_deposit: 10_000_000, // covers many cups of collateral
        ..SessionConfig::default()
    };
    let mut session = FastPaySession::new(config, 1234);

    println!("The Busy Bean — BTCFast point of sale");
    println!("=====================================");
    println!(
        "escrow funded once: {} PSC units (gas {})",
        10_000_000, session.deposit_gas
    );
    println!();

    let mut total_wait = 0.0;
    let mut total_gas = session.deposit_gas;
    let mut worst_wait: f64 = 0.0;

    for cup in 1..=cups {
        let report = session
            .run_fast_payment(cup_price_sats)
            .expect("coffee payment");
        assert!(report.accepted, "cup {cup} rejected: {:?}", report.reject);
        let wait = report.waiting.as_secs_f64();
        total_wait += wait;
        worst_wait = worst_wait.max(wait);
        total_gas += report.registration_gas;
        println!(
            "cup {cup:>2}: {:>7} sats, accepted in {:.3} s (registration gas {})",
            cup_price_sats, wait, report.registration_gas
        );
        // The network mines on; the shop's earlier cups confirm behind the
        // scenes while new customers order.
        session.mine_public_block().expect("block connects");
    }

    let merchant_balance = session
        .merchant
        .btc_wallet()
        .balance(&session.btc)
        .to_sats();
    println!();
    println!("cups served          : {cups}");
    println!("mean acceptance wait : {:.3} s", total_wait / cups as f64);
    println!("worst acceptance wait: {worst_wait:.3} s");
    println!("merchant BTC balance : {merchant_balance} sats");

    // Fee accounting: what did BTCFast cost on top of plain BTC?
    let usage = GasUsage {
        deposit: session.deposit_gas,
        open_payment: total_gas.saturating_sub(session.deposit_gas) / cups,
        close_payment: 45_000, // typical close (measured in E4)
        withdraw: 50_000,
        ..Default::default()
    };
    let eth_model = FeeModel {
        btc_fee_sats: 1_000,
        gas_price: 20,
        sats_per_psc_unit: 0.000_002,
    };
    let per_cup = eth_model.honest_cost_per_payment(&usage, cups);
    println!();
    println!(
        "per-cup cost: {:.2} sats BTC fee + {:.4} sats PSC overhead (ETH-like)",
        per_cup.btc_fee_sats, per_cup.psc_overhead_sats
    );
    let eos_model = FeeModel {
        gas_price: 0,
        ..eth_model
    };
    let per_cup_eos = eos_model.honest_cost_per_payment(&usage, cups);
    println!(
        "per-cup cost: {:.2} sats BTC fee + {:.4} sats PSC overhead (EOS-like)",
        per_cup_eos.btc_fee_sats, per_cup_eos.psc_overhead_sats
    );
    assert_eq!(per_cup_eos.psc_overhead_sats, 0.0);
    println!("\nOK: every cup accepted sub-second; EOS-like overhead is exactly zero.");
}
