//! The append-only write-ahead log.
//!
//! # Record format
//!
//! Every record is framed on the medium as
//!
//! ```text
//! len: u32 LE | crc: u32 LE | seq: u64 LE | payload: [u8; len]
//! ```
//!
//! where `crc` is CRC-32 (IEEE) over `seq_le || payload` and `seq` is the
//! appender-assigned, strictly increasing record sequence number. All
//! integers are little-endian, lengths are prefixed, and hostile length
//! prefixes are capped — the workspace codec idiom.
//!
//! # Recovery contract
//!
//! [`Wal::open`] scans the medium front to back and accepts the longest
//! clean prefix of records:
//!
//! * a **torn tail** (crash mid-append: fewer bytes than the frame
//!   promises) stops the scan; the tail is truncated away;
//! * a **flipped bit** (CRC mismatch) stops the scan at that record; the
//!   rest is truncated away — bytes after a corrupt frame have no trusted
//!   framing, so they are unrecoverable by construction;
//! * a **hostile length prefix** (over [`MAX_RECORD`]) is corruption, not
//!   an allocation request;
//! * a **duplicate record** (a seq already applied — the at-least-once
//!   journaling case) is skipped, counted, and scanning continues.
//!
//! The scan never panics, whatever the bytes. [`Wal::open_strict`] runs
//! the same scan but surfaces the first corruption as a typed
//! [`StoreError`] instead of repairing, for callers that must distinguish
//! "clean restart" from "media damage".

use crate::storage::Storage;
use crate::{crc32, StoreError};
use std::fmt;

/// Hard cap on a record payload. Anything larger in a length prefix is
/// corruption (or hostility), not a real record.
pub const MAX_RECORD: usize = 1 << 20;

/// Frame header bytes ahead of each payload: len + crc + seq.
pub const HEADER_BYTES: usize = 16;

/// What exactly was wrong with the medium at a given byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// The medium ends before the frame (header or payload) is complete —
    /// the signature of a crash mid-append.
    TornTail {
        /// Byte offset of the incomplete frame.
        offset: u64,
    },
    /// A length prefix exceeds [`MAX_RECORD`].
    LengthOverCap {
        /// Byte offset of the frame.
        offset: u64,
        /// The length the prefix claimed.
        len: u64,
    },
    /// The payload checksum does not match — a flipped bit somewhere in
    /// the frame.
    BadChecksum {
        /// Byte offset of the frame.
        offset: u64,
    },
}

impl Corruption {
    /// The byte offset where the clean prefix ends.
    pub fn offset(&self) -> u64 {
        match self {
            Corruption::TornTail { offset }
            | Corruption::LengthOverCap { offset, .. }
            | Corruption::BadChecksum { offset } => *offset,
        }
    }
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::TornTail { offset } => write!(f, "torn tail at byte {offset}"),
            Corruption::LengthOverCap { offset, len } => {
                write!(f, "length prefix {len} over cap at byte {offset}")
            }
            Corruption::BadChecksum { offset } => write!(f, "checksum mismatch at byte {offset}"),
        }
    }
}

/// The outcome of scanning a medium: the clean record prefix plus what,
/// if anything, was repaired away.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredLog {
    /// The accepted records, in sequence order: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the accepted clean prefix.
    pub valid_len: u64,
    /// Bytes discarded past the clean prefix (0 on a clean medium).
    pub truncated_bytes: u64,
    /// The corruption that ended the scan, when the medium was not clean.
    pub corruption: Option<Corruption>,
    /// CRC-valid records skipped because their seq was already applied.
    pub duplicates_skipped: u64,
}

impl RecoveredLog {
    /// The next sequence number an appender should use.
    pub fn next_seq(&self) -> u64 {
        self.records.last().map_or(0, |(seq, _)| seq + 1)
    }
}

/// Cheap counters for the telemetry layer (scraped as gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// Bytes appended through this handle (frames included).
    pub bytes_appended: u64,
    /// Recovery scans performed (1 per open).
    pub recoveries: u64,
    /// Records accepted by recovery scans.
    pub records_recovered: u64,
    /// Bytes truncated away by recovery repairs.
    pub truncated_bytes: u64,
    /// Duplicate records skipped by recovery scans.
    pub duplicates_skipped: u64,
}

/// Scans `bytes` and returns the longest clean record prefix. Pure
/// function of the bytes; never panics.
pub fn scan(bytes: &[u8]) -> RecoveredLog {
    let mut recovered = RecoveredLog::default();
    let mut offset = 0usize;
    let mut last_seq: Option<u64> = None;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < HEADER_BYTES {
            recovered.corruption = Some(Corruption::TornTail {
                offset: offset as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("sized slice")) as usize;
        if len > MAX_RECORD {
            recovered.corruption = Some(Corruption::LengthOverCap {
                offset: offset as u64,
                len: len as u64,
            });
            break;
        }
        if remaining.len() < HEADER_BYTES + len {
            recovered.corruption = Some(Corruption::TornTail {
                offset: offset as u64,
            });
            break;
        }
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("sized slice"));
        let body = &remaining[8..HEADER_BYTES + len];
        if crc32(body) != crc {
            recovered.corruption = Some(Corruption::BadChecksum {
                offset: offset as u64,
            });
            break;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("sized slice"));
        offset += HEADER_BYTES + len;
        if last_seq.is_some_and(|last| seq <= last) {
            // A re-journaled record (at-least-once append) — already
            // applied, so skip it but keep its bytes in the clean prefix.
            recovered.duplicates_skipped += 1;
        } else {
            recovered.records.push((seq, body[8..].to_vec()));
            last_seq = Some(seq);
        }
        recovered.valid_len = offset as u64;
    }
    recovered.truncated_bytes = bytes.len() as u64 - recovered.valid_len;
    recovered
}

/// An open write-ahead log. See the module docs for format and recovery
/// semantics.
#[derive(Debug)]
pub struct Wal<S: Storage> {
    storage: S,
    next_seq: u64,
    stats: WalStats,
}

impl<S: Storage> Wal<S> {
    /// Opens the log on `storage`, repairing any damaged tail by clean
    /// prefix truncation. Returns the log positioned for appending plus
    /// everything the scan recovered.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium cannot be read or repaired.
    /// Corruption is *not* an error on this path — it is repaired and
    /// reported inside [`RecoveredLog`].
    pub fn open(mut storage: S) -> Result<(Wal<S>, RecoveredLog), StoreError> {
        let recovered = scan(&storage.read_all()?);
        if recovered.truncated_bytes > 0 {
            storage.truncate(recovered.valid_len)?;
        }
        let stats = WalStats {
            recoveries: 1,
            records_recovered: recovered.records.len() as u64,
            truncated_bytes: recovered.truncated_bytes,
            duplicates_skipped: recovered.duplicates_skipped,
            ..WalStats::default()
        };
        Ok((
            Wal {
                storage,
                next_seq: recovered.next_seq(),
                stats,
            },
            recovered,
        ))
    }

    /// Opens the log, but surfaces corruption as a typed error instead of
    /// repairing. The medium is left untouched on error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the medium is not a clean record
    /// sequence; [`StoreError::Io`] when it cannot be read.
    pub fn open_strict(storage: S) -> Result<(Wal<S>, RecoveredLog), StoreError> {
        let recovered = scan(&storage.read_all()?);
        if let Some(corruption) = recovered.corruption {
            return Err(StoreError::Corrupt(corruption));
        }
        let stats = WalStats {
            recoveries: 1,
            records_recovered: recovered.records.len() as u64,
            duplicates_skipped: recovered.duplicates_skipped,
            ..WalStats::default()
        };
        Ok((
            Wal {
                storage,
                next_seq: recovered.next_seq(),
                stats,
            },
            recovered,
        ))
    }

    /// Appends a record and returns its sequence number. The record is on
    /// the durable medium when this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::RecordTooLarge`] over [`MAX_RECORD`];
    /// [`StoreError::Io`] when the medium rejects the write.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge {
                len: payload.len(),
                max: MAX_RECORD,
            });
        }
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.storage.append(&frame)?;
        self.next_seq += 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += frame.len() as u64;
        Ok(seq)
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log length on the medium, in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.storage.len()
    }

    /// Counters for the telemetry layer.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The underlying medium (inspection, digests).
    pub fn storage(&self) -> &S {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn filled_wal(payloads: &[&[u8]]) -> (Wal<MemStorage>, MemStorage) {
        let medium = MemStorage::new();
        let (mut wal, recovered) = Wal::open(medium.clone()).unwrap();
        assert!(recovered.records.is_empty());
        for p in payloads {
            wal.append(p).unwrap();
        }
        (wal, medium)
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let (_wal, medium) = filled_wal(&[b"alpha", b"", b"gamma-longer-payload"]);
        let (wal, recovered) = Wal::open(medium).unwrap();
        assert_eq!(recovered.corruption, None);
        assert_eq!(recovered.truncated_bytes, 0);
        assert_eq!(
            recovered.records,
            vec![
                (0, b"alpha".to_vec()),
                (1, Vec::new()),
                (2, b"gamma-longer-payload".to_vec()),
            ]
        );
        assert_eq!(wal.next_seq(), 3);
    }

    #[test]
    fn torn_tail_is_repaired_by_truncation() {
        let (wal, medium) = filled_wal(&[b"one", b"two"]);
        let full = wal.len_bytes();
        // Tear the last record: keep its header but lose payload bytes.
        let mut bytes = medium.bytes();
        bytes.truncate(bytes.len() - 2);
        medium.replace(bytes);

        let (wal, recovered) = Wal::open(medium.clone()).unwrap();
        assert_eq!(recovered.records, vec![(0, b"one".to_vec())]);
        assert!(matches!(
            recovered.corruption,
            Some(Corruption::TornTail { .. })
        ));
        assert!(recovered.truncated_bytes > 0);
        // The medium was repaired: the torn bytes are gone and the next
        // append lands on a clean boundary.
        assert!(medium.len() < full);
        let mut wal = wal;
        wal.append(b"three").unwrap();
        let (_, again) = Wal::open(medium).unwrap();
        assert_eq!(
            again.records,
            vec![(0, b"one".to_vec()), (1, b"three".to_vec())]
        );
        assert_eq!(again.corruption, None);
    }

    #[test]
    fn flipped_bit_stops_the_scan_and_strict_mode_types_it() {
        let (_wal, medium) = filled_wal(&[b"first", b"second", b"third"]);
        let mut bytes = medium.bytes();
        // Flip one bit inside the second record's payload.
        let second_frame = HEADER_BYTES + 5;
        bytes[second_frame + HEADER_BYTES + 2] ^= 0x40;
        medium.replace(bytes);

        let strict = Wal::open_strict(medium.clone());
        assert!(
            matches!(
                strict,
                Err(StoreError::Corrupt(Corruption::BadChecksum { offset }))
                    if offset == second_frame as u64
            ),
            "{strict:?}"
        );

        let (_, recovered) = Wal::open(medium).unwrap();
        assert_eq!(recovered.records, vec![(0, b"first".to_vec())]);
        assert!(matches!(
            recovered.corruption,
            Some(Corruption::BadChecksum { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_corruption_not_allocation() {
        let medium = MemStorage::new();
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0u8; 12]);
        medium.replace(frame);
        let (_, recovered) = Wal::open(medium).unwrap();
        assert!(recovered.records.is_empty());
        assert!(matches!(
            recovered.corruption,
            Some(Corruption::LengthOverCap { len, .. }) if len == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn duplicate_records_are_skipped_exactly_once() {
        let (_wal, medium) = filled_wal(&[b"aa", b"bb"]);
        let mut bytes = medium.bytes();
        // Duplicate the second frame wholesale (at-least-once journaling).
        let second = bytes[HEADER_BYTES + 2..].to_vec();
        bytes.extend_from_slice(&second);
        medium.replace(bytes);
        let (wal, recovered) = Wal::open(medium).unwrap();
        assert_eq!(
            recovered.records,
            vec![(0, b"aa".to_vec()), (1, b"bb".to_vec())]
        );
        assert_eq!(recovered.duplicates_skipped, 1);
        assert_eq!(recovered.corruption, None);
        // The appender resumes past the duplicate, not on top of it.
        assert_eq!(wal.next_seq(), 2);
    }

    #[test]
    fn scan_never_panics_on_arbitrary_bytes() {
        for seed in 0u8..=255 {
            let bytes: Vec<u8> = (0..97)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            let recovered = scan(&bytes);
            assert!(recovered.valid_len <= bytes.len() as u64);
        }
    }

    #[test]
    fn oversized_append_is_a_typed_error() {
        let (mut wal, _) = filled_wal(&[]);
        let huge = vec![0u8; MAX_RECORD + 1];
        assert!(matches!(
            wal.append(&huge),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn stats_track_appends_and_recoveries() {
        let (wal, medium) = filled_wal(&[b"x", b"y"]);
        assert_eq!(wal.stats().appends, 2);
        assert!(wal.stats().bytes_appended > 2 * HEADER_BYTES as u64);
        let mut bytes = medium.bytes();
        bytes.push(0xAB); // torn byte
        medium.replace(bytes);
        let (wal, _) = Wal::open(medium).unwrap();
        assert_eq!(wal.stats().recoveries, 1);
        assert_eq!(wal.stats().records_recovered, 2);
        assert_eq!(wal.stats().truncated_bytes, 1);
    }
}
