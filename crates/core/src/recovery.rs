//! Durable intent journaling and crash recovery for protocol participants.
//!
//! The paper's guarantee — any in-flight payment can be settled from
//! recorded evidence — dies with the process if offers, acceptances, and
//! dispute steps live only in memory. This module makes every
//! side-effecting protocol step durable *before* it executes:
//!
//! 1. the caller journals `Begin(step)` to the WAL (an **intent**),
//! 2. performs the side effect (PSC call, message send, broadcast),
//! 3. journals `Done(intent, outcome)`.
//!
//! A crash between 1 and 3 leaves a *pending* intent on durable media.
//! On restart, [`RecoveryManager::open`] replays snapshot + WAL tail and
//! surfaces the pending set; the caller then resolves each intent
//! **exactly once**: every PSC-call step records the account nonce its
//! transaction would spend, so the recovering node compares the recorded
//! nonce against the chain's current nonce — if the chain consumed it,
//! the effect landed and the intent is completed without re-execution;
//! if not, the step is safe to re-run. Message sends and broadcasts are
//! idempotent at the receiver (transport dedup, mempool keyed by txid),
//! so re-sending is always safe.
//!
//! Everything here is deterministic: the journal encoding is canonical
//! (little-endian, length-prefixed — the workspace codec idiom), so the
//! same step sequence produces byte-identical media, and
//! [`RecoveryManager::digest`] over the re-hydrated state is
//! byte-identical to the digest of the uninterrupted run. The audit
//! crate's `store` engine checks exactly that at every crash offset.

use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::Hash256;
use btcfast_store::{SnapshotStore, Storage, StoreError, Wal};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A side-effecting protocol step, journaled as an intent before it runs.
/// PSC-call steps carry the account nonce their transaction spends — the
/// exactly-once token recovery checks against the chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// The customer deposits escrow collateral (PSC call).
    EscrowOpen {
        /// Deposit size in PSC units.
        deposit_units: u128,
        /// The customer-account nonce the deposit tx spends.
        psc_nonce: u64,
    },
    /// The customer registers a payment against the escrow (PSC call).
    OpenPayment {
        /// The BTC payment txid being registered.
        txid: Hash256,
        /// Payment size in satoshis.
        amount_sats: u64,
        /// Collateral locked for this payment, in PSC units.
        collateral: u128,
        /// The customer-account nonce the registration tx spends.
        psc_nonce: u64,
    },
    /// The customer's offer travels to the merchant.
    OfferSend {
        /// The registered escrow payment id.
        payment_id: u64,
        /// The BTC payment txid offered.
        txid: Hash256,
    },
    /// The merchant's acceptance (or refusal) travels back.
    AcceptanceSend {
        /// The escrow payment id.
        payment_id: u64,
        /// Whether the merchant accepted.
        accepted: bool,
    },
    /// The accepted payment enters the public mempool.
    Broadcast {
        /// The escrow payment id.
        payment_id: u64,
        /// The BTC txid broadcast.
        txid: Hash256,
    },
    /// The merchant opens a dispute (PSC call).
    DisputeOpen {
        /// The escrow payment id.
        payment_id: u64,
        /// The merchant-account nonce the dispute tx spends.
        psc_nonce: u64,
    },
    /// A party submits SPV evidence (PSC call).
    EvidenceSubmit {
        /// The escrow payment id.
        payment_id: u64,
        /// The txid the evidence proves (in or out of the chain).
        txid: Hash256,
        /// The submitter-account nonce the evidence tx spends.
        psc_nonce: u64,
    },
    /// The judgment call after the window closes (PSC call).
    JudgeCall {
        /// The escrow payment id.
        payment_id: u64,
        /// The caller-account nonce the judge tx spends.
        psc_nonce: u64,
    },
    /// The verdict observed on chain (a fact, recorded for the ledger).
    Verdict {
        /// The escrow payment id.
        payment_id: u64,
        /// Did the judgment pay the merchant from collateral?
        merchant_wins: bool,
    },
}

impl Step {
    /// The escrow payment id this step concerns, when assigned yet.
    pub fn payment_id(&self) -> Option<u64> {
        match self {
            Step::EscrowOpen { .. } | Step::OpenPayment { .. } => None,
            Step::OfferSend { payment_id, .. }
            | Step::AcceptanceSend { payment_id, .. }
            | Step::Broadcast { payment_id, .. }
            | Step::DisputeOpen { payment_id, .. }
            | Step::EvidenceSubmit { payment_id, .. }
            | Step::JudgeCall { payment_id, .. }
            | Step::Verdict { payment_id, .. } => Some(*payment_id),
        }
    }

    /// The PSC account nonce this step's transaction spends — the
    /// exactly-once token — when the step is a chain call.
    pub fn psc_nonce(&self) -> Option<u64> {
        match self {
            Step::EscrowOpen { psc_nonce, .. }
            | Step::OpenPayment { psc_nonce, .. }
            | Step::DisputeOpen { psc_nonce, .. }
            | Step::EvidenceSubmit { psc_nonce, .. }
            | Step::JudgeCall { psc_nonce, .. } => Some(*psc_nonce),
            Step::OfferSend { .. }
            | Step::AcceptanceSend { .. }
            | Step::Broadcast { .. }
            | Step::Verdict { .. } => None,
        }
    }
}

/// How a journaled intent resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The side effect landed.
    Applied,
    /// The registration landed and the contract assigned this payment id.
    PaymentRegistered {
        /// The assigned escrow payment id.
        payment_id: u64,
    },
    /// The step executed but the effect was refused (reverted call,
    /// merchant rejection).
    Rejected,
    /// The caller gave up on the step (degraded to a fallback path).
    Abandoned,
}

/// Everything the ledger knows about one registered payment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PaymentState {
    /// The BTC payment txid.
    pub txid: Hash256,
    /// Payment size in satoshis.
    pub amount_sats: u64,
    /// Offer delivered to the merchant.
    pub offered: bool,
    /// Merchant accepted.
    pub accepted: bool,
    /// Payment broadcast to the public mempool.
    pub broadcast: bool,
    /// Dispute opened.
    pub disputed: bool,
    /// Evidence submitted.
    pub evidence_submitted: bool,
    /// Judgment ran.
    pub judged: bool,
    /// The verdict, when judged.
    pub merchant_wins: Option<bool>,
}

/// The durable view of a participant's protocol state, rebuilt
/// deterministically from the journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PaymentLedger {
    /// Has the escrow deposit landed?
    pub escrow_opened: bool,
    /// Registered payments by escrow payment id.
    pub payments: BTreeMap<u64, PaymentState>,
    /// Total satoshis across accepted payments.
    pub value_accepted_sats: u64,
}

/// What a restart recovered from durable media.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Was a snapshot used (vs. a full WAL replay)?
    pub snapshot_used: bool,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Intents found begun-but-not-done — the exactly-once resume set.
    pub pending_resumed: usize,
    /// Bytes of damaged WAL tail repaired away.
    pub truncated_bytes: u64,
    /// Duplicate journal records skipped.
    pub duplicates_skipped: u64,
}

/// Counters for the telemetry layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Restores performed (1 per open).
    pub recoveries: u64,
    /// WAL records replayed across restores.
    pub replayed_records: u64,
    /// Pending intents resumed across restores.
    pub pending_resumed: u64,
    /// Journal appends (Begin + Done records).
    pub journal_appends: u64,
    /// Snapshots written.
    pub checkpoints: u64,
}

/// Why journaling or recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The durable medium failed or was corrupt in strict mode.
    Store(StoreError),
    /// A CRC-valid record failed to decode — an encoding-version bug, not
    /// media damage.
    Malformed(String),
    /// The caller referenced an intent the journal does not know.
    UnknownIntent {
        /// The intent id the caller passed.
        intent: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Store(e) => write!(f, "durable store: {e}"),
            RecoveryError::Malformed(msg) => write!(f, "malformed journal record: {msg}"),
            RecoveryError::UnknownIntent { intent } => {
                write!(f, "unknown journal intent {intent}")
            }
        }
    }
}

impl Error for RecoveryError {}

impl From<StoreError> for RecoveryError {
    fn from(e: StoreError) -> Self {
        RecoveryError::Store(e)
    }
}

// --- Canonical journal encoding (workspace codec idiom). ----------------

fn put_hash(out: &mut Vec<u8>, h: &Hash256) {
    out.extend_from_slice(h.as_bytes());
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], RecoveryError> {
    if bytes.len() < n {
        return Err(RecoveryError::Malformed("unexpected end".into()));
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

fn take_u8(bytes: &mut &[u8]) -> Result<u8, RecoveryError> {
    Ok(take(bytes, 1)?[0])
}

fn take_u64(bytes: &mut &[u8]) -> Result<u64, RecoveryError> {
    Ok(u64::from_le_bytes(
        take(bytes, 8)?.try_into().expect("sized slice"),
    ))
}

fn take_u128(bytes: &mut &[u8]) -> Result<u128, RecoveryError> {
    Ok(u128::from_le_bytes(
        take(bytes, 16)?.try_into().expect("sized slice"),
    ))
}

fn take_hash(bytes: &mut &[u8]) -> Result<Hash256, RecoveryError> {
    Ok(Hash256(take(bytes, 32)?.try_into().expect("sized slice")))
}

fn take_bool(bytes: &mut &[u8]) -> Result<bool, RecoveryError> {
    match take_u8(bytes)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(RecoveryError::Malformed(format!("bad bool byte {b}"))),
    }
}

impl Step {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Step::EscrowOpen {
                deposit_units,
                psc_nonce,
            } => {
                out.push(1);
                out.extend_from_slice(&deposit_units.to_le_bytes());
                out.extend_from_slice(&psc_nonce.to_le_bytes());
            }
            Step::OpenPayment {
                txid,
                amount_sats,
                collateral,
                psc_nonce,
            } => {
                out.push(2);
                put_hash(out, txid);
                out.extend_from_slice(&amount_sats.to_le_bytes());
                out.extend_from_slice(&collateral.to_le_bytes());
                out.extend_from_slice(&psc_nonce.to_le_bytes());
            }
            Step::OfferSend { payment_id, txid } => {
                out.push(3);
                out.extend_from_slice(&payment_id.to_le_bytes());
                put_hash(out, txid);
            }
            Step::AcceptanceSend {
                payment_id,
                accepted,
            } => {
                out.push(4);
                out.extend_from_slice(&payment_id.to_le_bytes());
                out.push(u8::from(*accepted));
            }
            Step::Broadcast { payment_id, txid } => {
                out.push(5);
                out.extend_from_slice(&payment_id.to_le_bytes());
                put_hash(out, txid);
            }
            Step::DisputeOpen {
                payment_id,
                psc_nonce,
            } => {
                out.push(6);
                out.extend_from_slice(&payment_id.to_le_bytes());
                out.extend_from_slice(&psc_nonce.to_le_bytes());
            }
            Step::EvidenceSubmit {
                payment_id,
                txid,
                psc_nonce,
            } => {
                out.push(7);
                out.extend_from_slice(&payment_id.to_le_bytes());
                put_hash(out, txid);
                out.extend_from_slice(&psc_nonce.to_le_bytes());
            }
            Step::JudgeCall {
                payment_id,
                psc_nonce,
            } => {
                out.push(8);
                out.extend_from_slice(&payment_id.to_le_bytes());
                out.extend_from_slice(&psc_nonce.to_le_bytes());
            }
            Step::Verdict {
                payment_id,
                merchant_wins,
            } => {
                out.push(9);
                out.extend_from_slice(&payment_id.to_le_bytes());
                out.push(u8::from(*merchant_wins));
            }
        }
    }

    fn decode(bytes: &mut &[u8]) -> Result<Step, RecoveryError> {
        match take_u8(bytes)? {
            1 => Ok(Step::EscrowOpen {
                deposit_units: take_u128(bytes)?,
                psc_nonce: take_u64(bytes)?,
            }),
            2 => Ok(Step::OpenPayment {
                txid: take_hash(bytes)?,
                amount_sats: take_u64(bytes)?,
                collateral: take_u128(bytes)?,
                psc_nonce: take_u64(bytes)?,
            }),
            3 => Ok(Step::OfferSend {
                payment_id: take_u64(bytes)?,
                txid: take_hash(bytes)?,
            }),
            4 => Ok(Step::AcceptanceSend {
                payment_id: take_u64(bytes)?,
                accepted: take_bool(bytes)?,
            }),
            5 => Ok(Step::Broadcast {
                payment_id: take_u64(bytes)?,
                txid: take_hash(bytes)?,
            }),
            6 => Ok(Step::DisputeOpen {
                payment_id: take_u64(bytes)?,
                psc_nonce: take_u64(bytes)?,
            }),
            7 => Ok(Step::EvidenceSubmit {
                payment_id: take_u64(bytes)?,
                txid: take_hash(bytes)?,
                psc_nonce: take_u64(bytes)?,
            }),
            8 => Ok(Step::JudgeCall {
                payment_id: take_u64(bytes)?,
                psc_nonce: take_u64(bytes)?,
            }),
            9 => Ok(Step::Verdict {
                payment_id: take_u64(bytes)?,
                merchant_wins: take_bool(bytes)?,
            }),
            t => Err(RecoveryError::Malformed(format!("bad step tag {t}"))),
        }
    }
}

impl Outcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Outcome::Applied => out.push(1),
            Outcome::PaymentRegistered { payment_id } => {
                out.push(2);
                out.extend_from_slice(&payment_id.to_le_bytes());
            }
            Outcome::Rejected => out.push(3),
            Outcome::Abandoned => out.push(4),
        }
    }

    fn decode(bytes: &mut &[u8]) -> Result<Outcome, RecoveryError> {
        match take_u8(bytes)? {
            1 => Ok(Outcome::Applied),
            2 => Ok(Outcome::PaymentRegistered {
                payment_id: take_u64(bytes)?,
            }),
            3 => Ok(Outcome::Rejected),
            4 => Ok(Outcome::Abandoned),
            t => Err(RecoveryError::Malformed(format!("bad outcome tag {t}"))),
        }
    }
}

enum JournalRecord {
    Begin { step: Step },
    Done { intent: u64, outcome: Outcome },
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Begin { step } => {
                out.push(1);
                step.encode(&mut out);
            }
            JournalRecord::Done { intent, outcome } => {
                out.push(2);
                out.extend_from_slice(&intent.to_le_bytes());
                outcome.encode(&mut out);
            }
        }
        out
    }

    fn decode(mut bytes: &[u8]) -> Result<JournalRecord, RecoveryError> {
        let record = match take_u8(&mut bytes)? {
            1 => JournalRecord::Begin {
                step: Step::decode(&mut bytes)?,
            },
            2 => JournalRecord::Done {
                intent: take_u64(&mut bytes)?,
                outcome: Outcome::decode(&mut bytes)?,
            },
            t => return Err(RecoveryError::Malformed(format!("bad record tag {t}"))),
        };
        if !bytes.is_empty() {
            return Err(RecoveryError::Malformed("trailing bytes".into()));
        }
        Ok(record)
    }
}

impl PaymentState {
    fn encode(&self, out: &mut Vec<u8>) {
        put_hash(out, &self.txid);
        out.extend_from_slice(&self.amount_sats.to_le_bytes());
        let mut flags = 0u8;
        for (bit, set) in [
            self.offered,
            self.accepted,
            self.broadcast,
            self.disputed,
            self.evidence_submitted,
            self.judged,
        ]
        .into_iter()
        .enumerate()
        {
            if set {
                flags |= 1 << bit;
            }
        }
        out.push(flags);
        out.push(match self.merchant_wins {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }

    fn decode(bytes: &mut &[u8]) -> Result<PaymentState, RecoveryError> {
        let txid = take_hash(bytes)?;
        let amount_sats = take_u64(bytes)?;
        let flags = take_u8(bytes)?;
        let merchant_wins = match take_u8(bytes)? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            b => return Err(RecoveryError::Malformed(format!("bad verdict byte {b}"))),
        };
        Ok(PaymentState {
            txid,
            amount_sats,
            offered: flags & 1 != 0,
            accepted: flags & 2 != 0,
            broadcast: flags & 4 != 0,
            disputed: flags & 8 != 0,
            evidence_submitted: flags & 16 != 0,
            judged: flags & 32 != 0,
            merchant_wins,
        })
    }
}

impl PaymentLedger {
    /// Canonical encoding (snapshot payload; digest input).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.escrow_opened));
        out.extend_from_slice(&(self.payments.len() as u32).to_le_bytes());
        for (id, state) in &self.payments {
            out.extend_from_slice(&id.to_le_bytes());
            state.encode(out);
        }
        out.extend_from_slice(&self.value_accepted_sats.to_le_bytes());
    }

    fn decode(bytes: &mut &[u8]) -> Result<PaymentLedger, RecoveryError> {
        let escrow_opened = take_bool(bytes)?;
        let count = u32::from_le_bytes(take(bytes, 4)?.try_into().expect("sized slice"));
        let mut payments = BTreeMap::new();
        for _ in 0..count {
            let id = take_u64(bytes)?;
            payments.insert(id, PaymentState::decode(bytes)?);
        }
        Ok(PaymentLedger {
            escrow_opened,
            payments,
            value_accepted_sats: take_u64(bytes)?,
        })
    }

    fn apply(&mut self, step: &Step, outcome: Outcome) {
        if matches!(outcome, Outcome::Rejected | Outcome::Abandoned) {
            // The effect never landed; the ledger records nothing. (A
            // merchant refusal still marks the offer as delivered below.)
            if let Step::AcceptanceSend { payment_id, .. } = step {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.offered = true;
                }
            }
            return;
        }
        match (step, outcome) {
            (Step::EscrowOpen { .. }, _) => self.escrow_opened = true,
            (
                Step::OpenPayment {
                    txid, amount_sats, ..
                },
                Outcome::PaymentRegistered { payment_id },
            ) => {
                self.payments.insert(
                    payment_id,
                    PaymentState {
                        txid: *txid,
                        amount_sats: *amount_sats,
                        ..PaymentState::default()
                    },
                );
            }
            // An Applied without the contract-assigned id cannot place the
            // payment in the ledger; nothing to record.
            (Step::OpenPayment { .. }, _) => {}
            (Step::OfferSend { payment_id, .. }, _) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.offered = true;
                }
            }
            (
                Step::AcceptanceSend {
                    payment_id,
                    accepted,
                },
                _,
            ) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.offered = true;
                    if *accepted && !p.accepted {
                        p.accepted = true;
                        self.value_accepted_sats += p.amount_sats;
                    }
                }
            }
            (Step::Broadcast { payment_id, .. }, _) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.broadcast = true;
                }
            }
            (Step::DisputeOpen { payment_id, .. }, _) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.disputed = true;
                }
            }
            (Step::EvidenceSubmit { payment_id, .. }, _) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.evidence_submitted = true;
                }
            }
            (Step::JudgeCall { payment_id, .. }, _) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.judged = true;
                }
            }
            (
                Step::Verdict {
                    payment_id,
                    merchant_wins,
                },
                _,
            ) => {
                if let Some(p) = self.payments.get_mut(payment_id) {
                    p.judged = true;
                    p.merchant_wins = Some(*merchant_wins);
                }
            }
        }
    }
}

/// Journals intents to a WAL, checkpoints to a snapshot slot, and
/// re-hydrates a byte-identical [`PaymentLedger`] after a crash. See the
/// module docs for the exactly-once protocol.
pub struct RecoveryManager<S: Storage> {
    wal: Wal<S>,
    snapshots: SnapshotStore<S>,
    ledger: PaymentLedger,
    pending: BTreeMap<u64, Step>,
    stats: RecoveryStats,
}

impl<S: Storage> RecoveryManager<S> {
    /// Opens (or re-opens after a crash) the manager on its two durable
    /// media. Recovery order: load the snapshot (a damaged slot falls
    /// back to full replay), then replay every WAL record the snapshot
    /// does not cover. A damaged WAL tail is repaired by truncation —
    /// exactly the records whose side effects may not have executed, and
    /// the pending set re-drives those.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Store`] on medium failure;
    /// [`RecoveryError::Malformed`] when a CRC-valid record does not
    /// decode (version skew, not media damage).
    pub fn open(
        wal_medium: S,
        snapshot_medium: S,
    ) -> Result<(RecoveryManager<S>, RecoveryReport), RecoveryError> {
        let (wal, recovered) = Wal::open(wal_medium)?;
        let snapshots = SnapshotStore::new(snapshot_medium);

        let mut ledger = PaymentLedger::default();
        let mut pending = BTreeMap::new();
        let mut replay_from = 0u64;
        let mut snapshot_used = false;
        if let Some(snap) = snapshots.load()? {
            if let Ok((l, p)) = decode_snapshot_state(&snap.state) {
                ledger = l;
                pending = p;
                replay_from = snap.wal_seq;
                snapshot_used = true;
            }
        }

        let mut replayed = 0u64;
        for (seq, payload) in &recovered.records {
            if *seq < replay_from {
                continue;
            }
            replayed += 1;
            match JournalRecord::decode(payload)? {
                JournalRecord::Begin { step } => {
                    pending.insert(*seq, step);
                }
                JournalRecord::Done { intent, outcome } => {
                    if let Some(step) = pending.remove(&intent) {
                        ledger.apply(&step, outcome);
                    }
                }
            }
        }

        let report = RecoveryReport {
            snapshot_used,
            replayed_records: replayed,
            pending_resumed: pending.len(),
            truncated_bytes: recovered.truncated_bytes,
            duplicates_skipped: recovered.duplicates_skipped,
        };
        let stats = RecoveryStats {
            recoveries: 1,
            replayed_records: replayed,
            pending_resumed: pending.len() as u64,
            ..RecoveryStats::default()
        };
        Ok((
            RecoveryManager {
                wal,
                snapshots,
                ledger,
                pending,
                stats,
            },
            report,
        ))
    }

    /// Journals the intent to perform `step`. **Call before the side
    /// effect.** Returns the intent id to pass to
    /// [`RecoveryManager::complete`].
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Store`] when the journal write fails — in which
    /// case the side effect must not run.
    pub fn begin(&mut self, step: Step) -> Result<u64, RecoveryError> {
        let seq = self
            .wal
            .append(&JournalRecord::Begin { step: step.clone() }.encode())?;
        self.pending.insert(seq, step);
        self.stats.journal_appends += 1;
        Ok(seq)
    }

    /// Journals that intent `intent` resolved with `outcome` and applies
    /// it to the ledger. **Call after the side effect.**
    ///
    /// # Errors
    ///
    /// [`RecoveryError::UnknownIntent`] for an id never begun (or already
    /// completed); [`RecoveryError::Store`] when the journal write fails.
    pub fn complete(&mut self, intent: u64, outcome: Outcome) -> Result<(), RecoveryError> {
        if !self.pending.contains_key(&intent) {
            return Err(RecoveryError::UnknownIntent { intent });
        }
        self.wal
            .append(&JournalRecord::Done { intent, outcome }.encode())?;
        let step = self.pending.remove(&intent).expect("checked above");
        self.ledger.apply(&step, outcome);
        self.stats.journal_appends += 1;
        Ok(())
    }

    /// The intents begun but not completed — what a restart must resolve
    /// exactly-once, in journal order.
    pub fn pending(&self) -> impl Iterator<Item = (u64, &Step)> + '_ {
        self.pending.iter().map(|(id, step)| (*id, step))
    }

    /// The re-hydrated durable state.
    pub fn ledger(&self) -> &PaymentLedger {
        &self.ledger
    }

    /// Canonical digest over ledger + pending intents: byte-identical
    /// across a crash/recover cycle iff the recovered state is.
    pub fn digest(&self) -> Hash256 {
        let mut bytes = Vec::new();
        self.ledger.encode(&mut bytes);
        bytes.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for (intent, step) in &self.pending {
            bytes.extend_from_slice(&intent.to_le_bytes());
            step.encode(&mut bytes);
        }
        sha256d(&bytes)
    }

    /// Checkpoints the current state so future recoveries replay only the
    /// WAL tail past this point.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Store`] when the snapshot write fails (the WAL is
    /// untouched, so recovery still works from the previous checkpoint).
    pub fn checkpoint(&mut self) -> Result<(), RecoveryError> {
        let mut state = Vec::new();
        self.ledger.encode(&mut state);
        state.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        for (intent, step) in &self.pending {
            state.extend_from_slice(&intent.to_le_bytes());
            step.encode(&mut state);
        }
        self.snapshots.save(self.wal.next_seq(), &state)?;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Counters for the telemetry layer (recoveries, replays, appends).
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// WAL counters (appends, recovered bytes) for the telemetry layer.
    pub fn wal_stats(&self) -> btcfast_store::WalStats {
        self.wal.stats()
    }

    /// The WAL medium, for crash-differential harnesses that copy media.
    pub fn wal_medium(&self) -> &S {
        self.wal.storage()
    }

    /// The snapshot medium, for crash-differential harnesses.
    pub fn snapshot_medium(&self) -> &S {
        self.snapshots.storage()
    }
}

fn decode_snapshot_state(
    bytes: &[u8],
) -> Result<(PaymentLedger, BTreeMap<u64, Step>), RecoveryError> {
    let mut bytes = bytes;
    let ledger = PaymentLedger::decode(&mut bytes)?;
    let count = u32::from_le_bytes(take(&mut bytes, 4)?.try_into().expect("sized slice"));
    let mut pending = BTreeMap::new();
    for _ in 0..count {
        let intent = take_u64(&mut bytes)?;
        pending.insert(intent, Step::decode(&mut bytes)?);
    }
    if !bytes.is_empty() {
        return Err(RecoveryError::Malformed("trailing snapshot bytes".into()));
    }
    Ok((ledger, pending))
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcfast_store::MemStorage;

    fn txid(n: u8) -> Hash256 {
        Hash256([n; 32])
    }

    /// Drives one full protocol flow through a manager: returns the media.
    fn journal_flow(crash_after: Option<usize>) -> (MemStorage, MemStorage) {
        let wal_medium = MemStorage::new();
        let snap_medium = MemStorage::new();
        let (mut mgr, _) = RecoveryManager::open(wal_medium.clone(), snap_medium.clone()).unwrap();
        let mut ops = 0usize;
        let mut op = |mgr: &mut RecoveryManager<MemStorage>, step: Step, outcome: Outcome| {
            if crash_after.is_some_and(|n| ops >= n) {
                return;
            }
            let id = mgr.begin(step).unwrap();
            ops += 1;
            if crash_after.is_some_and(|n| ops >= n) {
                return; // crashed between Begin and Done
            }
            mgr.complete(id, outcome).unwrap();
        };
        op(
            &mut mgr,
            Step::EscrowOpen {
                deposit_units: 5_000,
                psc_nonce: 0,
            },
            Outcome::Applied,
        );
        op(
            &mut mgr,
            Step::OpenPayment {
                txid: txid(1),
                amount_sats: 1_000_000,
                collateral: 1_200,
                psc_nonce: 1,
            },
            Outcome::PaymentRegistered { payment_id: 7 },
        );
        op(
            &mut mgr,
            Step::OfferSend {
                payment_id: 7,
                txid: txid(1),
            },
            Outcome::Applied,
        );
        op(
            &mut mgr,
            Step::AcceptanceSend {
                payment_id: 7,
                accepted: true,
            },
            Outcome::Applied,
        );
        op(
            &mut mgr,
            Step::Broadcast {
                payment_id: 7,
                txid: txid(1),
            },
            Outcome::Applied,
        );
        op(
            &mut mgr,
            Step::DisputeOpen {
                payment_id: 7,
                psc_nonce: 0,
            },
            Outcome::Applied,
        );
        op(
            &mut mgr,
            Step::Verdict {
                payment_id: 7,
                merchant_wins: true,
            },
            Outcome::Applied,
        );
        (wal_medium, snap_medium)
    }

    #[test]
    fn uninterrupted_flow_builds_the_expected_ledger() {
        let (wal, snap) = journal_flow(None);
        let (mgr, report) = RecoveryManager::open(wal, snap).unwrap();
        assert_eq!(report.pending_resumed, 0);
        assert_eq!(report.replayed_records, 14);
        let ledger = mgr.ledger();
        assert!(ledger.escrow_opened);
        let p = &ledger.payments[&7];
        assert!(p.offered && p.accepted && p.broadcast && p.disputed && p.judged);
        assert_eq!(p.merchant_wins, Some(true));
        assert_eq!(ledger.value_accepted_sats, 1_000_000);
    }

    #[test]
    fn crash_between_begin_and_done_resumes_the_intent() {
        // Crash right after journaling the OfferSend intent (op 3).
        let (wal, snap) = journal_flow(Some(3));
        let (mgr, report) = RecoveryManager::open(wal, snap).unwrap();
        assert_eq!(report.pending_resumed, 1);
        let pending: Vec<_> = mgr.pending().collect();
        assert!(matches!(
            pending[0].1,
            Step::OfferSend { payment_id: 7, .. }
        ));
        // Ledger reflects everything completed before the crash.
        assert!(mgr.ledger().escrow_opened);
        assert!(mgr.ledger().payments.contains_key(&7));
        assert!(!mgr.ledger().payments[&7].offered);
    }

    #[test]
    fn recovery_digest_matches_uninterrupted_digest() {
        let (wal, snap) = journal_flow(None);
        let (reference, _) = RecoveryManager::open(wal.clone(), snap.clone()).unwrap();
        // Crash at EVERY byte offset of the WAL media; recovery must land
        // on a state identical to replaying the repaired clean prefix.
        let media = wal.bytes();
        for cut in 0..=media.len() {
            let torn = MemStorage::from_bytes(media[..cut].to_vec());
            let (recovered, _) = RecoveryManager::open(torn, snap.clone()).unwrap();
            // A full-length cut must equal the uninterrupted run exactly.
            if cut == media.len() {
                assert_eq!(recovered.digest(), reference.digest());
                assert_eq!(recovered.ledger(), reference.ledger());
            }
            // Every cut must be a *prefix* of the uninterrupted history:
            // accepted value can only be <= and payments a subset.
            assert!(
                recovered.ledger().value_accepted_sats <= reference.ledger().value_accepted_sats
            );
        }
    }

    #[test]
    fn snapshot_shortens_replay_without_changing_state() {
        let wal = MemStorage::new();
        let snap = MemStorage::new();
        let (mut mgr, _) = RecoveryManager::open(wal.clone(), snap.clone()).unwrap();
        let id = mgr
            .begin(Step::EscrowOpen {
                deposit_units: 9,
                psc_nonce: 0,
            })
            .unwrap();
        mgr.complete(id, Outcome::Applied).unwrap();
        mgr.checkpoint().unwrap();
        let digest_before = mgr.digest();
        let id = mgr
            .begin(Step::OpenPayment {
                txid: txid(2),
                amount_sats: 42,
                collateral: 1,
                psc_nonce: 1,
            })
            .unwrap();
        mgr.complete(id, Outcome::PaymentRegistered { payment_id: 0 })
            .unwrap();
        let digest_after = mgr.digest();
        assert_ne!(digest_before, digest_after);

        let (restored, report) = RecoveryManager::open(wal, snap).unwrap();
        assert!(report.snapshot_used);
        assert_eq!(report.replayed_records, 2, "only the tail replays");
        assert_eq!(restored.digest(), digest_after);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let wal = MemStorage::new();
        let snap = MemStorage::new();
        let (mut mgr, _) = RecoveryManager::open(wal.clone(), snap.clone()).unwrap();
        let id = mgr
            .begin(Step::EscrowOpen {
                deposit_units: 9,
                psc_nonce: 0,
            })
            .unwrap();
        mgr.complete(id, Outcome::Applied).unwrap();
        mgr.checkpoint().unwrap();
        let digest = mgr.digest();
        // Damage the snapshot slot.
        let mut bytes = snap.bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        snap.replace(bytes);

        let (restored, report) = RecoveryManager::open(wal, snap).unwrap();
        assert!(!report.snapshot_used);
        assert_eq!(report.replayed_records, 2, "full WAL replay");
        assert_eq!(restored.digest(), digest);
    }

    #[test]
    fn completing_an_unknown_intent_is_a_typed_error() {
        let (mut mgr, _) = RecoveryManager::open(MemStorage::new(), MemStorage::new()).unwrap();
        assert!(matches!(
            mgr.complete(99, Outcome::Applied),
            Err(RecoveryError::UnknownIntent { intent: 99 })
        ));
    }

    #[test]
    fn steps_expose_their_exactly_once_tokens() {
        let step = Step::DisputeOpen {
            payment_id: 3,
            psc_nonce: 17,
        };
        assert_eq!(step.payment_id(), Some(3));
        assert_eq!(step.psc_nonce(), Some(17));
        let step = Step::OfferSend {
            payment_id: 3,
            txid: txid(1),
        };
        assert_eq!(step.psc_nonce(), None);
    }

    #[test]
    fn rejected_acceptance_still_marks_the_offer_delivered() {
        let (mut mgr, _) = RecoveryManager::open(MemStorage::new(), MemStorage::new()).unwrap();
        let id = mgr
            .begin(Step::OpenPayment {
                txid: txid(3),
                amount_sats: 10,
                collateral: 1,
                psc_nonce: 0,
            })
            .unwrap();
        mgr.complete(id, Outcome::PaymentRegistered { payment_id: 1 })
            .unwrap();
        let id = mgr
            .begin(Step::AcceptanceSend {
                payment_id: 1,
                accepted: false,
            })
            .unwrap();
        mgr.complete(id, Outcome::Rejected).unwrap();
        let p = &mgr.ledger().payments[&1];
        assert!(p.offered && !p.accepted);
        assert_eq!(mgr.ledger().value_accepted_sats, 0);
    }
}
