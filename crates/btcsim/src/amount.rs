//! Bitcoin amounts in satoshis, with checked arithmetic.

use std::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Sub};

/// Satoshis per bitcoin.
pub const SATS_PER_BTC: u64 = 100_000_000;

/// Maximum money supply in satoshis (21 million BTC).
pub const MAX_MONEY: u64 = 21_000_000 * SATS_PER_BTC;

/// A monetary amount in satoshis, guaranteed `<= MAX_MONEY`.
///
/// ```
/// use btcfast_btcsim::Amount;
///
/// let price = Amount::from_btc_f64(0.015).unwrap();
/// let fee = Amount::from_sats(1_000).unwrap();
/// assert_eq!(price.checked_add(fee).unwrap().to_sats(), 1_501_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(u64);

/// Error for amounts exceeding the money supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmountError {
    /// The satoshi value that was rejected.
    pub sats: u64,
}

impl fmt::Display for AmountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "amount {} exceeds maximum money supply", self.sats)
    }
}

impl Error for AmountError {}

impl Amount {
    /// Zero satoshis.
    pub const ZERO: Amount = Amount(0);

    /// Creates an amount from satoshis.
    ///
    /// # Errors
    ///
    /// Returns [`AmountError`] when the value exceeds 21M BTC.
    pub fn from_sats(sats: u64) -> Result<Amount, AmountError> {
        if sats > MAX_MONEY {
            Err(AmountError { sats })
        } else {
            Ok(Amount(sats))
        }
    }

    /// Creates an amount from whole bitcoins.
    ///
    /// # Errors
    ///
    /// Returns [`AmountError`] when the value exceeds 21M BTC.
    pub fn from_btc(btc: u64) -> Result<Amount, AmountError> {
        Amount::from_sats(btc.saturating_mul(SATS_PER_BTC))
    }

    /// Creates an amount from a fractional BTC value (rounds to the nearest
    /// satoshi). Returns `None` for negative, NaN, or out-of-range values.
    pub fn from_btc_f64(btc: f64) -> Option<Amount> {
        if !btc.is_finite() || btc < 0.0 {
            return None;
        }
        let sats = (btc * SATS_PER_BTC as f64).round();
        if sats > MAX_MONEY as f64 {
            return None;
        }
        Some(Amount(sats as u64))
    }

    /// The value in satoshis.
    pub fn to_sats(&self) -> u64 {
        self.0
    }

    /// The value in BTC as a float (for reporting, not consensus).
    pub fn to_btc_f64(&self) -> f64 {
        self.0 as f64 / SATS_PER_BTC as f64
    }

    /// Checked addition staying within the money supply.
    pub fn checked_add(&self, rhs: Amount) -> Option<Amount> {
        let sum = self.0.checked_add(rhs.0)?;
        Amount::from_sats(sum).ok()
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating subtraction (floors at zero).
    pub fn saturating_sub(&self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add for Amount {
    type Output = Amount;
    /// # Panics
    ///
    /// Panics on overflow past the money supply; use
    /// [`Amount::checked_add`] for untrusted values.
    fn add(self, rhs: Amount) -> Amount {
        self.checked_add(rhs).expect("amount addition overflow")
    }
}

impl Sub for Amount {
    type Output = Amount;
    /// # Panics
    ///
    /// Panics on underflow; use [`Amount::checked_sub`] for untrusted values.
    fn sub(self, rhs: Amount) -> Amount {
        self.checked_sub(rhs).expect("amount subtraction underflow")
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| acc + a)
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Amount({} sats)", self.0)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let btc = self.0 / SATS_PER_BTC;
        let rem = self.0 % SATS_PER_BTC;
        write!(f, "{btc}.{rem:08} BTC")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_limits() {
        assert!(Amount::from_sats(MAX_MONEY).is_ok());
        assert!(Amount::from_sats(MAX_MONEY + 1).is_err());
        assert!(Amount::from_btc(21_000_000).is_ok());
        assert!(Amount::from_btc(21_000_001).is_err());
    }

    #[test]
    fn btc_f64_round_trip() {
        let a = Amount::from_btc_f64(1.5).unwrap();
        assert_eq!(a.to_sats(), 150_000_000);
        assert_eq!(a.to_btc_f64(), 1.5);
        assert!(Amount::from_btc_f64(-1.0).is_none());
        assert!(Amount::from_btc_f64(f64::NAN).is_none());
        assert!(Amount::from_btc_f64(22_000_000.0).is_none());
    }

    #[test]
    fn checked_arithmetic() {
        let a = Amount::from_sats(10).unwrap();
        let b = Amount::from_sats(3).unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_sats(), 13);
        assert_eq!(a.checked_sub(b).unwrap().to_sats(), 7);
        assert!(b.checked_sub(a).is_none());
        assert_eq!(b.saturating_sub(a), Amount::ZERO);
        let max = Amount::from_sats(MAX_MONEY).unwrap();
        assert!(max.checked_add(Amount::from_sats(1).unwrap()).is_none());
    }

    #[test]
    fn sum_works() {
        let total: Amount = (1..=4).map(|i| Amount::from_sats(i).unwrap()).sum();
        assert_eq!(total.to_sats(), 10);
    }

    #[test]
    fn display_format() {
        let a = Amount::from_sats(150_000_001).unwrap();
        assert_eq!(a.to_string(), "1.50000001 BTC");
        assert_eq!(Amount::ZERO.to_string(), "0.00000000 BTC");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = Amount::ZERO - Amount::from_sats(1).unwrap();
    }
}
