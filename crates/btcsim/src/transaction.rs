//! Transactions: outpoints, inputs/outputs, txids, sighash computation,
//! signing and verification.
//!
//! Txids commit to everything *except* witnesses (segwit-style), so signing
//! an input does not change the transaction id. That property matters for
//! BTCFast: the customer commits to a specific txid in the escrow payment
//! intent before the merchant has seen the signatures.

use crate::amount::Amount;
use crate::script::{
    spend_statement, verify_spend, ScriptError, ScriptPubKey, SpendStatement, Witness,
};
use btcfast_crypto::keys::{Address, KeyPair};
use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::Hash256;
use std::error::Error;
use std::fmt;

/// A reference to a specific output of a prior transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OutPoint {
    /// The funding transaction id.
    pub txid: Hash256,
    /// The output index within that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// The null outpoint used by coinbase inputs.
    pub const NULL: OutPoint = OutPoint {
        txid: Hash256::ZERO,
        vout: u32::MAX,
    };

    /// True for the coinbase sentinel.
    pub fn is_null(&self) -> bool {
        *self == OutPoint::NULL
    }

    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.txid.0);
        out.extend_from_slice(&self.vout.to_le_bytes());
    }
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.txid, self.vout)
    }
}

/// A transaction input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxIn {
    /// The output being spent ([`OutPoint::NULL`] for coinbase).
    pub previous_output: OutPoint,
    /// Arbitrary data for coinbase inputs (height tag + miner extra);
    /// empty for ordinary spends.
    pub coinbase_data: Vec<u8>,
    /// The unlocking witness; `None` until signed (and always `None` for
    /// coinbase inputs).
    pub witness: Option<Witness>,
}

impl TxIn {
    /// An unsigned spend of `outpoint`.
    pub fn spend(outpoint: OutPoint) -> TxIn {
        TxIn {
            previous_output: outpoint,
            coinbase_data: Vec::new(),
            witness: None,
        }
    }

    /// True if this is a coinbase input.
    pub fn is_coinbase(&self) -> bool {
        self.previous_output.is_null()
    }
}

/// A transaction output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxOut {
    /// The amount locked by this output.
    pub value: Amount,
    /// The locking script.
    pub script_pubkey: ScriptPubKey,
}

impl TxOut {
    /// A standard payment to an address.
    pub fn payment(value: Amount, to: Address) -> TxOut {
        TxOut {
            value,
            script_pubkey: ScriptPubKey::P2pkh(to),
        }
    }

    /// A zero-value data carrier.
    pub fn data(data: Vec<u8>) -> TxOut {
        TxOut {
            value: Amount::ZERO,
            script_pubkey: ScriptPubKey::OpReturn(data),
        }
    }

    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.value.to_sats().to_le_bytes());
        self.script_pubkey.encode_to(out);
    }
}

/// A Bitcoin-style transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Version tag (currently always 1; reserved for format evolution).
    pub version: u32,
    /// Inputs.
    pub inputs: Vec<TxIn>,
    /// Outputs.
    pub outputs: Vec<TxOut>,
    /// Earliest block height at which the transaction may confirm.
    pub lock_time: u64,
}

/// Transaction-level validation failures (structure only; UTXO context
/// checks live in [`crate::utxo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// No inputs.
    NoInputs,
    /// No outputs.
    NoOutputs,
    /// A non-coinbase transaction carried a coinbase input, or vice versa.
    MisplacedCoinbase,
    /// Duplicate outpoint spent twice within the same transaction.
    DuplicateInput,
    /// Input index out of range when signing.
    InputIndexOutOfRange(usize),
    /// A script check failed.
    Script(ScriptError),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::NoInputs => write!(f, "transaction has no inputs"),
            TxError::NoOutputs => write!(f, "transaction has no outputs"),
            TxError::MisplacedCoinbase => write!(f, "coinbase input in unexpected position"),
            TxError::DuplicateInput => write!(f, "transaction spends the same outpoint twice"),
            TxError::InputIndexOutOfRange(i) => write!(f, "input index {i} out of range"),
            TxError::Script(e) => write!(f, "script error: {e}"),
        }
    }
}

impl Error for TxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxError::Script(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScriptError> for TxError {
    fn from(e: ScriptError) -> TxError {
        TxError::Script(e)
    }
}

impl Transaction {
    /// Creates an unsigned transaction spending `inputs` into `outputs`.
    pub fn new(inputs: Vec<TxIn>, outputs: Vec<TxOut>) -> Transaction {
        Transaction {
            version: 1,
            inputs,
            outputs,
            lock_time: 0,
        }
    }

    /// Creates a coinbase transaction paying the block subsidy plus fees to
    /// the miner. The `height` tag makes every coinbase unique.
    pub fn coinbase(height: u64, reward: Amount, to: Address, extra: &[u8]) -> Transaction {
        let mut coinbase_data = height.to_le_bytes().to_vec();
        coinbase_data.extend_from_slice(extra);
        Transaction {
            version: 1,
            inputs: vec![TxIn {
                previous_output: OutPoint::NULL,
                coinbase_data,
                witness: None,
            }],
            outputs: vec![TxOut::payment(reward, to)],
            lock_time: 0,
        }
    }

    /// True if this is a coinbase transaction.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].is_coinbase()
    }

    /// Serializes the witness-independent part of the transaction; the
    /// double-SHA256 of this is the txid.
    pub fn encode_core(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.inputs.len() * 40 + self.outputs.len() * 32);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.inputs.len() as u32).to_le_bytes());
        for input in &self.inputs {
            input.previous_output.encode_to(&mut out);
            out.extend_from_slice(&(input.coinbase_data.len() as u32).to_le_bytes());
            out.extend_from_slice(&input.coinbase_data);
        }
        out.extend_from_slice(&(self.outputs.len() as u32).to_le_bytes());
        for output in &self.outputs {
            output.encode_to(&mut out);
        }
        out.extend_from_slice(&self.lock_time.to_le_bytes());
        out
    }

    /// The transaction id: double-SHA256 of the witness-independent
    /// serialization.
    pub fn txid(&self) -> Hash256 {
        sha256d(&self.encode_core())
    }

    /// Serialized size in bytes including witnesses — the fee-rate
    /// denominator.
    pub fn size_bytes(&self) -> usize {
        let mut size = self.encode_core().len();
        for input in &self.inputs {
            if let Some(witness) = &input.witness {
                let mut buf = Vec::with_capacity(97);
                witness.encode_to(&mut buf);
                size += buf.len();
            }
        }
        size
    }

    /// The digest an input's signature commits to: the core serialization,
    /// the input index, and the script being satisfied.
    ///
    /// Committing to the spent script binds the signature to the specific
    /// coin, preventing witness replay across outputs.
    pub fn sighash(&self, input_index: usize, spent_script: &ScriptPubKey) -> Hash256 {
        let mut data = self.encode_core();
        data.extend_from_slice(&(input_index as u32).to_le_bytes());
        spent_script.encode_to(&mut data);
        sha256d(&data)
    }

    /// Signs input `input_index` with `key`, attaching the witness.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::InputIndexOutOfRange`] for a bad index or
    /// [`TxError::MisplacedCoinbase`] when signing a coinbase input.
    pub fn sign_input(
        &mut self,
        input_index: usize,
        key: &KeyPair,
        spent_script: &ScriptPubKey,
    ) -> Result<(), TxError> {
        if input_index >= self.inputs.len() {
            return Err(TxError::InputIndexOutOfRange(input_index));
        }
        if self.inputs[input_index].is_coinbase() {
            return Err(TxError::MisplacedCoinbase);
        }
        let sighash = self.sighash(input_index, spent_script);
        // Recoverable signing costs the same as plain signing and attaches
        // the nonce-point hint that lets verifiers batch this input's
        // ECDSA check (the hint stays off the wire — see `Witness`).
        let (signature, recovery) = key.sign_recoverable(&sighash.0);
        let witness = Witness {
            pubkey: *key.public(),
            signature,
            recovery: Some(recovery),
        };
        self.inputs[input_index].witness = Some(witness);
        Ok(())
    }

    /// Verifies the witness on input `input_index` against the script it
    /// spends.
    ///
    /// # Errors
    ///
    /// Propagates [`ScriptError`] describing the failure.
    pub fn verify_input(
        &self,
        input_index: usize,
        spent_script: &ScriptPubKey,
    ) -> Result<(), TxError> {
        let input = self
            .inputs
            .get(input_index)
            .ok_or(TxError::InputIndexOutOfRange(input_index))?;
        let sighash = self.sighash(input_index, spent_script);
        verify_spend(spent_script, input.witness.as_ref(), &sighash.0)?;
        Ok(())
    }

    /// Extracts the ECDSA statement each input's witness must satisfy,
    /// running every non-signature script rule in [`verify_spend`]'s order.
    ///
    /// `spent_scripts[i]` must be the script locking input `i`. The returned
    /// statements let a batch verifier check all signatures at once while
    /// guaranteeing that structural failures (unspendable script, missing
    /// witness, pubkey mismatch) surface with the same [`ScriptError`] the
    /// sequential [`Self::verify_input`] loop would report.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::InputIndexOutOfRange`] when `spent_scripts` is
    /// longer than the input list, or the first [`ScriptError`] in input
    /// order.
    pub fn signature_statements(
        &self,
        spent_scripts: &[ScriptPubKey],
    ) -> Result<Vec<SpendStatement>, TxError> {
        let mut out = Vec::with_capacity(spent_scripts.len());
        for (index, script) in spent_scripts.iter().enumerate() {
            let input = self
                .inputs
                .get(index)
                .ok_or(TxError::InputIndexOutOfRange(index))?;
            let sighash = self.sighash(index, script);
            out.push(spend_statement(script, input.witness.as_ref(), &sighash.0)?);
        }
        Ok(out)
    }

    /// Structural validity checks that need no UTXO context.
    ///
    /// # Errors
    ///
    /// See [`TxError`].
    pub fn check_structure(&self) -> Result<(), TxError> {
        if self.inputs.is_empty() {
            return Err(TxError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(TxError::NoOutputs);
        }
        let coinbase_inputs = self.inputs.iter().filter(|i| i.is_coinbase()).count();
        if coinbase_inputs > 0 && (coinbase_inputs != 1 || self.inputs.len() != 1) {
            return Err(TxError::MisplacedCoinbase);
        }
        let mut seen = std::collections::HashSet::new();
        for input in &self.inputs {
            if !input.is_coinbase() && !seen.insert(input.previous_output) {
                return Err(TxError::DuplicateInput);
            }
        }
        for output in &self.outputs {
            output.script_pubkey.check_standard()?;
        }
        Ok(())
    }

    /// Total output value.
    pub fn total_output(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Outputs paying a given address (vout, value) — wallet scanning helper.
    pub fn outputs_to(&self, address: &Address) -> Vec<(u32, Amount)> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match &o.script_pubkey {
                ScriptPubKey::P2pkh(a) if a == address => Some((i as u32, o.value)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcfast_crypto::keys::KeyPair;

    fn kp() -> KeyPair {
        KeyPair::from_seed(b"tx tests")
    }

    fn sats(v: u64) -> Amount {
        Amount::from_sats(v).unwrap()
    }

    fn funding_outpoint(tag: u8) -> OutPoint {
        OutPoint {
            txid: sha256d(&[tag]),
            vout: 0,
        }
    }

    #[test]
    fn txid_independent_of_witness() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(1))],
            vec![TxOut::payment(sats(1000), key.address())],
        );
        let unsigned_txid = tx.txid();
        tx.sign_input(0, &key, &script).unwrap();
        assert_eq!(tx.txid(), unsigned_txid);
    }

    #[test]
    fn sign_then_verify() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(2))],
            vec![TxOut::payment(
                sats(5000),
                KeyPair::from_seed(b"m").address(),
            )],
        );
        assert!(tx.verify_input(0, &script).is_err()); // unsigned
        tx.sign_input(0, &key, &script).unwrap();
        tx.verify_input(0, &script).unwrap();
    }

    #[test]
    fn signature_binds_outputs() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(3))],
            vec![TxOut::payment(
                sats(5000),
                KeyPair::from_seed(b"m").address(),
            )],
        );
        tx.sign_input(0, &key, &script).unwrap();
        // Redirect the payment after signing — the witness must not verify.
        tx.outputs[0] = TxOut::payment(sats(5000), KeyPair::from_seed(b"thief").address());
        assert_eq!(
            tx.verify_input(0, &script),
            Err(TxError::Script(ScriptError::BadSignature))
        );
    }

    #[test]
    fn signature_binds_spent_script() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let other_script = ScriptPubKey::P2pkh(KeyPair::from_seed(b"other").address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(4))],
            vec![TxOut::payment(sats(1), key.address())],
        );
        tx.sign_input(0, &key, &script).unwrap();
        // Verifying against a different spent script fails (pubkey mismatch
        // first, since the address differs).
        assert!(tx.verify_input(0, &other_script).is_err());
    }

    #[test]
    fn coinbase_structure() {
        let tx = Transaction::coinbase(7, sats(50_0000_0000), kp().address(), b"extra");
        assert!(tx.is_coinbase());
        tx.check_structure().unwrap();
        // Distinct heights give distinct txids.
        let tx2 = Transaction::coinbase(8, sats(50_0000_0000), kp().address(), b"extra");
        assert_ne!(tx.txid(), tx2.txid());
    }

    #[test]
    fn coinbase_cannot_be_signed() {
        let mut tx = Transaction::coinbase(1, sats(1), kp().address(), b"");
        let script = ScriptPubKey::P2pkh(kp().address());
        assert_eq!(
            tx.sign_input(0, &kp(), &script),
            Err(TxError::MisplacedCoinbase)
        );
    }

    #[test]
    fn structure_rejects_empty() {
        assert_eq!(
            Transaction::new(vec![], vec![TxOut::payment(sats(1), kp().address())])
                .check_structure(),
            Err(TxError::NoInputs)
        );
        assert_eq!(
            Transaction::new(vec![TxIn::spend(funding_outpoint(5))], vec![]).check_structure(),
            Err(TxError::NoOutputs)
        );
    }

    #[test]
    fn structure_rejects_duplicate_inputs() {
        let tx = Transaction::new(
            vec![
                TxIn::spend(funding_outpoint(6)),
                TxIn::spend(funding_outpoint(6)),
            ],
            vec![TxOut::payment(sats(1), kp().address())],
        );
        assert_eq!(tx.check_structure(), Err(TxError::DuplicateInput));
    }

    #[test]
    fn structure_rejects_mixed_coinbase() {
        let mut cb = Transaction::coinbase(1, sats(1), kp().address(), b"");
        cb.inputs.push(TxIn::spend(funding_outpoint(7)));
        assert_eq!(cb.check_structure(), Err(TxError::MisplacedCoinbase));
    }

    #[test]
    fn structure_rejects_oversized_op_return() {
        let tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(8))],
            vec![TxOut::data(vec![0; 100])],
        );
        assert!(matches!(
            tx.check_structure(),
            Err(TxError::Script(ScriptError::OpReturnTooLarge(100)))
        ));
    }

    #[test]
    fn outputs_to_scans_address() {
        let me = kp().address();
        let other = KeyPair::from_seed(b"other").address();
        let tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(9))],
            vec![
                TxOut::payment(sats(10), other),
                TxOut::payment(sats(20), me),
                TxOut::data(b"memo".to_vec()),
                TxOut::payment(sats(30), me),
            ],
        );
        assert_eq!(tx.outputs_to(&me), vec![(1, sats(20)), (3, sats(30))]);
        assert_eq!(tx.total_output().to_sats(), 60);
    }

    #[test]
    fn size_grows_with_witness() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(10))],
            vec![TxOut::payment(sats(1), key.address())],
        );
        let unsigned = tx.size_bytes();
        tx.sign_input(0, &key, &script).unwrap();
        assert_eq!(tx.size_bytes(), unsigned + 97); // 33B pubkey + 64B sig
    }

    #[test]
    fn distinct_txs_distinct_txids() {
        let a = Transaction::new(
            vec![TxIn::spend(funding_outpoint(11))],
            vec![TxOut::payment(sats(1), kp().address())],
        );
        let mut b = a.clone();
        b.outputs[0].value = sats(2);
        assert_ne!(a.txid(), b.txid());
    }

    #[test]
    fn sign_input_index_out_of_range() {
        let key = kp();
        let script = ScriptPubKey::P2pkh(key.address());
        let mut tx = Transaction::new(
            vec![TxIn::spend(funding_outpoint(12))],
            vec![TxOut::payment(sats(1), key.address())],
        );
        assert_eq!(
            tx.sign_input(5, &key, &script),
            Err(TxError::InputIndexOutOfRange(5))
        );
        assert_eq!(
            tx.verify_input(5, &script),
            Err(TxError::InputIndexOutOfRange(5))
        );
    }
}
