//! E1's hot path as a µ-benchmark: host cost of one fast payment
//! (build + register + decide), excluding session provisioning.

use btcfast::session::FastPaySession;
use btcfast::SessionConfig;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_fast_payment(c: &mut Criterion) {
    let mut seed = 10_000u64;
    c.bench_function("fast_payment_end_to_end", |b| {
        b.iter_batched(
            || {
                seed += 1;
                FastPaySession::new(SessionConfig::default(), seed)
            },
            |mut session| {
                let report = session.run_fast_payment(black_box(1_000_000)).unwrap();
                assert!(report.accepted);
                report
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_session_provisioning(c: &mut Criterion) {
    let mut seed = 20_000u64;
    c.bench_function("session_provisioning", |b| {
        b.iter(|| {
            seed += 1;
            FastPaySession::new(SessionConfig::default(), black_box(seed))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fast_payment, bench_session_provisioning
}
criterion_main!(benches);
