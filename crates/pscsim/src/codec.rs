//! A minimal deterministic binary codec for contract storage values and
//! call arguments.
//!
//! Contracts persist state as bytes (as on any real PSC chain); this codec
//! is the ABI. It is deliberately simple: little-endian fixed-width
//! integers, length-prefixed byte strings, and derived-by-hand composites.

use std::error::Error;
use std::fmt;

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// Trailing bytes remained after decoding the value.
    TrailingBytes(usize),
    /// A length prefix exceeded the decoder's hard cap (hostile input).
    LengthCap {
        /// The length the input claimed.
        len: usize,
        /// The maximum the decoder accepts.
        max: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::LengthCap { len, max } => {
                write!(f, "length prefix {len} exceeds decoder cap {max}")
            }
        }
    }
}

impl Error for CodecError {}

/// A value that can be serialized into the storage/ABI format.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out);
        out
    }
}

/// A value that can be deserialized from the storage/ABI format.
pub trait Decode: Sized {
    /// Reads a value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed input.
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Decodes a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed input or leftovers.
    fn decode(mut input: &[u8]) -> Result<Self, CodecError> {
        let value = Self::decode_from(&mut input)?;
        if input.is_empty() {
            Ok(value)
        } else {
            Err(CodecError::TrailingBytes(input.len()))
        }
    }
}

/// Reads exactly `n` bytes from the front of the input.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128);

impl Encode for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

impl Encode for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode_to(out);
    }
}

impl Decode for String {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes = Vec::<u8>::decode_from(input)?;
        String::from_utf8(bytes).map_err(|_| CodecError::BadTag(0xFF))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes = take(input, N)?;
        Ok(bytes.try_into().expect("sized take"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(input)?)),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode_from(input)? as usize;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode_from(input)?);
        }
        Ok(out)
    }
}

impl Encode for crate::account::AccountId {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
}

impl Decode for crate::account::AccountId {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(crate::account::AccountId(<[u8; 20]>::decode_from(input)?))
    }
}

impl Encode for btcfast_crypto::Hash256 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
}

impl Decode for btcfast_crypto::Hash256 {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(btcfast_crypto::Hash256(<[u8; 32]>::decode_from(input)?))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode_from(input)?, B::decode_from(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn ints() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(12345u32);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
    }

    #[test]
    fn bools_and_bad_tag() {
        round_trip(true);
        round_trip(false);
        assert_eq!(bool::decode(&[2]), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn byte_vectors_and_strings() {
        round_trip(Vec::<u8>::new());
        round_trip(vec![1u8, 2, 3]);
        round_trip("hello".to_string());
        round_trip(String::new());
    }

    #[test]
    fn options() {
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
    }

    #[test]
    fn vectors_of_values() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
    }

    #[test]
    fn tuples_and_ids() {
        round_trip((7u32, "x".to_string()));
        round_trip(crate::account::AccountId([9; 20]));
        round_trip(btcfast_crypto::Hash256([7; 32]));
    }

    #[test]
    fn truncated_input_fails() {
        assert_eq!(u64::decode(&[1, 2, 3]), Err(CodecError::UnexpectedEnd));
        let mut encoded = vec![5u8, 0, 0, 0]; // claims 5 bytes
        encoded.push(1);
        assert_eq!(Vec::<u8>::decode(&encoded), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = 7u32.encode();
        encoded.push(0);
        assert_eq!(u32::decode(&encoded), Err(CodecError::TrailingBytes(1)));
    }

    proptest! {
        #[test]
        fn prop_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            round_trip(data);
        }

        #[test]
        fn prop_u128_round_trip(v in any::<u128>()) {
            round_trip(v);
        }

        #[test]
        fn prop_nested_round_trip(v in proptest::collection::vec(any::<u64>(), 0..20),
                                  s in ".*") {
            round_trip((42u32, s));
            round_trip(v);
        }
    }
}
