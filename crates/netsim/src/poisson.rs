//! Poisson-process helpers: exponential inter-arrival times for block
//! discovery.
//!
//! Bitcoin block discovery is a Poisson process with rate `1/600 s⁻¹`; when
//! miners split hashrate, each miner's discoveries form an independent
//! thinned process. The simulation drives miner events with these samples.

use crate::time::SimTime;
use rand::Rng;

/// Samples an exponential inter-arrival time with the given mean.
///
/// # Panics
///
/// Panics unless `mean_secs` is positive and finite.
pub fn exponential<R: Rng + ?Sized>(mean_secs: f64, rng: &mut R) -> SimTime {
    assert!(
        mean_secs.is_finite() && mean_secs > 0.0,
        "mean must be positive"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimTime::from_secs_f64(-mean_secs * u.ln())
}

/// A per-miner block arrival process: total network interval `interval_secs`
/// split by `hashrate_share`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockArrivals {
    /// Expected whole-network block interval in seconds.
    pub interval_secs: f64,
    /// This miner's share of total hashrate, in `(0, 1]`.
    pub hashrate_share: f64,
}

impl BlockArrivals {
    /// Creates a process for one miner.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hashrate_share <= 1` and `interval_secs > 0`.
    pub fn new(interval_secs: f64, hashrate_share: f64) -> BlockArrivals {
        assert!(interval_secs > 0.0, "interval must be positive");
        assert!(
            hashrate_share > 0.0 && hashrate_share <= 1.0,
            "hashrate share must be in (0, 1]"
        );
        BlockArrivals {
            interval_secs,
            hashrate_share,
        }
    }

    /// This miner's expected time between blocks.
    pub fn mean_secs(&self) -> f64 {
        self.interval_secs / self.hashrate_share
    }

    /// Samples the time until this miner's next block.
    pub fn next_block_in<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        exponential(self.mean_secs(), rng)
    }
}

/// An open-loop request arrival process: Poisson arrivals at a fixed
/// offered rate, independent of how fast the system under test completes
/// work.
///
/// Closed-loop drivers (issue → wait → issue) hide saturation: when the
/// server slows down the driver slows down with it, so queueing delay
/// never shows up in the measurements (coordinated omission). An open-loop
/// schedule is fixed *before* the run — arrival times are a pure function
/// of the seed — so latency can be charged from each request's scheduled
/// arrival even when the server falls behind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopArrivals {
    /// Offered arrival rate, events per simulated second.
    pub rate_per_sec: f64,
}

impl OpenLoopArrivals {
    /// Creates a process with the given offered rate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn new(rate_per_sec: f64) -> OpenLoopArrivals {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        OpenLoopArrivals { rate_per_sec }
    }

    /// Expected time between arrivals, seconds.
    pub fn mean_secs(&self) -> f64 {
        1.0 / self.rate_per_sec
    }

    /// Samples the whole schedule up front: `count` cumulative arrival
    /// offsets from `t = 0`, strictly increasing. The schedule is a pure
    /// function of the RNG stream, so the same seeded RNG always yields a
    /// byte-identical schedule.
    pub fn schedule<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<SimTime> {
        let mut at = SimTime::ZERO;
        (0..count)
            .map(|_| {
                // Exponential gaps round to ≥ 1 µs below, so arrivals
                // stay strictly ordered even at extreme offered rates.
                let gap = exponential(self.mean_secs(), rng);
                at += gap.max(SimTime::from_micros(1));
                at
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| exponential(600.0, &mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((550.0..650.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn exponential_always_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(exponential(1.0, &mut rng) > SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        exponential(0.0, &mut rng);
    }

    #[test]
    fn thinned_process_scales_mean() {
        let honest = BlockArrivals::new(600.0, 0.9);
        let attacker = BlockArrivals::new(600.0, 0.1);
        assert!((honest.mean_secs() - 666.67).abs() < 0.01);
        assert_eq!(attacker.mean_secs(), 6000.0);
    }

    #[test]
    fn split_processes_sum_to_network_rate() {
        // Rate(honest) + rate(attacker) == network rate.
        let q = 0.3;
        let honest = BlockArrivals::new(600.0, 1.0 - q);
        let attacker = BlockArrivals::new(600.0, q);
        let total_rate = 1.0 / honest.mean_secs() + 1.0 / attacker.mean_secs();
        assert!((total_rate - 1.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hashrate")]
    fn bad_share_panics() {
        BlockArrivals::new(600.0, 0.0);
    }

    #[test]
    fn open_loop_schedule_is_seed_deterministic_and_ordered() {
        let arrivals = OpenLoopArrivals::new(4.0);
        let a = arrivals.schedule(500, &mut StdRng::seed_from_u64(21));
        let b = arrivals.schedule(500, &mut StdRng::seed_from_u64(21));
        assert_eq!(a, b, "same seed must yield the same schedule");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let c = arrivals.schedule(500, &mut StdRng::seed_from_u64(22));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn open_loop_schedule_mean_gap_matches_rate() {
        let arrivals = OpenLoopArrivals::new(10.0);
        let schedule = arrivals.schedule(20_000, &mut StdRng::seed_from_u64(23));
        let span = schedule.last().unwrap().as_secs_f64();
        let mean_gap = span / schedule.len() as f64;
        assert!(
            (0.09..0.11).contains(&mean_gap),
            "mean gap {mean_gap}s at rate 10/s"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn open_loop_zero_rate_panics() {
        OpenLoopArrivals::new(0.0);
    }
}
