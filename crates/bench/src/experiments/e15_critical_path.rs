//! E15 — critical-path decomposition of accept latency under faults.
//!
//! Sweeps packet-loss intensity over seeded chaos payments, rebuilds
//! each payment's causal span tree from the rendered JSONL trace
//! ([`btcfast_obs::build_trees`]), and decomposes end-to-end accept
//! latency into the buckets the paper's latency argument is made of:
//! transport wait (retransmissions + backoff), merchant verify, escrow
//! registration, queueing, and everything else. The per-bucket slices
//! are an exact partition of the root span, so every row's bucket
//! percentages account for 100% of the measured latency — no hidden
//! time. An SLO checker gates `accept_p99` against a budget and names
//! the dominant bucket when the budget is blown.
//!
//! Determinism contract: every cell is a pure function of its seeds, so
//! the rendered table is byte-identical across repeated runs and across
//! worker-pool sizes; the forest itself must reconstruct well-formed
//! (one root per payment, no orphans, nested intervals) at every swept
//! intensity.

use crate::table::{f3, Table};
use btcfast::chaos::ChaosSession;
use btcfast::robustness::ChaosConfig;
use btcfast::SessionConfig;
use btcfast_crypto::WorkerPool;
use btcfast_netsim::faults::FaultPlan;
use btcfast_netsim::time::SimTime;
use btcfast_obs::critical_path::{breakdown, critical_path, self_time_us};
use btcfast_obs::{build_trees, check_nesting, check_slo, render_jsonl, Breakdown, Bucket};

const AMOUNT_SATS: u64 = 1_000_000;

/// End-to-end accept budget for the SLO gate, µs. Generous enough that
/// the clean-network column always passes; heavy loss may blow it, in
/// which case the verdict column names the dominant bucket.
const SLO_BUDGET_US: u64 = 60_000_000;

fn chaos_config() -> ChaosConfig {
    let mut config = ChaosConfig::default();
    config.transport.max_attempts = 12;
    config.phase_deadline = SimTime::from_secs(60);
    config
}

fn plan_for(loss: f64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if loss > 0.0 {
        plan.loss_window(SimTime::ZERO, SimTime::from_secs(86_400), loss);
    }
    plan
}

/// One payment's trace, rendered: the JSONL plus its reconstructed
/// payment-tree breakdown and the name of the critical path's leaf.
struct Trial {
    jsonl: String,
    breakdown: Breakdown,
    critical_leaf: String,
}

fn run_trial(loss: f64, seed: u64) -> Trial {
    let mut chaos = ChaosSession::new(
        SessionConfig::default(),
        chaos_config(),
        plan_for(loss),
        seed,
    );
    let report = chaos
        .run_fast_payment_chaos(AMOUNT_SATS)
        .expect("payment completes inside the retry envelope");
    assert!(report.accepted, "swept intensities stay under give-up");

    let jsonl = render_jsonl(chaos.session.trace());
    let trees = build_trees(&jsonl).expect("trace reconstructs into a forest");
    let tree = trees
        .iter()
        .find(|t| t.root_node().name == "chaos.payment")
        .expect("the payment has a root span");
    check_nesting(tree).expect("child spans nest inside their parents");

    let b = breakdown(tree);
    assert_eq!(
        b.bucket_sum_us(),
        tree.root_duration_us(),
        "bucket slices partition the root span exactly"
    );
    let path = critical_path(tree);
    // The path's dominant node: the one contributing the most self-time.
    let critical_leaf = path
        .iter()
        .copied()
        .max_by_key(|&i| (self_time_us(tree, i), usize::MAX - i))
        .map(|i| tree.nodes[i].name.clone())
        .unwrap_or_else(|| "—".to_string());
    Trial {
        jsonl,
        breakdown: b,
        critical_leaf,
    }
}

struct Cell {
    loss: f64,
    trials: Vec<Trial>,
    replay_stable: bool,
}

fn run_cell(loss: f64, trials: u32, seed_base: u64) -> Cell {
    let trial_results: Vec<Trial> = (0..trials)
        .map(|t| run_trial(loss, seed_base + u64::from(t) * 7919))
        .collect();
    // Same-seed rerun must render byte-identical JSONL — ids are minted
    // from the seed, not from global state.
    let rerun = run_trial(loss, seed_base);
    let replay_stable = rerun.jsonl == trial_results[0].jsonl;
    Cell {
        loss,
        trials: trial_results,
        replay_stable,
    }
}

/// Runs E15 on a pool with host-default parallelism.
pub fn run(quick: bool) -> Vec<Table> {
    sweep(quick, &WorkerPool::with_default_parallelism())
}

/// Runs the sweep on `pool`. Cells are independent chaos runs mapped in
/// order, so the rendered table is identical at any worker count.
pub fn sweep(quick: bool, pool: &WorkerPool) -> Vec<Table> {
    let intensities: &[f64] = if quick {
        &[0.0, 0.25]
    } else {
        &[0.0, 0.10, 0.25, 0.40]
    };
    let trials: u32 = if quick { 3 } else { 8 };

    let cells: Vec<(usize, f64)> = intensities.iter().copied().enumerate().collect();
    let outcomes = pool.map_coarse(&cells, |&(index, loss)| {
        run_cell(loss, trials, 0xE15_0000 + index as u64 * 1_000_003)
    });

    let mut table = Table::new(
        "E15 — accept-latency critical path vs packet loss",
        &[
            "loss",
            "payments",
            "mean accept (s)",
            "p99 (s)",
            "transport %",
            "verify %",
            "escrow %",
            "queueing %",
            "other %",
            "critical node",
            "replay",
            "slo",
        ],
    );

    for cell in &outcomes {
        let breakdowns: Vec<Breakdown> = cell.trials.iter().map(|t| t.breakdown).collect();
        let n = breakdowns.len() as f64;
        let total: u64 = breakdowns.iter().map(|b| b.total_us).sum();
        let share = |bucket: Bucket| -> String {
            let us: u64 = breakdowns
                .iter()
                .map(|b| b.by_bucket()[bucket as usize])
                .sum();
            f3(us as f64 / total as f64 * 100.0)
        };
        let verdict = check_slo(&breakdowns, SLO_BUDGET_US).expect("non-empty cell");
        // The modal critical node across the cell's trials, ties to the
        // lexically first — deterministic.
        let mut leaves: Vec<&str> = cell
            .trials
            .iter()
            .map(|t| t.critical_leaf.as_str())
            .collect();
        leaves.sort_unstable();
        let critical = leaves
            .chunk_by(|a, b| a == b)
            .max_by_key(|run| run.len())
            .map(|run| run[0])
            .unwrap_or("—");
        table.push(vec![
            f3(cell.loss),
            cell.trials.len().to_string(),
            f3(total as f64 / n / 1e6),
            f3(verdict.p99_us as f64 / 1e6),
            share(Bucket::Transport),
            share(Bucket::Verify),
            share(Bucket::Escrow),
            share(Bucket::Queueing),
            share(Bucket::Other),
            critical.to_string(),
            if cell.replay_stable {
                "stable"
            } else {
                "UNSTABLE"
            }
            .into(),
            if verdict.ok {
                "ok".into()
            } else {
                format!("VIOLATED ({})", verdict.dominant.label())
            },
        ]);
    }

    vec![table]
}

/// Renders the representative span-tree JSONL the CI lane uploads as an
/// artifact: one traced chaos payment at the middle swept intensity.
pub fn span_tree_jsonl() -> String {
    run_trial(0.25, 0xE15_0000 + 1_000_003).jsonl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_rows_cover_every_intensity_with_exact_shares() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2, "one row per swept intensity");
        let rendered = tables[0].render();
        assert!(
            !rendered.contains("UNSTABLE"),
            "replays stable:\n{rendered}"
        );
    }

    #[test]
    fn e15_table_is_byte_identical_across_runs_and_worker_counts() {
        let once = sweep(true, &WorkerPool::new(1));
        let again = sweep(true, &WorkerPool::new(1));
        let parallel = sweep(true, &WorkerPool::new(4));
        assert_eq!(once[0].render(), again[0].render(), "rerun drifted");
        assert_eq!(
            once[0].render(),
            parallel[0].render(),
            "worker count leaked into the table"
        );
    }

    #[test]
    fn e15_span_tree_artifact_reconstructs() {
        let jsonl = span_tree_jsonl();
        let trees = build_trees(&jsonl).expect("artifact parses");
        assert!(trees.iter().any(|t| t.root_node().name == "chaos.payment"));
        for tree in &trees {
            check_nesting(tree).expect("artifact trees nest");
        }
    }
}
