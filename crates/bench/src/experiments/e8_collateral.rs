//! E8 — collateral sizing: the minimum escrow collateral (as a ratio of
//! payment value) that makes a double-spend attack unprofitable, across
//! attacker hashrates and judgment windows.

use crate::table::{f3, Table};
use btcfast_analysis::profit::AttackEconomics;

/// Runs E8.
pub fn run(_quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E8 — minimum collateral ratio C*/v for unprofitable attack",
        &["q", "Δ=2", "Δ=6", "Δ=12"],
    );
    let v = 1_000_000.0;
    for q in [0.05, 0.1, 0.2, 0.3, 0.4, 0.45] {
        let mut row = vec![format!("{q}")];
        for window in [2u64, 6, 12] {
            let econ = AttackEconomics::conservative(q, window);
            match econ.collateral_ratio(v) {
                Some(ratio) => row.push(f3(ratio)),
                None => row.push("∞".into()),
            }
        }
        table.push(row);
    }

    // Second view: expected attacker profit at fixed collateral ratios.
    let mut profit_table = Table::new(
        "E8b — expected attacker profit (sats) at Δ=6, v = 1,000,000 sats",
        &["q", "ratio 0", "ratio 0.5", "ratio 1.0", "ratio 1.5"],
    );
    for q in [0.1, 0.2, 0.3, 0.4] {
        let econ = AttackEconomics::conservative(q, 6);
        let mut row = vec![format!("{q}")];
        for ratio in [0.0, 0.5, 1.0, 1.5] {
            row.push(f3(econ.expected_profit(v, v * ratio)));
        }
        profit_table.push(row);
    }

    vec![table, profit_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_ratios_increase_with_hashrate() {
        let tables = super::run(true);
        let rendered = tables[0].render();
        // Extract the Δ=6 column for q=0.05 and q=0.45.
        let rows: Vec<Vec<&str>> = rendered
            .lines()
            .skip(4)
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split_whitespace().collect())
            .collect();
        let low: f64 = rows[0][2].parse().unwrap();
        let high: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(high > low);
    }
}
