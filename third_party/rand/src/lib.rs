//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ with SplitMix64 seeding.
//!
//! Determinism is a feature here, not a compromise: every simulation in
//! the workspace derives its randomness from a `u64` seed, and this
//! implementation guarantees identical streams across platforms and
//! builds — the property the chaos-injection harness's reproducibility
//! invariant rests on. The streams do **not** match upstream `rand`'s
//! `StdRng` (which is ChaCha12); only the API surface is compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        // 53 uniform bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = sample_u128_below(rng, span);
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    let hi = (rng.next_u64() as u128) << 64;
                    return (hi | rng.next_u64() as u128) as $t;
                }
                let v = sample_u128_below(rng, span);
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Uniform draw in `[0, bound)` by rejection sampling on the top bits.
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    // Rejection zone keeps the draw unbiased.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let hi = (rng.next_u64() as u128) << 64;
        let v = hi | rng.next_u64() as u128;
        if v <= zone {
            return v % bound;
        }
    }
}

/// A generator reproducibly constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matching upstream
    /// `rand`'s seeding strategy, though not its stream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut z = {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                state
            };
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_edges_and_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        StdRng::seed_from_u64(1).gen_bool(1.5);
    }

    #[test]
    fn float_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = sample(dynrng);
        assert!((0.0..1.0).contains(&v));
    }
}
