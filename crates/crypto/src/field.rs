//! The secp256k1 base field GF(p), `p = 2^256 - 2^32 - 977`.

use crate::limbs;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The field prime `p`, little-endian limbs.
const P: [u64; 4] = [
    0xFFFFFFFEFFFFFC2F,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
];

/// `2^256 - p = 2^32 + 977`.
const C: [u64; 4] = [0x1000003D1, 0, 0, 0];

/// Intermediate powers shared by the `invert` and `sqrt` addition chains;
/// `x{k}` is `self^(2^k - 1)`.
struct Ladder {
    x2: FieldElement,
    x22: FieldElement,
    x223: FieldElement,
}

/// An element of the secp256k1 base field, always stored fully reduced.
///
/// ```
/// use btcfast_crypto::field::FieldElement;
///
/// let a = FieldElement::from_u64(3);
/// let b = FieldElement::from_u64(4);
/// assert_eq!(a * a + b * b, FieldElement::from_u64(25));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FieldElement([u64; 4]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// Creates a field element from a small integer.
    pub fn from_u64(v: u64) -> FieldElement {
        FieldElement([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes, reducing modulo `p` if necessary.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> FieldElement {
        let v = limbs::from_be_bytes(bytes);
        FieldElement(limbs::reduce_small(v, 0, &P, &C))
    }

    /// Parses 32 big-endian bytes, returning `None` if the value is `>= p`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<FieldElement> {
        let v = limbs::from_be_bytes(bytes);
        if limbs::cmp(&v, &P) == std::cmp::Ordering::Less {
            Some(FieldElement(v))
        } else {
            None
        }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        limbs::to_be_bytes(&self.0)
    }

    /// Returns true for the additive identity.
    pub fn is_zero(&self) -> bool {
        limbs::is_zero(&self.0)
    }

    /// Returns true if the canonical (reduced) representation is odd — used
    /// for compressed point encoding.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Squares the element via a dedicated squaring routine (roughly 10
    /// word multiplies instead of 16 for a general product).
    pub fn square(self) -> FieldElement {
        let wide = limbs::sqr_wide(&self.0);
        FieldElement(limbs::reduce_wide_c1(wide, &P, C[0]))
    }

    /// Raises the element to an arbitrary 256-bit power given as big-endian
    /// bytes (square-and-multiply).
    pub fn pow_be(self, exponent: &[u8; 32]) -> FieldElement {
        let mut result = FieldElement::ONE;
        for byte in exponent {
            for bit in (0..8).rev() {
                result = result.square();
                if (byte >> bit) & 1 == 1 {
                    result = result * self;
                }
            }
        }
        result
    }

    /// Squares the element `n` times in place-style chaining.
    fn sqr_n(self, n: u32) -> FieldElement {
        let mut out = self;
        for _ in 0..n {
            out = out.square();
        }
        out
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(p-2)`),
    /// computed with the standard secp256k1 addition chain: 255 squarings
    /// and 15 multiplications, versus ~240 multiplications for naive
    /// square-and-multiply over the nearly-all-ones exponent. Inversions sit
    /// on the verify path (odd-multiples table normalization, `to_affine`),
    /// so the chain is worth its explicitness.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero, which has no inverse.
    pub fn invert(self) -> FieldElement {
        assert!(!self.is_zero(), "zero has no multiplicative inverse");
        // The exponent p - 2 is
        // 2^256 - 2^32 - 979 = (223 ones)·0·(22 ones)·0·1111110·0·1·0·1101.
        let l = self.ladder();
        // Tail: shift in the low 33 bits of p - 2 (FFFFFC2D pattern).
        let t = l.x223.sqr_n(23) * l.x22;
        let t = t.sqr_n(5) * self;
        let t = t.sqr_n(3) * l.x2;
        t.sqr_n(2) * self
    }

    /// The shared prefix of the `p - 2` and `(p + 1) / 4` addition chains:
    /// both exponents open with 223 ones, so `invert` and `sqrt` reuse the
    /// same ladder up to `x223` and differ only in their tails.
    fn ladder(self) -> Ladder {
        // x{k} denotes self^(2^k - 1).
        let x2 = self.square() * self;
        let x3 = x2.square() * self;
        let x6 = x3.sqr_n(3) * x3;
        let x9 = x6.sqr_n(3) * x3;
        let x11 = x9.sqr_n(2) * x2;
        let x22 = x11.sqr_n(11) * x11;
        let x44 = x22.sqr_n(22) * x22;
        let x88 = x44.sqr_n(44) * x44;
        let x176 = x88.sqr_n(88) * x88;
        let x220 = x176.sqr_n(44) * x44;
        let x223 = x220.sqr_n(3) * x3;
        Ladder { x2, x22, x223 }
    }

    /// Square root, if one exists. Since `p ≡ 3 (mod 4)`, the candidate is
    /// `x^((p+1)/4)`, computed with an addition chain (254 squarings, 13
    /// multiplications) instead of naive square-and-multiply over the
    /// nearly-all-ones exponent: batch verification lifts one x-coordinate
    /// per hinted signature, so this sits on the accept path. Returns
    /// `None` when `x` is a quadratic non-residue.
    pub fn sqrt(self) -> Option<FieldElement> {
        // (p + 1) / 4 = 2^254 - 2^30 - 244
        //             = (223 ones)·0·(22 ones)·(6 zeros)·11·00.
        let l = self.ladder();
        let t = l.x223.sqr_n(23) * l.x22;
        let t = t.sqr_n(6) * l.x2;
        let candidate = t.sqr_n(2);
        if candidate.square() == self {
            Some(candidate)
        } else {
            None
        }
    }
}

impl Add for FieldElement {
    type Output = FieldElement;
    fn add(self, rhs: FieldElement) -> FieldElement {
        // Branchless: the carry and conditional-subtract branches are
        // ~50/50 on random inputs, and point doubling/addition performs
        // roughly nine of these per call — mispredicts there cost as much
        // as the word arithmetic itself.
        let (sum, carry) = limbs::add(&self.0, &rhs.0);
        // A wrap of 2^256 folds to +C; both operands are < p, so the sum is
        // < 2p and the fold cannot wrap again (see `limbs::reduce_small`).
        let cmask = carry.wrapping_neg();
        let (sum, carry2) = limbs::add(&sum, &[C[0] & cmask, 0, 0, 0]);
        debug_assert_eq!(carry2, 0);
        // Conditional subtract of p, selected by the borrow mask.
        let (diff, borrow) = limbs::sub(&sum, &P);
        let keep = borrow.wrapping_neg(); // all-ones when sum < p
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = (sum[i] & keep) | (diff[i] & !keep);
        }
        FieldElement(out)
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;
    fn sub(self, rhs: FieldElement) -> FieldElement {
        let (diff, borrow) = limbs::sub(&self.0, &rhs.0);
        // Wrapped below zero: add p back. Done branchlessly via a mask for
        // the same mispredict reason as `Add`.
        let mask = borrow.wrapping_neg();
        let (fixed, carry) =
            limbs::add(&diff, &[P[0] & mask, P[1] & mask, P[2] & mask, P[3] & mask]);
        debug_assert_eq!(carry, borrow, "adding p exactly undoes the wrap");
        FieldElement(fixed)
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;
    fn mul(self, rhs: FieldElement) -> FieldElement {
        let wide = limbs::mul_wide(&self.0, &rhs.0);
        FieldElement(limbs::reduce_wide_c1(wide, &P, C[0]))
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;
    fn neg(self) -> FieldElement {
        FieldElement::ZERO - self
    }
}

impl fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FieldElement({})",
            crate::hex::encode(&self.to_be_bytes())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn constants() {
        assert!(FieldElement::ZERO.is_zero());
        assert!(!FieldElement::ONE.is_zero());
        assert!(FieldElement::ONE.is_odd());
    }

    #[test]
    fn p_reduces_to_zero() {
        let p_bytes = limbs::to_be_bytes(&P);
        assert!(FieldElement::from_be_bytes(&p_bytes).is_none());
        assert!(FieldElement::from_be_bytes_reduced(&p_bytes).is_zero());
    }

    #[test]
    fn p_minus_one_negates_to_one() {
        let mut bytes = limbs::to_be_bytes(&P);
        bytes[31] -= 1;
        let pm1 = FieldElement::from_be_bytes(&bytes).unwrap();
        assert_eq!(-pm1, FieldElement::ONE);
        assert_eq!(pm1 + FieldElement::ONE, FieldElement::ZERO);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(fe(2) + fe(3), fe(5));
        assert_eq!(fe(7) - fe(3), fe(4));
        assert_eq!(fe(6) * fe(7), fe(42));
        assert_eq!(fe(3) - fe(5), -fe(2));
    }

    #[test]
    fn inverse_of_small_values() {
        for v in 1..50u64 {
            let x = fe(v);
            assert_eq!(x * x.invert(), FieldElement::ONE, "v = {v}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        let _ = FieldElement::ZERO.invert();
    }

    #[test]
    fn sqrt_of_squares() {
        for v in 1..30u64 {
            let x = fe(v);
            let sq = x.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == x || root == -x, "v = {v}");
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // 5 is a known quadratic non-residue mod the secp256k1 prime
        // (p ≡ 1 mod 5 analysis aside, we verify empirically: if sqrt
        // succeeds the test still checks consistency).
        let mut found_nonresidue = false;
        for v in 2..20u64 {
            if fe(v).sqrt().is_none() {
                found_nonresidue = true;
                break;
            }
        }
        assert!(found_nonresidue, "some small non-residue must exist");
    }

    proptest! {
        /// The sqrt addition chain computes exactly `x^((p+1)/4)` — pinned
        /// against the retained naive square-and-multiply on the explicit
        /// exponent, for residues and non-residues alike.
        #[test]
        fn sqrt_chain_matches_pow_be(bytes in any::<[u8; 32]>()) {
            const EXP: [u8; 32] = [
                0x3f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xbf, 0xff,
                0xff, 0x0c,
            ];
            let x = FieldElement::from_be_bytes_reduced(&bytes);
            let candidate = x.pow_be(&EXP);
            let expected = if candidate.square() == x { Some(candidate) } else { None };
            prop_assert_eq!(x.sqrt(), expected);
        }
    }

    #[test]
    fn curve_equation_for_generator() {
        // Gy^2 = Gx^3 + 7 must hold on secp256k1.
        let gx = FieldElement::from_be_bytes(&crate::hex_arr(
            "79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798",
        ))
        .unwrap();
        let gy = FieldElement::from_be_bytes(&crate::hex_arr(
            "483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8",
        ))
        .unwrap();
        assert_eq!(gy.square(), gx.square() * gx + fe(7));
    }

    fn arb_fe() -> impl Strategy<Value = FieldElement> {
        any::<[u8; 32]>().prop_map(|b| FieldElement::from_be_bytes_reduced(&b))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_commutative(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_mul_associative(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_distributive(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_is_add_neg(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn prop_inverse(a in arb_fe()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.invert(), FieldElement::ONE);
            }
        }

        #[test]
        fn prop_bytes_round_trip(a in arb_fe()) {
            prop_assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()).unwrap(), a);
        }

        #[test]
        fn prop_square_matches_mul(a in arb_fe()) {
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn prop_sqrt_round_trip(a in arb_fe()) {
            let sq = a.square();
            let root = sq.sqrt().expect("squares always have roots");
            prop_assert!(root == a || root == -a);
        }
    }
}
