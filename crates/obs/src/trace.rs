//! A structured span/event tracer on an **injected sim-time clock**.
//!
//! Timestamps are plain `u64` microseconds supplied by the caller — the
//! simulation's own clock, never wall time — so a replay of the same
//! scenario at the same seed produces the **byte-identical** JSONL trace
//! (asserted by tests over the chaos harness and the sharded engine).
//!
//! The tracer is deliberately single-owner (`&mut self`, no interior
//! locking): each session/shard owns its own [`Tracer`] and the caller
//! merges event vectors in a deterministic order. Field values are
//! integers, booleans, and strings only — no floats — so rendering has
//! exactly one byte representation per event.

use std::fmt::Write as _;

/// A trace field value. Deliberately float-free: every variant has one
/// canonical textual form, which is what keeps traces byte-stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Field {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// One recorded trace entry: a completed span (has a duration) or a point
/// event (no duration), stamped with sim-time microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim-time at which the span started / the event occurred, µs.
    pub at_micros: u64,
    /// Span duration in sim-time µs; `None` for point events.
    pub dur_micros: Option<u64>,
    /// Span/event name, e.g. `"session.register"`.
    pub name: &'static str,
    /// Structured attributes, in recording order.
    pub fields: Vec<(&'static str, Field)>,
}

/// Records spans and point events for one single-threaded owner.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A tracer; when `enabled` is false every record call is a no-op and
    /// the event vector stays empty.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a completed span `[start_micros, end_micros]` of sim-time.
    /// A span that ends before it starts records a zero duration rather
    /// than panicking (chaos schedules can reorder observations).
    pub fn span(
        &mut self,
        name: &'static str,
        start_micros: u64,
        end_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            at_micros: start_micros,
            dur_micros: Some(end_micros.saturating_sub(start_micros)),
            name,
            fields,
        });
    }

    /// Records an instantaneous event at `at_micros` of sim-time.
    pub fn point(
        &mut self,
        name: &'static str,
        at_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            at_micros,
            dur_micros: None,
            name,
            fields,
        });
    }

    /// The events recorded so far, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns the recorded events (e.g. to merge per-shard
    /// traces in shard order).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single JSON object with a **stable key order**:
/// `t`, then `span`+`dur_us` or `event`, then each field in recording
/// order. One canonical byte representation per event.
pub fn render_event(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"t\":{}", event.at_micros);
    match event.dur_micros {
        Some(dur) => {
            out.push_str(",\"span\":\"");
            escape_into(&mut out, event.name);
            let _ = write!(out, "\",\"dur_us\":{dur}");
        }
        None => {
            out.push_str(",\"event\":\"");
            escape_into(&mut out, event.name);
            out.push('"');
        }
    }
    for (key, value) in &event.fields {
        out.push_str(",\"");
        escape_into(&mut out, key);
        out.push_str("\":");
        match value {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Field::Str(v) => {
                out.push('"');
                escape_into(&mut out, v);
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

/// Renders an event list as JSONL — one object per line, trailing newline
/// after every line. Equal event lists render to equal bytes.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&render_event(event));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.span("x", 0, 10, vec![]);
        t.point("y", 5, vec![("k", Field::U64(1))]);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_and_points_render_with_stable_key_order() {
        let mut t = Tracer::new(true);
        t.span(
            "session.register",
            100,
            350,
            vec![("payment", Field::U64(7)), ("ok", Field::Bool(true))],
        );
        t.point("engine.batch", 400, vec![("size", 8usize.into())]);
        let jsonl = render_jsonl(t.events());
        assert_eq!(
            jsonl,
            "{\"t\":100,\"span\":\"session.register\",\"dur_us\":250,\"payment\":7,\"ok\":true}\n\
             {\"t\":400,\"event\":\"engine.batch\",\"size\":8}\n"
        );
    }

    #[test]
    fn rendering_is_deterministic_and_escapes_strings() {
        let mut t = Tracer::new(true);
        t.point(
            "note",
            1,
            vec![("msg", Field::Str("a\"b\\c\nd".to_string()))],
        );
        let once = render_jsonl(t.events());
        let twice = render_jsonl(t.events());
        assert_eq!(once, twice);
        assert_eq!(
            once,
            "{\"t\":1,\"event\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\"}\n"
        );
    }

    #[test]
    fn reversed_span_saturates_to_zero_duration() {
        let mut t = Tracer::new(true);
        t.span("odd", 50, 20, vec![]);
        assert_eq!(t.events()[0].dur_micros, Some(0));
    }

    #[test]
    fn take_drains_for_merging() {
        let mut t = Tracer::new(true);
        t.point("a", 1, vec![]);
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert!(t.events().is_empty());
    }
}
