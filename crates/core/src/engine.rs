//! The sharded payment engine: N concurrent customer→merchant sessions.
//!
//! The paper's throughput story is per-merchant: each merchant runs its own
//! PSC node and accepts fast payments independently, so aggregate capacity
//! scales with merchants, not with a shared bottleneck. [`PaymentEngine`]
//! models that as *shards* — each shard owns a complete, independent
//! [`FastPaySession`] (its own BTC chain, mempool, PSC chain, and escrow),
//! so shards share no mutable state and run in parallel on a
//! [`WorkerPool`] without locks.
//!
//! # Determinism
//!
//! Runs replay byte-identically from a single `u64` base seed:
//!
//! * each shard derives its own seed via a splitmix64 finalizer over
//!   `(base_seed, shard_index)` — shard streams never overlap and do not
//!   depend on worker scheduling;
//! * shards are shared-nothing, so execution order across threads cannot
//!   leak into any shard's outcome;
//! * [`WorkerPool::map_coarse`] preserves input order, so the outcome
//!   vector — and the [`EngineReport::fingerprint`] hashed over it — is
//!   independent of the worker count.
//!
//! The fingerprint covers every per-shard observable (accept counts,
//! exact simulated latencies, the PSC state commitment, the BTC tip, and
//! the shard's rendered JSONL trace), so two runs with equal fingerprints
//! executed the same payments against the same final chain states — and
//! recorded byte-identical per-phase traces doing it.

use crate::config::SessionConfig;
use crate::recovery::{Outcome, RecoveryManager, Step};
use crate::session::{FastPaySession, SessionError};
use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::{Hash256, WorkerPool};
use btcfast_netsim::time::SimTime;
use btcfast_store::MemStorage;

/// Knobs of a sharded engine run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-shard session configuration. The escrow deposit is
    /// automatically raised (never lowered) to cover every payment's
    /// collateral for the whole run.
    pub session: SessionConfig,
    /// Independent shards (merchant deployments) to drive.
    pub shards: usize,
    /// Payments each shard executes.
    pub payments_per_shard: usize,
    /// Payments per batch: a batch spends disjoint confirmed coins,
    /// registers all its escrow payments in one PSC block, and is
    /// confirmed by one public BTC block.
    pub batch_size: usize,
    /// Value of each payment, satoshis.
    pub amount_sats: u64,
    /// Crash-restart drill cadence: after every N batches the shard drops
    /// its volatile recovery manager and re-hydrates from the durable
    /// media, asserting the recovered digest matches. `0` disables drills.
    pub crash_restart_every: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            session: SessionConfig::default(),
            shards: 4,
            payments_per_shard: 16,
            batch_size: 8,
            amount_sats: 1_000_000,
            crash_restart_every: 0,
        }
    }
}

/// What one shard observed, in a deterministic, hashable form.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// The derived per-shard seed.
    pub seed: u64,
    /// Payments the merchant accepted.
    pub accepted: usize,
    /// Payments the merchant rejected.
    pub rejected: usize,
    /// Point-of-sale waiting time of every accepted payment, in order.
    pub accept_latencies: Vec<SimTime>,
    /// The shard's final PSC world-state commitment.
    pub psc_commitment: Hash256,
    /// The shard's final BTC tip hash.
    pub btc_tip: Hash256,
    /// The shard's per-phase trace, rendered as canonical JSONL (empty
    /// when [`SessionConfig::tracing`] is off). Hashed into the run
    /// fingerprint, so the replay guarantee covers traces too.
    pub trace_jsonl: String,
    /// Digest of the shard's durable payment ledger (WAL-journaled); a
    /// crash-restart drill must land on the same digest, and it is hashed
    /// into the run fingerprint so replays cover recovery too.
    pub store_digest: Hash256,
    /// Crash-restart drills the shard performed (all digest-verified).
    pub recoveries: u64,
}

impl ShardOutcome {
    /// Canonical byte encoding hashed into the run fingerprint.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.shard as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.accepted as u64).to_le_bytes());
        out.extend_from_slice(&(self.rejected as u64).to_le_bytes());
        out.extend_from_slice(&(self.accept_latencies.len() as u64).to_le_bytes());
        for latency in &self.accept_latencies {
            out.extend_from_slice(&latency.as_micros().to_le_bytes());
        }
        out.extend_from_slice(&self.psc_commitment.0);
        out.extend_from_slice(&self.btc_tip.0);
        out.extend_from_slice(&(self.trace_jsonl.len() as u64).to_le_bytes());
        out.extend_from_slice(self.trace_jsonl.as_bytes());
        out.extend_from_slice(&self.store_digest.0);
        out.extend_from_slice(&self.recoveries.to_le_bytes());
    }
}

/// The aggregate of one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// Payments attempted across all shards.
    pub total_payments: usize,
    /// Payments accepted across all shards.
    pub total_accepted: usize,
    /// SHA-256d over the canonical encoding of every outcome: equal
    /// fingerprints ⇒ byte-identical replays.
    pub fingerprint: Hash256,
}

impl EngineReport {
    /// `(p50, p99)` of the simulated accept latency across all shards, in
    /// seconds. `None` when nothing was accepted.
    pub fn accept_latency_quantiles(&self) -> Option<(f64, f64)> {
        let mut micros: Vec<u64> = self
            .outcomes
            .iter()
            .flat_map(|o| o.accept_latencies.iter().map(SimTime::as_micros))
            .collect();
        micros.sort_unstable();
        let rank =
            |q: f64| btcfast_obs::stats::quantile_sorted_u64(&micros, q).map(|v| v as f64 / 1e6);
        Some((rank(0.50)?, rank(0.99)?))
    }
}

/// Derives shard `index`'s seed from the base seed: a splitmix64
/// finalizer, so neighboring indices produce uncorrelated streams.
fn shard_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives [`EngineConfig::shards`] independent payment sessions in
/// parallel.
#[derive(Clone, Debug)]
pub struct PaymentEngine {
    config: EngineConfig,
}

impl PaymentEngine {
    /// An engine over `config`.
    pub fn new(config: EngineConfig) -> PaymentEngine {
        PaymentEngine { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs every shard to completion on `pool` and aggregates.
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`SessionError`] (in shard order) when a
    /// payment or registration fails.
    pub fn run(&self, base_seed: u64, pool: &WorkerPool) -> Result<EngineReport, SessionError> {
        let shards: Vec<usize> = (0..self.config.shards).collect();
        let results = pool.map_coarse(&shards, |&shard| {
            run_shard(&self.config, shard, shard_seed(base_seed, shard as u64))
        });

        let mut outcomes = Vec::with_capacity(results.len());
        for result in results {
            outcomes.push(result?);
        }
        let total_accepted = outcomes.iter().map(|o| o.accepted).sum();
        let mut bytes = Vec::new();
        for outcome in &outcomes {
            outcome.encode(&mut bytes);
        }
        Ok(EngineReport {
            total_payments: self.config.shards * self.config.payments_per_shard,
            total_accepted,
            fingerprint: sha256d(&bytes),
            outcomes,
        })
    }
}

/// Wraps a recovery-store failure as a shard error.
fn store_err(e: crate::recovery::RecoveryError) -> SessionError {
    SessionError::Psc(format!("shard recovery store: {e}"))
}

/// One shard, start to finish: provision a session, then run payments in
/// batches — disjoint coin selection, one registration block per batch,
/// one confirming BTC block per batch. Every payment's lifecycle is
/// journaled to the shard's durable store; when
/// [`EngineConfig::crash_restart_every`] is set, the shard periodically
/// drops its volatile manager and re-hydrates from the media, failing the
/// run if the recovered digest diverges.
fn run_shard(config: &EngineConfig, shard: usize, seed: u64) -> Result<ShardOutcome, SessionError> {
    let mut session_config = config.session.clone();
    let per_payment = session_config.required_collateral(config.amount_sats);
    let whole_run = per_payment.saturating_mul(config.payments_per_shard as u128 + 1);
    session_config.escrow_deposit = session_config.escrow_deposit.max(whole_run);

    let mut session = FastPaySession::new(session_config, seed);
    let batch = config.batch_size.max(1);
    session.fund_customer_coins(batch)?;

    // Per-shard durable media: clone-shared handles, so dropping the
    // manager models losing volatile state while the "disk" survives.
    let wal_medium = MemStorage::new();
    let snap_medium = MemStorage::new();
    let (mut recovery, _) =
        RecoveryManager::open(wal_medium.clone(), snap_medium.clone()).map_err(store_err)?;
    let mut recoveries = 0u64;

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut accept_latencies = Vec::with_capacity(config.payments_per_shard);
    let mut remaining = config.payments_per_shard;
    let mut batches = 0usize;
    while remaining > 0 {
        let k = remaining.min(batch);
        session.trace_point(
            "engine.batch",
            vec![
                ("shard", shard.into()),
                ("size", k.into()),
                ("queued", remaining.into()),
            ],
        );
        let amounts = vec![config.amount_sats; k];
        for report in session.run_fast_payment_batch(&amounts)? {
            // Journal the payment's durable lifecycle facts.
            let intent = recovery
                .begin(Step::OpenPayment {
                    txid: report.txid,
                    amount_sats: config.amount_sats,
                    collateral: per_payment,
                    psc_nonce: report.payment_id,
                })
                .map_err(store_err)?;
            recovery
                .complete(
                    intent,
                    Outcome::PaymentRegistered {
                        payment_id: report.payment_id,
                    },
                )
                .map_err(store_err)?;
            let intent = recovery
                .begin(Step::AcceptanceSend {
                    payment_id: report.payment_id,
                    accepted: report.accepted,
                })
                .map_err(store_err)?;
            recovery
                .complete(
                    intent,
                    if report.accepted {
                        Outcome::Applied
                    } else {
                        Outcome::Rejected
                    },
                )
                .map_err(store_err)?;
            if report.accepted {
                let intent = recovery
                    .begin(Step::Broadcast {
                        payment_id: report.payment_id,
                        txid: report.txid,
                    })
                    .map_err(store_err)?;
                recovery
                    .complete(intent, Outcome::Applied)
                    .map_err(store_err)?;
                accepted += 1;
                accept_latencies.push(report.waiting);
            } else {
                rejected += 1;
            }
        }
        // Confirm the batch: the change outputs become the next batch's
        // disjoint confirmed coins.
        session.mine_public_block()?;
        remaining -= k;
        batches += 1;

        // Alternate batches checkpoint, so drills exercise both the
        // snapshot-plus-tail and the full-replay recovery paths.
        if batches.is_multiple_of(2) {
            recovery.checkpoint().map_err(store_err)?;
        }
        if config.crash_restart_every > 0 && batches.is_multiple_of(config.crash_restart_every) {
            let digest_before = recovery.digest();
            drop(recovery);
            let (restored, report) = RecoveryManager::open(wal_medium.clone(), snap_medium.clone())
                .map_err(store_err)?;
            if restored.digest() != digest_before {
                return Err(SessionError::Psc(format!(
                    "shard {shard}: recovered store digest diverged after restart"
                )));
            }
            recovery = restored;
            recoveries += 1;
            session.trace_point(
                "recovery.restart",
                vec![
                    ("shard", shard.into()),
                    ("replayed", report.replayed_records.into()),
                    ("snapshot", report.snapshot_used.into()),
                ],
            );
        }
    }

    let trace_jsonl = btcfast_obs::render_jsonl(&session.take_trace());
    Ok(ShardOutcome {
        shard,
        seed,
        accepted,
        rejected,
        accept_latencies,
        psc_commitment: session.psc.state_commitment(),
        btc_tip: session.btc.tip_hash(),
        trace_jsonl,
        store_digest: recovery.digest(),
        recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EngineConfig {
        EngineConfig {
            shards: 2,
            payments_per_shard: 3,
            batch_size: 2,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_accepts_every_payment_sub_second() {
        let engine = PaymentEngine::new(small());
        let report = engine.run(42, &WorkerPool::new(2)).unwrap();
        assert_eq!(report.total_payments, 6);
        assert_eq!(report.total_accepted, 6);
        assert!(report.outcomes.iter().all(|o| o.rejected == 0));
        let (p50, p99) = report.accept_latency_quantiles().unwrap();
        assert!(p50 <= p99);
        assert!(p99 < 1.0, "p99 accept latency = {p99}s");
    }

    #[test]
    fn same_seed_replays_byte_identically_across_worker_counts() {
        let engine = PaymentEngine::new(small());
        let sequential = engine.run(7, &WorkerPool::new(1)).unwrap();
        let parallel = engine.run(7, &WorkerPool::new(4)).unwrap();
        assert_eq!(sequential.fingerprint, parallel.fingerprint);
        assert_eq!(sequential.outcomes, parallel.outcomes);
        // The fingerprint now hashes the rendered trace too, so equal
        // fingerprints certify byte-identical per-shard traces.
        for (a, b) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert!(!a.trace_jsonl.is_empty(), "tracing defaults on");
            assert_eq!(a.trace_jsonl, b.trace_jsonl);
        }
        // And a third run, same pool, still identical.
        let again = engine.run(7, &WorkerPool::new(4)).unwrap();
        assert_eq!(parallel.fingerprint, again.fingerprint);
    }

    #[test]
    fn crash_restart_drills_recover_byte_identical_state() {
        let clean = PaymentEngine::new(small())
            .run(5, &WorkerPool::new(2))
            .unwrap();
        let mut config = small();
        config.crash_restart_every = 1;
        let crashed = PaymentEngine::new(config.clone())
            .run(5, &WorkerPool::new(2))
            .unwrap();
        // Crash drills never change what the shard pays or records: the
        // durable ledger digest matches the uninterrupted run shard for
        // shard, and the payment outcomes are unaffected.
        assert_eq!(clean.total_accepted, crashed.total_accepted);
        for (a, b) in clean.outcomes.iter().zip(&crashed.outcomes) {
            assert_eq!(a.store_digest, b.store_digest, "shard {}", a.shard);
            assert_eq!(a.recoveries, 0);
            assert!(b.recoveries > 0, "drills ran");
            assert_eq!(a.accepted, b.accepted);
        }
        // Same-seed reruns including crash-restart events replay
        // byte-identically across worker counts.
        let again = PaymentEngine::new(config)
            .run(5, &WorkerPool::new(4))
            .unwrap();
        assert_eq!(crashed.fingerprint, again.fingerprint);
        assert_eq!(crashed.outcomes, again.outcomes);
    }

    #[test]
    fn different_seeds_diverge() {
        let engine = PaymentEngine::new(small());
        let a = engine.run(1, &WorkerPool::new(2)).unwrap();
        let b = engine.run(2, &WorkerPool::new(2)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|i| shard_seed(99, i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(
            seeds,
            (0..16).map(|i| shard_seed(99, i)).collect::<Vec<_>>()
        );
    }
}
