//! Rosenfeld's exact double-spend analysis ("Analysis of Hashrate-Based
//! Double Spending", 2012).
//!
//! The refinement over Nakamoto's whitepaper model: while the honest network
//! mines exactly `z` blocks, the attacker's progress follows a **negative
//! binomial** distribution (Nakamoto approximates it as Poisson). The
//! success probability has the closed form
//!
//! ```text
//! r(z) = 1 − Σ_{m=0}^{z} C(m+z−1, m) · (p^z q^m − q^z p^m)
//! ```
//!
//! which equals the sum over attacker progress `m` of the probability of
//! eventually catching up from `z − m` behind, `(q/p)^{z−m}`.

use crate::mathutil::ln_choose;

/// Probability the attacker (hashrate `q`) ever erases a deficit of `d`
/// blocks: `(q/p)^d`, or 1 for a majority attacker.
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
pub fn catch_up(q: f64, d: u64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "attacker hashrate must be in (0,1)");
    let p = 1.0 - q;
    if q >= p {
        return 1.0;
    }
    (q / p).powi(d as i32)
}

/// Negative-binomial probability that the attacker has mined exactly `m`
/// blocks by the time the honest chain mined `z`:
/// `NB(m; z, q) = C(m + z - 1, m) p^z q^m`.
///
/// # Panics
///
/// Panics unless `0 < q < 1` and `z > 0`.
pub fn attacker_progress_pmf(m: u64, z: u64, q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "attacker hashrate must be in (0,1)");
    assert!(z > 0, "z must be positive");
    let p = 1.0 - q;
    (ln_choose(m + z - 1, m) + (z as f64) * p.ln() + (m as f64) * q.ln()).exp()
}

/// Probability a double-spend succeeds against a merchant waiting for `z`
/// confirmations (Rosenfeld's closed form).
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
pub fn attack_success(q: f64, z: u64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "attacker hashrate must be in (0,1)");
    if q >= 0.5 {
        return 1.0;
    }
    if z == 0 {
        return 1.0;
    }
    let p = 1.0 - q;
    let mut sum = 0.0;
    for m in 0..=z {
        let ln_c = ln_choose(m + z - 1, m);
        let term = (ln_c + (z as f64) * p.ln() + (m as f64) * q.ln()).exp()
            - (ln_c + (z as f64) * q.ln() + (m as f64) * p.ln()).exp();
        sum += term;
    }
    (1.0 - sum).clamp(0.0, 1.0)
}

/// The smallest `z` with success probability below `threshold`. `None` if
/// no `z <= cap` suffices.
pub fn confirmations_for_risk(q: f64, threshold: f64, cap: u64) -> Option<u64> {
    (0..=cap).find(|&z| attack_success(q, z) < threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// Hand-computable exact values of the closed form.
    #[test]
    fn exact_small_cases() {
        // q=0.1, z=1: 1 - (p - q) = 2q = 0.2.
        close(attack_success(0.1, 1), 0.2, 1e-12);
        // q=0.1, z=2: 1 - [(p²−q²) + 2(p²q − q²p)] = 0.056.
        close(attack_success(0.1, 2), 0.056, 1e-12);
        // q=0.3, z=2: 1 - [0.4 + 0.168] = 0.432.
        close(attack_success(0.3, 2), 0.432, 1e-12);
        // q arbitrary, z=1: always 2q (for q < 1/2).
        close(attack_success(0.25, 1), 0.5, 1e-12);
    }

    #[test]
    fn closed_form_matches_probabilistic_sum() {
        // r(z) = Σ_m NB(m; z, q) · win(m), win = 1 for m > z,
        // (q/p)^{z-m} otherwise.
        for (q, z) in [(0.1, 3u64), (0.25, 5), (0.4, 4)] {
            let closed = attack_success(q, z);
            let mut sum = 0.0;
            for m in 0..(z * 40 + 400) {
                let win = if m > z { 1.0 } else { catch_up(q, z - m) };
                sum += attacker_progress_pmf(m, z, q) * win;
            }
            close(closed, sum, 1e-9);
        }
    }

    #[test]
    fn nb_pmf_sums_to_one() {
        for (q, z) in [(0.1, 3u64), (0.3, 6), (0.45, 2)] {
            let total: f64 = (0..5000).map(|m| attacker_progress_pmf(m, z, q)).sum();
            close(total, 1.0, 1e-9);
        }
    }

    #[test]
    fn nb_pmf_known_values() {
        // NB(0; z, q) = p^z.
        close(attacker_progress_pmf(0, 4, 0.25), 0.75f64.powi(4), 1e-12);
        // NB(1; 1, q) = pq.
        close(attacker_progress_pmf(1, 1, 0.25), 0.75 * 0.25, 1e-12);
    }

    #[test]
    fn exceeds_nakamoto_but_same_order() {
        // Rosenfeld's exact NB model gives the attacker strictly more
        // success probability than Nakamoto's Poisson approximation (the
        // approximation under-counts attacker progress), but stays within
        // the same order of magnitude.
        for q in [0.1, 0.2, 0.3] {
            for z in [1u64, 2, 4, 6, 8] {
                let r = attack_success(q, z);
                let n = crate::nakamoto::attack_success(q, z);
                assert!(r >= n * 0.95, "q={q} z={z}: {r} vs {n}");
                // The gap widens with z (approximation error compounds) but
                // stays within a small constant factor in the useful range.
                assert!(r <= n * 5.0, "q={q} z={z}: {r} vs {n}");
            }
        }
    }

    #[test]
    fn monotone_decreasing_in_z() {
        for q in [0.1, 0.3, 0.45] {
            let mut last = 1.1;
            for z in 0..25 {
                let v = attack_success(q, z);
                assert!(v <= last + 1e-12, "q={q} z={z}");
                last = v;
            }
        }
    }

    #[test]
    fn monotone_increasing_in_q() {
        for z in [1u64, 3, 6] {
            let mut last = 0.0;
            for i in 1..10 {
                let q = i as f64 * 0.05;
                let v = attack_success(q, z);
                assert!(v >= last - 1e-12, "q={q} z={z}");
                last = v;
            }
        }
    }

    #[test]
    fn majority_always_wins() {
        assert_eq!(attack_success(0.5, 50), 1.0);
        assert_eq!(catch_up(0.6, 10), 1.0);
    }

    #[test]
    fn catch_up_values() {
        let q = 0.2f64;
        let ratio: f64 = q / (1.0 - q);
        assert_eq!(catch_up(q, 0), 1.0);
        for d in 1..10u64 {
            close(catch_up(q, d), ratio.powi(d as i32), 1e-15);
        }
    }

    #[test]
    fn risk_tables_require_at_least_nakamotos_wait() {
        // Because the exact model gives the attacker more probability mass,
        // the required confirmation count at equal risk is >= Nakamoto's —
        // this reproduces the headline discrepancy of Rosenfeld's paper
        // (e.g. q=0.3 at 0.1% risk needs ~32 confirmations, not 24).
        for q in [0.1, 0.2, 0.3] {
            let r = confirmations_for_risk(q, 0.001, 500).unwrap();
            let n = crate::nakamoto::confirmations_for_risk(q, 0.001, 500).unwrap();
            assert!(r >= n, "q={q}: rosenfeld {r} < nakamoto {n}");
            assert!(r <= n + 10, "q={q}: rosenfeld {r} vs nakamoto {n}");
        }
        let r30 = confirmations_for_risk(0.3, 0.001, 500).unwrap();
        assert_eq!(r30, 32);
        assert_eq!(confirmations_for_risk(0.5, 0.001, 100), None);
    }

    #[test]
    fn six_conf_risk_is_small_for_ten_percent() {
        // The security bar BTCFast claims to match.
        let p6 = attack_success(0.1, 6);
        assert!(p6 < 0.001, "p6 = {p6}");
    }
}
