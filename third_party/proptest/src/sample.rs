//! Sampling helpers.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::RngCore;

/// An index into a collection of not-yet-known size.
///
/// Generated via `any::<Index>()`; resolved against a concrete length
/// with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this abstract index into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        // Widening multiply keeps the mapping close to uniform for any len.
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.inner().next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::strategy::Strategy;

    #[test]
    fn index_stays_in_bounds_and_covers() {
        let mut rng = TestRng::deterministic("sample-index");
        let mut seen = [false; 5];
        for _ in 0..500 {
            let idx = any::<Index>().new_value(&mut rng);
            let i = idx.index(5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        // Same abstract index is stable for a fixed len.
        let idx = Index(u64::MAX / 2);
        assert_eq!(idx.index(10), idx.index(10));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_len_panics() {
        Index(1).index(0);
    }
}
