//! Integration: the classic propagation-based fast-payment attack
//! (Karame et al.) — no secret mining required. The attacker hands the
//! merchant the payment while simultaneously relaying a conflicting spend
//! to the miners; the merchant's mempool is clean at acceptance time and
//! the conflict confirms first.
//!
//! Plain 0-conf loses the payment outright. BTCFast turns the same event
//! into a compensated dispute.

use btcfast_suite::btcsim::node::Node;
use btcfast_suite::btcsim::spv::SpvEvidence;
use btcfast_suite::btcsim::Amount;
use btcfast_suite::netsim::time::SimTime;
use btcfast_suite::payjudger::types::DisputeVerdict;
use btcfast_suite::payjudger::PayJudgerClient;
use btcfast_suite::protocol::{FastPaySession, SessionConfig};

#[test]
fn propagation_double_spend_is_detected_and_compensated() {
    let config = SessionConfig {
        challenge_window_secs: 7200,
        ..SessionConfig::default()
    };
    let mut session = FastPaySession::new(config, 900);
    let customer_id = session.customer.psc_account();

    // The merchant runs their own node; the session's mempool plays the
    // miners' view. Network propagation is what the attacker exploits.
    let mut merchant_node = Node::from_chain(session.btc.clone());

    // The attacker builds both transactions up front.
    let pay = session
        .customer
        .build_btc_payment(
            &session.btc,
            session.merchant.btc_wallet().address(),
            Amount::from_sats(1_000_000).unwrap(),
            Amount::from_sats(1_000).unwrap(),
            None,
        )
        .unwrap();
    let steal = session.customer.btc_wallet().create_conflicting_spend(
        &session.btc,
        &pay,
        Amount::from_sats(5_000).unwrap(),
    );

    // Register the payment intent honestly (the escrow sees nothing odd).
    let open = session.customer.build_open_payment(
        &session.judger,
        &session.psc,
        session.merchant.psc_account(),
        pay.txid(),
        1_000_000,
        1_200_000,
    );
    let receipt = session.run_psc_tx(open).expect("psc tx executes");
    assert!(receipt.status.is_success());
    let payment_id = PayJudgerClient::payment_id_from(&receipt).unwrap();

    // Split-relay: `steal` to the miners, `pay` only to the merchant.
    session
        .mempool
        .insert(
            steal.clone(),
            session.btc.utxo(),
            session.btc.height() + 1,
            session.clock.as_secs(),
        )
        .unwrap();
    merchant_node
        .submit_transaction(pay.clone(), session.clock.as_secs())
        .unwrap();

    // The merchant's view is clean: the offer passes every check.
    let offer = session
        .customer
        .make_offer(pay.clone(), payment_id, 1_000_000);
    let decision = session.merchant.evaluate_offer(
        &offer,
        merchant_node.chain(),
        merchant_node.mempool(),
        &session.psc,
        &session.judger,
    );
    assert!(
        decision.is_ok(),
        "merchant cannot see the conflict: {decision:?}"
    );

    // The miners confirm the conflicting spend.
    session.advance_clock(SimTime::from_secs(600));
    session.mine_public_block().expect("block connects");
    assert_eq!(session.btc.confirmations(&steal.txid()), Some(1));

    // The block propagates to the merchant's node; the payment's coins are
    // gone and the mempool copy was purged as conflicted.
    let tip = session
        .btc
        .block_at_height(session.btc.height())
        .unwrap()
        .clone();
    merchant_node
        .submit_block(tip, session.clock.as_secs())
        .unwrap();
    assert!(session.merchant.detect_double_spend(
        &pay,
        merchant_node.chain(),
        merchant_node.mempool()
    ));

    // Dispute → evidence (the heaviest chain lacks the payment) → verdict.
    let dispute =
        session
            .merchant
            .build_dispute(&session.judger, &session.psc, customer_id, payment_id);
    assert!(session
        .run_psc_tx(dispute)
        .expect("psc tx executes")
        .status
        .is_success());
    // Bury the conflicting spend Δ deep so the evidence is conclusive.
    for _ in 0..6 {
        session.advance_clock(SimTime::from_secs(600));
        session.mine_public_block().expect("block connects");
    }
    let evidence = SpvEvidence::from_chain(
        merchant_node.chain(),
        1,
        merchant_node.chain().height(),
        Some(&pay.txid()),
    );
    // Refresh the merchant node view (blocks mined above went to session.btc).
    let evidence = if evidence.segment.len() < session.btc.height() as usize {
        SpvEvidence::from_chain(&session.btc, 1, session.btc.height(), Some(&pay.txid()))
    } else {
        evidence
    };
    assert!(
        evidence.inclusion.is_none(),
        "the payment is not on the chain"
    );
    let submit = session.merchant.build_evidence_submission(
        &session.judger,
        &session.psc,
        customer_id,
        payment_id,
        evidence,
    );
    assert!(session
        .run_psc_tx(submit)
        .expect("psc tx executes")
        .status
        .is_success());

    session.advance_clock(SimTime::from_secs(7300));
    let judge =
        session
            .merchant
            .build_judge(&session.judger, &session.psc, customer_id, payment_id);
    let receipt = session.run_psc_tx(judge).expect("psc tx executes");
    assert_eq!(
        PayJudgerClient::verdict_from(&receipt),
        Some(DisputeVerdict::MerchantWins)
    );

    // Collateral (ratio 1.2) covers the stolen 1,000,000 sats.
    let escrow = session.judger.escrow(&session.psc, customer_id).unwrap();
    assert_eq!(escrow.balance, session.config.escrow_deposit - 1_200_000);
}
