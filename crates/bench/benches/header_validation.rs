//! µ-benchmarks of header/segment validation — the per-header cost the
//! PayJudger gas schedule models.

use btcfast_btcsim::chain::Chain;
use btcfast_btcsim::miner::Miner;
use btcfast_btcsim::params::ChainParams;
use btcfast_btcsim::spv::HeaderSegment;
use btcfast_crypto::keys::KeyPair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn build_chain(blocks: u64) -> Chain {
    let params = ChainParams::regtest();
    let mut chain = Chain::new(params.clone());
    let mut miner = Miner::new(params, KeyPair::from_seed(b"bench miner").address());
    for i in 1..=blocks {
        let block = miner.mine_block(&chain, vec![], i * 600);
        chain.submit_block(block).unwrap();
    }
    chain
}

fn bench_header_pow(c: &mut Criterion) {
    let chain = build_chain(1);
    let header = chain.block_at_height(1).unwrap().header;
    c.bench_function("header_pow_check", |b| {
        b.iter(|| black_box(&header).check_pow().unwrap())
    });
    c.bench_function("header_hash", |b| b.iter(|| black_box(&header).hash()));
}

fn bench_segment_verify(c: &mut Criterion) {
    let chain = build_chain(64);
    let limit = ChainParams::regtest().pow_limit();
    let mut group = c.benchmark_group("segment_verify");
    for n in [8u64, 32, 64] {
        let segment = HeaderSegment::from_chain(&chain, 1, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &segment, |b, segment| {
            b.iter(|| black_box(segment).verify(black_box(&limit)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_header_pow, bench_segment_verify);
criterion_main!(benches);
