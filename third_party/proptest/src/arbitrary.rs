//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::default()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $method:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().$method() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        let hi = (rng.inner().next_u64() as u128) << 64;
        hi | rng.inner().next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().gen_bool(0.5)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII; always a valid scalar value.
        if rng.inner().gen_bool(0.8) {
            rng.inner().gen_range(0x20u32..0x7F) as u8 as char
        } else {
            char::from_u32(rng.inner().gen_range(0xA0u32..0xD800)).unwrap_or('�')
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )+};
}

impl_arbitrary_tuple!((A, B), (A, B, C), (A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn arrays_fill_every_slot() {
        let mut rng = TestRng::deterministic("arb-array");
        let bytes: [u8; 32] = any::<[u8; 32]>().new_value(&mut rng);
        assert!(bytes.iter().any(|&b| b != 0));
        let words: [u64; 4] = any::<[u64; 4]>().new_value(&mut rng);
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = TestRng::deterministic("arb-bool");
        let draws: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
