//! Typed failure surface and degradation policy for chaos runs.
//!
//! Under fault injection, protocol phases can fail in ways the happy-path
//! [`crate::session::SessionError`] never names: a message exhausts its
//! retransmission budget, a deadline lapses, the PSC chain stalls. This
//! module gives each of those a type, so callers (and the E10 harness)
//! can distinguish "payment failed" from "payment fell back" from
//! "protocol bug" — and defines the merchant's graceful-degradation
//! policy: when escrow protection cannot be established in time, the
//! merchant falls to the k-confirmation baseline rather than accepting an
//! unprotected 0-conf payment.

use btcfast_netsim::time::SimTime;
use btcfast_netsim::transport::TransportConfig;
use btcfast_payjudger::retry::{RetryError, RetryPolicy};
use std::error::Error;
use std::fmt;

/// The protocol phases that traverse the network (and can therefore fail
/// under chaos).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolPhase {
    /// Customer registers the payment against the escrow (PSC call).
    OpenPayment,
    /// Customer's payment offer travels to the merchant.
    Offer,
    /// Merchant's acceptance travels back to the customer.
    Acceptance,
    /// Merchant opens a dispute (PSC call).
    DisputeOpen,
    /// A party submits SPV evidence (PSC call).
    EvidenceSubmission,
    /// The judgment call after the window closes (PSC call).
    JudgeCall,
}

impl fmt::Display for ProtocolPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolPhase::OpenPayment => "open-payment",
            ProtocolPhase::Offer => "offer",
            ProtocolPhase::Acceptance => "acceptance",
            ProtocolPhase::DisputeOpen => "dispute-open",
            ProtocolPhase::EvidenceSubmission => "evidence-submission",
            ProtocolPhase::JudgeCall => "judge-call",
        };
        f.write_str(name)
    }
}

/// Why a chaos-run phase failed.
#[derive(Debug)]
pub enum RobustnessError {
    /// The transport exhausted its retransmission budget.
    DeliveryFailed {
        /// The failing phase.
        phase: ProtocolPhase,
        /// Attempts the transport made.
        attempts: u32,
    },
    /// The phase did not resolve before its deadline.
    DeadlineExceeded {
        /// The failing phase.
        phase: ProtocolPhase,
        /// The absolute (transport-clock) deadline that lapsed.
        deadline: SimTime,
    },
    /// The PSC chain stayed unreachable (stalled or partitioned) past the
    /// reachability deadline.
    PscUnreachable {
        /// The phase that needed the chain.
        phase: ProtocolPhase,
        /// How long the caller waited before giving up.
        waited: SimTime,
    },
    /// A PSC resubmission loop gave up.
    Retry {
        /// The phase whose submission failed.
        phase: ProtocolPhase,
        /// The underlying retry failure.
        error: RetryError,
    },
    /// A non-network session failure (wallet, chain rules).
    Session(crate::session::SessionError),
}

impl RobustnessError {
    /// The protocol phase this failure occurred in, when it names one.
    pub fn phase(&self) -> Option<ProtocolPhase> {
        match self {
            RobustnessError::DeliveryFailed { phase, .. }
            | RobustnessError::DeadlineExceeded { phase, .. }
            | RobustnessError::PscUnreachable { phase, .. }
            | RobustnessError::Retry { phase, .. } => Some(*phase),
            RobustnessError::Session(_) => None,
        }
    }
}

impl fmt::Display for RobustnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustnessError::DeliveryFailed { phase, attempts } => {
                write!(f, "{phase}: delivery failed after {attempts} attempts")
            }
            RobustnessError::DeadlineExceeded { phase, deadline } => {
                write!(f, "{phase}: unresolved at deadline {deadline}")
            }
            RobustnessError::PscUnreachable { phase, waited } => {
                write!(f, "{phase}: PSC chain unreachable after waiting {waited}")
            }
            RobustnessError::Retry { phase, error } => {
                write!(f, "{phase}: {error}")
            }
            RobustnessError::Session(e) => write!(f, "session failure: {e}"),
        }
    }
}

impl Error for RobustnessError {}

impl From<crate::session::SessionError> for RobustnessError {
    fn from(e: crate::session::SessionError) -> Self {
        RobustnessError::Session(e)
    }
}

/// How the merchant degrades when escrow protection cannot be established
/// before the deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Refuse the sale: never accept without protection.
    RejectUnprotected,
    /// Fall back to the classic baseline: accept only after this many
    /// Bitcoin confirmations. Slow, but never *less* safe than the
    /// pre-BTCFast world.
    KConfirmations(u64),
}

/// Knobs of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Reliable-transport policy (retries, backoff, jitter).
    pub transport: TransportConfig,
    /// PSC resubmission policy (attempts, gas bumping).
    pub retry: RetryPolicy,
    /// Budget for one message phase to resolve (delivery + ack).
    pub phase_deadline: SimTime,
    /// How long a caller waits out a PSC stall before declaring the chain
    /// unreachable and degrading.
    pub psc_deadline: SimTime,
    /// The merchant's degradation policy.
    pub fallback: FallbackPolicy,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            transport: TransportConfig::default(),
            retry: RetryPolicy::default(),
            phase_deadline: SimTime::from_secs(30),
            psc_deadline: SimTime::from_secs(120),
            fallback: FallbackPolicy::KConfirmations(6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_stable_names() {
        assert_eq!(ProtocolPhase::Offer.to_string(), "offer");
        assert_eq!(ProtocolPhase::JudgeCall.to_string(), "judge-call");
    }

    #[test]
    fn errors_render_with_context() {
        let e = RobustnessError::DeliveryFailed {
            phase: ProtocolPhase::EvidenceSubmission,
            attempts: 6,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("evidence-submission") && msg.contains('6'),
            "{msg}"
        );
    }

    #[test]
    fn default_chaos_config_is_coherent() {
        let c = ChaosConfig::default();
        assert!(c.phase_deadline < c.psc_deadline);
        assert!(matches!(c.fallback, FallbackPolicy::KConfirmations(6)));
    }
}
