//! Block headers and blocks: SHA-256d proof of work over an 88-byte header.

use crate::pow::{hash_meets_target, CompactBits};
use crate::transaction::Transaction;
use crate::u256::U256;
use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::{Hash256, MerkleTree};
use std::error::Error;
use std::fmt;

/// A block header. The double-SHA256 of its serialization is the block hash
/// that must meet the proof-of-work target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    /// Format version.
    pub version: u32,
    /// Hash of the previous block header ([`Hash256::ZERO`] for genesis).
    pub prev_hash: Hash256,
    /// Merkle root over the block's txids.
    pub merkle_root: Hash256,
    /// Block timestamp, seconds (simulation time).
    pub time: u64,
    /// Compact-encoded proof-of-work target.
    pub bits: CompactBits,
    /// Proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// Serializes the header (88 bytes).
    pub fn encode(&self) -> [u8; 88] {
        let mut out = [0u8; 88];
        out[0..4].copy_from_slice(&self.version.to_le_bytes());
        out[4..36].copy_from_slice(&self.prev_hash.0);
        out[36..68].copy_from_slice(&self.merkle_root.0);
        out[68..76].copy_from_slice(&self.time.to_le_bytes());
        out[76..80].copy_from_slice(&self.bits.0.to_le_bytes());
        out[80..88].copy_from_slice(&self.nonce.to_le_bytes());
        out
    }

    /// Parses an 88-byte serialized header.
    pub fn decode(bytes: &[u8; 88]) -> BlockHeader {
        let mut prev = [0u8; 32];
        prev.copy_from_slice(&bytes[4..36]);
        let mut root = [0u8; 32];
        root.copy_from_slice(&bytes[36..68]);
        BlockHeader {
            version: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            prev_hash: Hash256(prev),
            merkle_root: Hash256(root),
            time: u64::from_le_bytes(bytes[68..76].try_into().expect("8 bytes")),
            bits: CompactBits(u32::from_le_bytes(
                bytes[76..80].try_into().expect("4 bytes"),
            )),
            nonce: u64::from_le_bytes(bytes[80..88].try_into().expect("8 bytes")),
        }
    }

    /// The block hash: double-SHA256 of the serialized header.
    pub fn hash(&self) -> Hash256 {
        sha256d(&self.encode())
    }

    /// The full proof-of-work target this header claims.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::pow::CompactBitsError`] for malformed bits.
    pub fn target(&self) -> Result<U256, crate::pow::CompactBitsError> {
        self.bits.to_target()
    }

    /// Verifies that the header hash satisfies its own claimed target.
    /// (Whether the *claimed* target matches consensus rules is checked by
    /// the chain, which knows the expected difficulty.)
    pub fn check_pow(&self) -> Result<(), HeaderError> {
        let target = self.target().map_err(HeaderError::BadBits)?;
        if hash_meets_target(&self.hash(), &target) {
            Ok(())
        } else {
            Err(HeaderError::PowNotSatisfied)
        }
    }

    /// The amount of work this header represents (`2^256 / (target+1)`).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::pow::CompactBitsError`] for malformed bits.
    pub fn work(&self) -> Result<U256, crate::pow::CompactBitsError> {
        Ok(U256::work_from_target(&self.target()?))
    }
}

/// Header validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The compact bits field was malformed.
    BadBits(crate::pow::CompactBitsError),
    /// The header hash does not meet the claimed target.
    PowNotSatisfied,
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::BadBits(e) => write!(f, "bad compact bits: {e}"),
            HeaderError::PowNotSatisfied => write!(f, "header hash exceeds target"),
        }
    }
}

impl Error for HeaderError {}

/// A full block: header plus transactions (coinbase first).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// The proof-of-work header.
    pub header: BlockHeader,
    /// Transactions, coinbase first.
    pub transactions: Vec<Transaction>,
}

/// Block-level structural failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// No transactions at all (a block must at least have a coinbase).
    Empty,
    /// First transaction is not a coinbase, or a later one is.
    CoinbasePosition,
    /// The header's merkle root does not match the transactions.
    MerkleMismatch,
    /// A header-level failure.
    Header(HeaderError),
    /// A transaction failed its structural checks.
    Transaction(crate::transaction::TxError),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Empty => write!(f, "block has no transactions"),
            BlockError::CoinbasePosition => write!(f, "coinbase must be exactly the first tx"),
            BlockError::MerkleMismatch => write!(f, "merkle root does not match transactions"),
            BlockError::Header(e) => write!(f, "header error: {e}"),
            BlockError::Transaction(e) => write!(f, "transaction error: {e}"),
        }
    }
}

impl Error for BlockError {}

impl From<HeaderError> for BlockError {
    fn from(e: HeaderError) -> BlockError {
        BlockError::Header(e)
    }
}

impl Block {
    /// Computes the Merkle root over a transaction list.
    ///
    /// # Panics
    ///
    /// Panics on an empty list; blocks always contain a coinbase.
    pub fn compute_merkle_root(transactions: &[Transaction]) -> Hash256 {
        let leaves: Vec<Hash256> = transactions.iter().map(|tx| tx.txid()).collect();
        MerkleTree::from_leaves(leaves)
            .expect("blocks always have a coinbase")
            .root()
    }

    /// The Merkle tree over this block's txids (for generating SPV proofs).
    pub fn merkle_tree(&self) -> MerkleTree {
        let leaves: Vec<Hash256> = self.transactions.iter().map(|tx| tx.txid()).collect();
        MerkleTree::from_leaves(leaves).expect("blocks always have a coinbase")
    }

    /// The block hash (header hash).
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Finds the index of a transaction by txid.
    pub fn find_tx(&self, txid: &Hash256) -> Option<usize> {
        self.transactions.iter().position(|tx| &tx.txid() == txid)
    }

    /// Full structural validation: PoW, coinbase position, merkle root, and
    /// per-transaction structure.
    ///
    /// # Errors
    ///
    /// See [`BlockError`].
    pub fn check_structure(&self) -> Result<(), BlockError> {
        if self.transactions.is_empty() {
            return Err(BlockError::Empty);
        }
        if !self.transactions[0].is_coinbase() {
            return Err(BlockError::CoinbasePosition);
        }
        if self.transactions[1..].iter().any(|tx| tx.is_coinbase()) {
            return Err(BlockError::CoinbasePosition);
        }
        for tx in &self.transactions {
            tx.check_structure().map_err(BlockError::Transaction)?;
        }
        if Self::compute_merkle_root(&self.transactions) != self.header.merkle_root {
            return Err(BlockError::MerkleMismatch);
        }
        self.header.check_pow()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Amount;
    use crate::params::ChainParams;
    use btcfast_crypto::keys::KeyPair;

    fn mined_block(prev: Hash256, time: u64, txs: Vec<Transaction>) -> Block {
        let params = ChainParams::regtest();
        let coinbase = Transaction::coinbase(
            time, // use time as a uniqueness tag
            Amount::from_sats(params.subsidy_at(0)).unwrap(),
            KeyPair::from_seed(b"miner").address(),
            b"",
        );
        let mut transactions = vec![coinbase];
        transactions.extend(txs);
        let merkle_root = Block::compute_merkle_root(&transactions);
        let mut header = BlockHeader {
            version: 1,
            prev_hash: prev,
            merkle_root,
            time,
            bits: params.pow_limit_bits,
            nonce: 0,
        };
        let target = header.target().unwrap();
        while !crate::pow::hash_meets_target(&header.hash(), &target) {
            header.nonce += 1;
        }
        Block {
            header,
            transactions,
        }
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        let encoded = block.header.encode();
        assert_eq!(BlockHeader::decode(&encoded), block.header);
    }

    #[test]
    fn hash_changes_with_nonce() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        let mut header = block.header;
        let h1 = header.hash();
        header.nonce += 1;
        assert_ne!(header.hash(), h1);
    }

    #[test]
    fn mined_block_passes_checks() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        block.check_structure().unwrap();
    }

    #[test]
    fn pow_failure_detected() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        let mut header = block.header;
        // Make the target astronomically hard; the found nonce cannot
        // satisfy it.
        header.bits = CompactBits(0x03000001);
        assert_eq!(header.check_pow(), Err(HeaderError::PowNotSatisfied));
    }

    #[test]
    fn merkle_mismatch_detected() {
        let mut block = mined_block(Hash256::ZERO, 100, vec![]);
        block.header.merkle_root = Hash256([9; 32]);
        // Re-mine so PoW isn't the failing check.
        let target = block.header.target().unwrap();
        while !crate::pow::hash_meets_target(&block.header.hash(), &target) {
            block.header.nonce += 1;
        }
        assert_eq!(block.check_structure(), Err(BlockError::MerkleMismatch));
    }

    #[test]
    fn missing_coinbase_detected() {
        let mut block = mined_block(Hash256::ZERO, 100, vec![]);
        block.transactions.clear();
        assert_eq!(block.check_structure(), Err(BlockError::Empty));
    }

    #[test]
    fn double_coinbase_detected() {
        let params = ChainParams::regtest();
        let extra_coinbase = Transaction::coinbase(
            99,
            Amount::from_sats(params.subsidy_at(0)).unwrap(),
            KeyPair::from_seed(b"other miner").address(),
            b"",
        );
        let mut block = mined_block(Hash256::ZERO, 100, vec![extra_coinbase]);
        // mined_block recomputed merkle including the extra coinbase, so the
        // failing check must be coinbase position.
        assert_eq!(block.check_structure(), Err(BlockError::CoinbasePosition));
        block.transactions.swap(0, 1);
        assert_eq!(block.check_structure(), Err(BlockError::CoinbasePosition));
    }

    #[test]
    fn find_tx_locates_transactions() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        let coinbase_txid = block.transactions[0].txid();
        assert_eq!(block.find_tx(&coinbase_txid), Some(0));
        assert_eq!(block.find_tx(&Hash256([1; 32])), None);
    }

    #[test]
    fn work_is_positive() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        assert!(block.header.work().unwrap() >= U256::ONE);
    }

    #[test]
    fn merkle_tree_proves_coinbase() {
        let block = mined_block(Hash256::ZERO, 100, vec![]);
        let tree = block.merkle_tree();
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify(&block.transactions[0].txid(), &block.header.merkle_root));
    }
}
