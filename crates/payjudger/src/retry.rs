//! Retry-aware PSC submission.
//!
//! Dispute-path transactions (dispute, submitEvidence, judge) must land
//! before the challenge window closes; a transient `OutOfGas` (gas-price
//! spike, under-estimated limit) must not forfeit the merchant's claim.
//! [`submit_with_retry`] drives a rebuild-and-resubmit loop: each attempt
//! rebuilds the transaction (fresh nonce, current state) at a gas limit
//! that grows by [`RetryPolicy::gas_bump_factor`] after every `OutOfGas`,
//! until the call succeeds, the attempt budget runs out, or the caller
//! reports the challenge window closed.
//!
//! The loop is transport-agnostic: the caller's closure performs the
//! actual build/sign/submit (and its own clock accounting), so the same
//! helper serves the simulation harness and unit tests.

use crate::types::DisputeVerdict;
use btcfast_pscsim::tx::{Receipt, TxStatus};

/// Bounds for the resubmission loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the first submission included.
    pub max_attempts: u32,
    /// Gas-limit multiplier applied after each `OutOfGas`.
    pub gas_bump_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            gas_bump_factor: 1.5,
        }
    }
}

/// What one submission attempt produced, as reported by the caller.
#[derive(Clone, Debug)]
pub enum AttemptResult {
    /// The transaction executed (successfully or not) with this receipt.
    Executed(Receipt),
    /// The challenge window closed before this attempt could land.
    WindowClosed,
    /// The submission machinery itself failed before execution (node-side
    /// refusal, not a chain status) — non-retryable.
    Aborted(String),
}

/// Why the retry loop gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetryError {
    /// Every attempt ran out of gas.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Status of the final attempt.
        last_status: TxStatus,
    },
    /// The challenge window closed mid-loop.
    WindowClosed {
        /// Attempts made before the window closed.
        attempts: u32,
    },
    /// A non-retryable failure (revert or invalid transaction).
    Rejected {
        /// Attempts made, the rejected one included.
        attempts: u32,
        /// The rejecting status.
        status: TxStatus,
    },
    /// The submission machinery failed before execution.
    Aborted {
        /// Attempts made, the aborted one included.
        attempts: u32,
        /// The caller's reason.
        reason: String,
    },
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted {
                attempts,
                last_status,
            } => {
                write!(
                    f,
                    "gas budget exhausted after {attempts} attempts ({last_status:?})"
                )
            }
            RetryError::WindowClosed { attempts } => {
                write!(f, "challenge window closed after {attempts} attempts")
            }
            RetryError::Rejected { attempts, status } => {
                write!(f, "non-retryable failure on attempt {attempts}: {status:?}")
            }
            RetryError::Aborted { attempts, reason } => {
                write!(f, "submission aborted on attempt {attempts}: {reason}")
            }
        }
    }
}

impl std::error::Error for RetryError {}

/// A successful (possibly retried) submission.
#[derive(Clone, Debug)]
pub struct RetryReport {
    /// The succeeding receipt.
    pub receipt: Receipt,
    /// Attempts made, the succeeding one included.
    pub attempts: u32,
    /// Gas limit of the succeeding attempt.
    pub final_gas: u64,
    /// Fees paid across every executed attempt, failed ones included —
    /// `OutOfGas` attempts still burn gas.
    pub total_fees: u128,
}

impl RetryReport {
    /// Decodes the judgment verdict from the succeeding receipt, when the
    /// retried call was `judge`.
    pub fn verdict(&self) -> Option<DisputeVerdict> {
        crate::client::PayJudgerClient::verdict_from(&self.receipt)
    }
}

/// Runs the rebuild-and-resubmit loop. `attempt` is called with the gas
/// limit to use; it rebuilds the transaction at the current nonce, signs,
/// submits, and reports the receipt — or that the window closed.
///
/// # Errors
///
/// [`RetryError::Exhausted`] when the attempt budget runs out on
/// `OutOfGas`, [`RetryError::WindowClosed`] when the caller reports the
/// window shut, [`RetryError::Rejected`] on any revert/invalid status.
///
/// # Panics
///
/// Panics when the policy allows zero attempts.
pub fn submit_with_retry(
    policy: &RetryPolicy,
    initial_gas: u64,
    mut attempt: impl FnMut(u64) -> AttemptResult,
) -> Result<RetryReport, RetryError> {
    assert!(policy.max_attempts > 0, "retry policy allows no attempts");
    let mut gas = initial_gas;
    let mut last_status = TxStatus::OutOfGas;
    let mut total_fees = 0u128;
    for n in 1..=policy.max_attempts {
        match attempt(gas) {
            AttemptResult::WindowClosed => {
                return Err(RetryError::WindowClosed { attempts: n - 1 });
            }
            AttemptResult::Aborted(reason) => {
                return Err(RetryError::Aborted {
                    attempts: n,
                    reason,
                });
            }
            AttemptResult::Executed(receipt) => match receipt.status {
                TxStatus::Succeeded => {
                    total_fees += receipt.fee_paid;
                    return Ok(RetryReport {
                        receipt,
                        attempts: n,
                        final_gas: gas,
                        total_fees,
                    });
                }
                TxStatus::OutOfGas => {
                    total_fees += receipt.fee_paid;
                    last_status = receipt.status;
                    gas = ((gas as f64) * policy.gas_bump_factor).ceil() as u64;
                }
                status @ (TxStatus::Reverted(_) | TxStatus::Invalid(_)) => {
                    return Err(RetryError::Rejected {
                        attempts: n,
                        status,
                    });
                }
            },
        }
    }
    Err(RetryError::Exhausted {
        attempts: policy.max_attempts,
        last_status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcfast_crypto::Hash256;

    fn receipt(status: TxStatus) -> Receipt {
        Receipt {
            tx_hash: Hash256::ZERO,
            status,
            gas_used: 21_000,
            fee_paid: 21_000,
            events: vec![],
            return_data: vec![],
            contract_address: None,
            block_number: 1,
        }
    }

    #[test]
    fn first_try_success_uses_initial_gas() {
        let mut gas_seen = vec![];
        let report = submit_with_retry(&RetryPolicy::default(), 1_000, |gas| {
            gas_seen.push(gas);
            AttemptResult::Executed(receipt(TxStatus::Succeeded))
        })
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.final_gas, 1_000);
        assert_eq!(gas_seen, vec![1_000]);
    }

    #[test]
    fn out_of_gas_bumps_until_success() {
        let mut gas_seen = vec![];
        let report = submit_with_retry(&RetryPolicy::default(), 1_000, |gas| {
            gas_seen.push(gas);
            AttemptResult::Executed(receipt(if gas >= 2_000 {
                TxStatus::Succeeded
            } else {
                TxStatus::OutOfGas
            }))
        })
        .unwrap();
        assert_eq!(gas_seen, vec![1_000, 1_500, 2_250]);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.final_gas, 2_250);
        assert_eq!(report.total_fees, 3 * 21_000, "failed attempts burn fees");
    }

    #[test]
    fn persistent_out_of_gas_exhausts_budget() {
        let err = submit_with_retry(&RetryPolicy::default(), 1_000, |_| {
            AttemptResult::Executed(receipt(TxStatus::OutOfGas))
        })
        .unwrap_err();
        assert_eq!(
            err,
            RetryError::Exhausted {
                attempts: 4,
                last_status: TxStatus::OutOfGas
            }
        );
    }

    #[test]
    fn revert_is_not_retried() {
        let mut calls = 0;
        let err = submit_with_retry(&RetryPolicy::default(), 1_000, |_| {
            calls += 1;
            AttemptResult::Executed(receipt(TxStatus::Reverted("window expired".into())))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "reverts must not be resubmitted");
        assert!(matches!(err, RetryError::Rejected { attempts: 1, .. }));
    }

    #[test]
    fn aborted_submission_is_not_retried() {
        let mut calls = 0;
        let err = submit_with_retry(&RetryPolicy::default(), 1_000, |_| {
            calls += 1;
            AttemptResult::Aborted("node refused the tx".into())
        })
        .unwrap_err();
        assert_eq!(calls, 1, "aborts must not be resubmitted");
        assert!(matches!(err, RetryError::Aborted { attempts: 1, .. }));
    }

    #[test]
    fn window_closing_stops_the_loop() {
        let mut calls = 0;
        let err = submit_with_retry(&RetryPolicy::default(), 1_000, |_| {
            calls += 1;
            if calls < 3 {
                AttemptResult::Executed(receipt(TxStatus::OutOfGas))
            } else {
                AttemptResult::WindowClosed
            }
        })
        .unwrap_err();
        assert_eq!(err, RetryError::WindowClosed { attempts: 2 });
    }
}
