//! E7 — the waiting-time distribution (CDF) of BTCFast's point-of-sale
//! path under log-normal WAN latency, versus the sub-second bound of
//! claim C1.

use crate::table::{f3, Table};
use btcfast::session::FastPaySession;
use btcfast::SessionConfig;

/// Runs E7: samples waits, reports the empirical CDF at fixed quantiles
/// plus the fraction of payments completing within 1 s.
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 10 } else { 200 };

    // One long-lived session; a block is mined after each payment so the
    // wallet's change re-confirms.
    let mut config = SessionConfig::default();
    config.escrow_deposit = 500_000_000_000;
    let mut session = FastPaySession::new(config, 777);
    let mut waits: Vec<f64> = Vec::with_capacity(trials);
    for _ in 0..trials {
        let report = session.run_fast_payment(100_000).expect("payment");
        assert!(report.accepted, "{:?}", report.reject);
        waits.push(report.waiting.as_secs_f64());
        session.mine_public_block().expect("block connects");
    }
    waits.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let mut table = Table::new(
        "E7 — BTCFast point-of-sale waiting time CDF (WAN, log-normal)",
        &["quantile", "waiting time (s)"],
    );
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        let idx = (((waits.len() - 1) as f64) * q).round() as usize;
        table.push(vec![format!("p{:02.0}", q * 100.0), f3(waits[idx])]);
    }
    let under_one = waits.iter().filter(|&&w| w < 1.0).count() as f64 / waits.len() as f64;
    table.push(vec!["P(wait < 1 s)".into(), f3(under_one)]);

    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_overwhelmingly_sub_second() {
        let tables = super::run(true);
        let rendered = tables[0].render();
        let frac_line = rendered
            .lines()
            .find(|l| l.contains("P(wait < 1 s)"))
            .unwrap();
        let frac: f64 = frac_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(frac > 0.8, "fraction sub-second = {frac}");
    }
}
