//! Wall-clock measurement for the micro-benchmarks: per-sample timing with
//! inner repetition for fast operations, summarized as mean/p50/p95/min and
//! ops/sec.

use crate::perf::json::Json;
use std::time::Instant;

/// Summary statistics of one benchmark family.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Benchmark name (the JSON key).
    pub name: String,
    /// Timed samples collected.
    pub samples: usize,
    /// Operations per timed sample (inner repetitions).
    pub inner: usize,
    /// Mean wall time per operation, nanoseconds.
    pub mean_ns: f64,
    /// Median wall time per operation, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile wall time per operation, nanoseconds.
    pub p95_ns: f64,
    /// Fastest sample, nanoseconds per operation.
    pub min_ns: f64,
    /// Throughput derived from the median (robust to scheduler noise).
    pub ops_per_sec: f64,
}

impl Summary {
    /// The JSON object for `BENCH_payjudger.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("samples", Json::Num(self.samples as f64)),
            ("inner", Json::Num(self.inner as f64)),
            ("mean_ns", Json::Num(round2(self.mean_ns))),
            ("p50_ns", Json::Num(round2(self.p50_ns))),
            ("p95_ns", Json::Num(round2(self.p95_ns))),
            ("min_ns", Json::Num(round2(self.min_ns))),
            ("ops_per_sec", Json::Num(round2(self.ops_per_sec))),
        ])
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// The `q`-quantile of a sorted sample vector — the workspace-wide
/// nearest-rank rule from `btcfast-obs`, so bench percentiles and
/// histogram percentiles are directly comparable.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    btcfast_obs::stats::quantile_sorted_f64(sorted, q).expect("bench samples are nonempty")
}

/// Times `op`, collecting `samples` timed samples of `inner` calls each
/// (after one untimed warmup sample). `inner > 1` amortizes `Instant`
/// overhead for sub-microsecond operations.
///
/// # Panics
///
/// Panics when `samples` or `inner` is zero.
pub fn bench<F: FnMut()>(name: &str, samples: usize, inner: usize, mut op: F) -> Summary {
    assert!(samples > 0 && inner > 0, "need at least one sample/rep");
    for _ in 0..inner.min(4) {
        op(); // warmup: fault in code paths and caches
    }
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..inner {
            op();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / inner as f64);
    }
    let mut sorted = per_op.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let mean_ns = per_op.iter().sum::<f64>() / per_op.len() as f64;
    let p50_ns = quantile(&sorted, 0.50);
    let p95_ns = quantile(&sorted, 0.95);
    Summary {
        name: name.to_string(),
        samples,
        inner,
        mean_ns,
        p50_ns,
        p95_ns,
        min_ns: sorted[0],
        ops_per_sec: if p50_ns > 0.0 { 1e9 / p50_ns } else { f64::MAX },
    }
}

/// Interleaved paired measurement for overhead ratios: each round times
/// `inner` calls of `plain` immediately followed by `inner` calls of
/// `instrumented`, and yields that round's plain/instrumented time ratio.
/// Because both sides of a round run back to back, slow-host noise hits
/// them near-equally and mostly cancels — unlike comparing two families
/// benchmarked seconds apart.
///
/// # Panics
///
/// Panics when `samples` or `inner` is zero.
pub fn bench_pair<A: FnMut(), B: FnMut()>(
    samples: usize,
    inner: usize,
    mut plain: A,
    mut instrumented: B,
) -> Vec<f64> {
    assert!(samples > 0 && inner > 0, "need at least one sample/rep");
    for _ in 0..inner.min(4) {
        plain(); // warmup both sides
        instrumented();
    }
    let mut ratios = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..inner {
            plain();
        }
        let plain_ns = start.elapsed().as_nanos() as f64;
        let start = Instant::now();
        for _ in 0..inner {
            instrumented();
        }
        let instrumented_ns = (start.elapsed().as_nanos() as f64).max(1.0);
        ratios.push(plain_ns / instrumented_ns);
    }
    ratios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_a_trivial_op() {
        let mut count = 0u64;
        let s = bench("noop", 10, 8, || count += 1);
        assert_eq!(s.samples, 10);
        assert_eq!(s.inner, 8);
        assert!(count >= 80, "all samples ran");
        assert!(s.min_ns <= s.p50_ns && s.p50_ns <= s.p95_ns);
        assert!(s.ops_per_sec > 0.0);
    }

    #[test]
    fn paired_rounds_of_identical_work_ratio_near_one() {
        let ratios = bench_pair(
            10,
            16,
            || {
                std::hint::black_box(btcfast_crypto::sha256::sha256d(b"twin"));
            },
            || {
                std::hint::black_box(btcfast_crypto::sha256::sha256d(b"twin"));
            },
        );
        assert_eq!(ratios.len(), 10);
        let mut sorted = ratios.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = quantile(&sorted, 0.5);
        assert!(
            (0.5..2.0).contains(&median),
            "identical twin work should ratio near 1.0, got {median}"
        );
    }

    #[test]
    fn quantiles_are_ordered_and_in_range() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 100.0);
        let p50 = quantile(&sorted, 0.5);
        let p95 = quantile(&sorted, 0.95);
        assert!((49.0..=52.0).contains(&p50));
        assert!((94.0..=97.0).contains(&p95));
    }

    #[test]
    fn json_shape_has_the_gate_fields() {
        let s = bench("x", 3, 2, || {
            std::hint::black_box(1 + 1);
        });
        let j = s.to_json();
        for key in [
            "samples",
            "inner",
            "mean_ns",
            "p50_ns",
            "p95_ns",
            "min_ns",
            "ops_per_sec",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
