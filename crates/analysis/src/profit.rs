//! Attack profitability and collateral sizing.
//!
//! A BTCFast double-spender faces a new term absent from plain Bitcoin
//! economics: if the merchant's dispute succeeds, the **escrow collateral**
//! is forfeited to the merchant. The expected profit of attacking a payment
//! of value `v` with success probability `P` (from the race model) is
//!
//! ```text
//! E[profit] = P·v − (1 − P)·(C + m) − P·κ·C
//! ```
//!
//! where `C` is the collateral at stake, `m` the attacker's mining
//! opportunity cost, and `κ` the probability the judge still catches the
//! attack even when the BTC race succeeded (the judgment window extends
//! past the race). Setting `E[profit] ≤ 0` and solving for `C` gives the
//! minimum collateral a merchant should require.

use crate::rosenfeld;

/// Parameters of the profitability model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackEconomics {
    /// Attacker hashrate fraction, in `(0, 1)`.
    pub attacker_hashrate: f64,
    /// Confirmations the merchant's dispute evidence spans (the judgment
    /// window W; plays the role of `z` in the race model).
    pub judgment_window: u64,
    /// Attacker's expected mining opportunity cost over the attack, in the
    /// same unit as payment values (e.g. satoshis).
    pub mining_cost: f64,
    /// Probability the judge punishes a *successful* BTC race anyway
    /// (evidence race lost by the attacker on the PSC chain).
    pub residual_catch_probability: f64,
}

impl AttackEconomics {
    /// A conservative default: judgment window 6, zero mining cost credit
    /// to the attacker, and no residual catch.
    pub fn conservative(attacker_hashrate: f64, judgment_window: u64) -> AttackEconomics {
        AttackEconomics {
            attacker_hashrate,
            judgment_window,
            mining_cost: 0.0,
            residual_catch_probability: 0.0,
        }
    }

    /// Probability the double-spend race itself succeeds (Rosenfeld model).
    pub fn race_success_probability(&self) -> f64 {
        rosenfeld::attack_success(self.attacker_hashrate, self.judgment_window)
    }

    /// Expected attacker profit for payment value `v` and collateral `c`.
    pub fn expected_profit(&self, v: f64, c: f64) -> f64 {
        let p = self.race_success_probability();
        p * v - (1.0 - p) * (c + self.mining_cost) - p * self.residual_catch_probability * c
    }

    /// Minimum collateral making the attack non-profitable
    /// (`E[profit] <= 0`), or `None` when no finite collateral suffices
    /// (attacker wins the race almost surely and is never caught).
    pub fn min_collateral(&self, v: f64) -> Option<f64> {
        let p = self.race_success_probability();
        let loss_weight = (1.0 - p) + p * self.residual_catch_probability;
        if loss_weight <= 0.0 {
            return None;
        }
        let c = (p * v - (1.0 - p) * self.mining_cost) / loss_weight;
        Some(c.max(0.0))
    }

    /// The collateral-to-value ratio `ρ = C*/v` a merchant policy should
    /// demand. `None` mirrors [`AttackEconomics::min_collateral`].
    pub fn collateral_ratio(&self, v: f64) -> Option<f64> {
        assert!(v > 0.0, "payment value must be positive");
        self.min_collateral(v).map(|c| c / v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_hashrate_needs_tiny_collateral() {
        let econ = AttackEconomics::conservative(0.1, 6);
        let ratio = econ.collateral_ratio(1_000_000.0).unwrap();
        // P ≈ 0.00024 → ratio ≈ 0.00024.
        assert!(ratio < 0.001, "ratio = {ratio}");
    }

    #[test]
    fn high_hashrate_needs_large_collateral() {
        let econ = AttackEconomics::conservative(0.4, 6);
        let ratio = econ.collateral_ratio(1_000_000.0).unwrap();
        assert!(ratio > 0.5, "ratio = {ratio}");
    }

    #[test]
    fn collateral_zeroes_expected_profit() {
        let econ = AttackEconomics::conservative(0.25, 6);
        let v = 500_000.0;
        let c = econ.min_collateral(v).unwrap();
        let profit = econ.expected_profit(v, c);
        assert!(profit.abs() < 1e-6, "profit = {profit}");
        // Any larger collateral makes the attack strictly losing.
        assert!(econ.expected_profit(v, c * 1.01) < 0.0);
        assert!(econ.expected_profit(v, c * 0.99) > 0.0);
    }

    #[test]
    fn mining_cost_reduces_required_collateral() {
        let base = AttackEconomics::conservative(0.3, 6);
        let with_cost = AttackEconomics {
            mining_cost: 100_000.0,
            ..base
        };
        let v = 1_000_000.0;
        assert!(with_cost.min_collateral(v).unwrap() < base.min_collateral(v).unwrap());
    }

    #[test]
    fn residual_catch_reduces_required_collateral() {
        let base = AttackEconomics::conservative(0.45, 6);
        let with_catch = AttackEconomics {
            residual_catch_probability: 0.9,
            ..base
        };
        let v = 1_000_000.0;
        assert!(with_catch.min_collateral(v).unwrap() < base.min_collateral(v).unwrap());
    }

    #[test]
    fn majority_attacker_without_catch_is_uninsurable() {
        let econ = AttackEconomics::conservative(0.6, 6);
        // Race success = 1 and no residual catch → no finite collateral.
        assert_eq!(econ.min_collateral(1_000_000.0), None);
        // With a residual catch probability, collateral becomes finite.
        let with_catch = AttackEconomics {
            residual_catch_probability: 0.5,
            ..econ
        };
        assert!(with_catch.min_collateral(1_000_000.0).is_some());
    }

    #[test]
    fn collateral_never_negative() {
        let econ = AttackEconomics {
            attacker_hashrate: 0.05,
            judgment_window: 20,
            mining_cost: 1e12,
            residual_catch_probability: 0.0,
        };
        assert_eq!(econ.min_collateral(100.0), Some(0.0));
    }

    #[test]
    fn wider_window_lowers_collateral() {
        let v = 1_000_000.0;
        let narrow = AttackEconomics::conservative(0.3, 2);
        let wide = AttackEconomics::conservative(0.3, 12);
        assert!(wide.collateral_ratio(v).unwrap() < narrow.collateral_ratio(v).unwrap());
    }
}
