//! # btcfast-netsim
//!
//! A small discrete-event network simulator.
//!
//! BTCFast's headline claim is a *latency* number ("waiting time < 1 s"), so
//! timing must come from a controlled clock, not from how fast the host CPU
//! happens to mine reduced-difficulty blocks. This crate provides:
//!
//! * [`time`] — a microsecond-resolution simulation clock;
//! * [`scheduler`] — a deterministic priority-queue event loop;
//! * [`latency`] — pluggable message-delay models (constant, uniform,
//!   log-normal) with LAN/WAN presets;
//! * [`network`] — a message-passing fabric with per-link latency,
//!   loss, and partitions;
//! * [`poisson`] — exponential inter-arrival sampling for block discovery;
//! * [`transport`] — reliable at-least-once delivery (acks, bounded
//!   retries, exponential backoff, receiver-side dedup) over [`network`];
//! * [`faults`] — seeded, replayable fault-injection scripts (loss
//!   windows, partitions, crashes, PSC stalls).
//!
//! # Example
//!
//! ```
//! use btcfast_netsim::scheduler::Scheduler;
//! use btcfast_netsim::time::SimTime;
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule(SimTime::from_secs_f64(1.0), "block found");
//! sched.schedule(SimTime::from_secs_f64(0.2), "tx broadcast");
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!(ev, "tx broadcast");
//! assert_eq!(t, SimTime::from_secs_f64(0.2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod latency;
pub mod network;
pub mod poisson;
pub mod scheduler;
pub mod time;
pub mod transport;

pub use faults::{ChaosSpec, FaultAction, FaultEvent, FaultPlan};
pub use latency::LatencyModel;
pub use network::{Network, NodeId};
pub use scheduler::Scheduler;
pub use time::SimTime;
pub use transport::{MsgId, SendStatus, Transport, TransportConfig, TransportStats};
