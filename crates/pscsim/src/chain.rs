//! The PSC chain node: code registry, transaction pool, execution engine,
//! and block production.

use crate::account::AccountId;
use crate::block::PscBlock;
use crate::contract::{Contract, ContractError, Env, HostStorage, ViewStorage};
use crate::gas::{GasMeter, GasSchedule};
use crate::params::PscParams;
use crate::state::WorldState;
use crate::tx::{Action, PscTransaction, PscTxError, Receipt, TxStatus};
use btcfast_crypto::Hash256;
use std::collections::HashMap;
use std::sync::Arc;

/// A PSC chain with proof-of-authority block production.
///
/// Registered contract *code* is shared ([`Arc`]) and stateless; deployed
/// contract *instances* are accounts whose state lives in [`WorldState`]
/// storage.
#[derive(Clone)]
pub struct PscChain {
    params: PscParams,
    registry: HashMap<&'static str, Arc<dyn Contract>>,
    state: WorldState,
    blocks: Vec<PscBlock>,
    pending: Vec<PscTransaction>,
    receipts: HashMap<Hash256, Receipt>,
    /// Account credited with fees (the validator).
    validator: AccountId,
    /// Cumulative gas used (diagnostics / fee tables).
    total_gas_used: u64,
}

impl std::fmt::Debug for PscChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PscChain")
            .field("params", &self.params.name)
            .field("height", &self.height())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl PscChain {
    /// Creates a chain with the given parameters.
    pub fn new(params: PscParams) -> PscChain {
        PscChain {
            params,
            registry: HashMap::new(),
            state: WorldState::new(),
            blocks: Vec::new(),
            pending: Vec::new(),
            receipts: HashMap::new(),
            validator: AccountId([0xA1; 20]),
            total_gas_used: 0,
        }
    }

    /// The chain parameters.
    pub fn params(&self) -> &PscParams {
        &self.params
    }

    /// Registers deployable contract code.
    pub fn register_code(&mut self, code: Arc<dyn Contract>) {
        self.registry.insert(code.code_id(), code);
    }

    /// Mints native balance out of thin air (test/simulation faucet),
    /// clamped to the account's remaining `u128` headroom so repeated
    /// fuzzed mints cannot overflow. Returns the amount actually minted.
    pub fn faucet(&mut self, account: AccountId, amount: u128) -> u128 {
        let headroom = u128::MAX - self.state.balance(&account);
        let minted = amount.min(headroom);
        self.state
            .credit(account, minted)
            .expect("mint is clamped to the account's headroom");
        minted
    }

    /// Current block number (0 before any block).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Timestamp of the latest block (0 at genesis).
    pub fn tip_time(&self) -> u64 {
        self.blocks.last().map(|b| b.time).unwrap_or(0)
    }

    /// Balance of an account.
    pub fn balance_of(&self, account: &AccountId) -> u128 {
        self.state.balance(account)
    }

    /// The account fees accrue to. Exposed so value-conservation audits
    /// can close their books without guessing at chain internals.
    pub fn validator(&self) -> AccountId {
        self.validator
    }

    /// Nonce of an account.
    pub fn nonce_of(&self, account: &AccountId) -> u64 {
        self.state.nonce(account)
    }

    /// The receipt of a processed transaction.
    pub fn receipt(&self, tx_hash: &Hash256) -> Option<&Receipt> {
        self.receipts.get(tx_hash)
    }

    /// A produced block by number (1-based).
    pub fn block(&self, number: u64) -> Option<&PscBlock> {
        if number == 0 || number > self.height() {
            return None;
        }
        self.blocks.get((number - 1) as usize)
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative gas used across all blocks.
    pub fn total_gas_used(&self) -> u64 {
        self.total_gas_used
    }

    /// Deepest the state's pre-image journal has ever grown — the
    /// checkpoint-depth observability metric.
    pub fn journal_high_water(&self) -> usize {
        self.state.journal_high_water()
    }

    /// Confirmations of the block containing `tx_hash` (1 = in tip block),
    /// or `None` if unprocessed.
    pub fn confirmations(&self, tx_hash: &Hash256) -> Option<u64> {
        let receipt = self.receipts.get(tx_hash)?;
        if receipt.block_number == 0 {
            return None;
        }
        Some(self.height() - receipt.block_number + 1)
    }

    /// True once the containing block is `finality_depth` deep.
    pub fn is_final(&self, tx_hash: &Hash256) -> bool {
        self.confirmations(tx_hash)
            .map(|c| c >= self.params.finality_depth)
            .unwrap_or(false)
    }

    /// Queues a transaction for the next block after stateless checks.
    ///
    /// # Errors
    ///
    /// Returns [`PscTxError`] for bad signatures or an over-cap gas limit.
    /// Nonce and balance are checked at execution time (they depend on
    /// in-block ordering).
    pub fn submit_transaction(&mut self, tx: PscTransaction) -> Result<Hash256, PscTxError> {
        tx.verify_signature()?;
        if tx.gas_limit > self.params.tx_gas_limit {
            return Err(PscTxError::GasLimitTooHigh {
                requested: tx.gas_limit,
                cap: self.params.tx_gas_limit,
            });
        }
        let hash = tx.hash();
        self.pending.push(tx);
        Ok(hash)
    }

    /// Produces the next block at `time`, executing all pending
    /// transactions in submission order.
    pub fn produce_block(&mut self, time: u64) -> &PscBlock {
        let number = self.height() + 1;
        let pending = std::mem::take(&mut self.pending);
        // One schedule clone per block, shared by every transaction; the
        // borrow cannot come from `self.params` because execution takes
        // `&mut self`.
        let schedule = self.params.schedule.clone();
        let mut tx_hashes = Vec::with_capacity(pending.len());
        for tx in pending {
            let hash = tx.hash();
            let receipt = self.execute(tx, number, time, &schedule);
            self.total_gas_used += receipt.gas_used;
            self.receipts.insert(hash, receipt);
            tx_hashes.push(hash);
        }
        let block = PscBlock {
            number,
            time,
            parent_hash: self
                .blocks
                .last()
                .map(|b| b.hash())
                .unwrap_or(Hash256::ZERO),
            tx_hashes,
            state_commitment: self.state.commitment(),
        };
        self.blocks.push(block);
        self.blocks.last().expect("just pushed")
    }

    /// Executes one transaction against the state.
    fn execute(
        &mut self,
        tx: PscTransaction,
        block_number: u64,
        block_time: u64,
        schedule: &GasSchedule,
    ) -> Receipt {
        let tx_hash = tx.hash();
        let sender = tx.sender();
        let invalid = |msg: String| Receipt {
            tx_hash,
            status: TxStatus::Invalid(msg),
            gas_used: 0,
            fee_paid: 0,
            events: vec![],
            return_data: vec![],
            contract_address: None,
            block_number,
        };

        // Pre-execution checks.
        let expected_nonce = self.state.nonce(&sender);
        if tx.nonce != expected_nonce {
            return invalid(format!(
                "bad nonce: expected {expected_nonce}, got {}",
                tx.nonce
            ));
        }
        let max_cost = tx.value.saturating_add(tx.max_fee());
        if self.state.balance(&sender) < max_cost {
            return invalid("insufficient balance for value plus max fee".into());
        }

        // Intrinsic gas.
        let mut meter = GasMeter::new(tx.gas_limit);
        let intrinsic = schedule.tx_intrinsic
            + schedule.calldata_byte * tx.action.calldata_len() as u64
            + schedule.ecdsa_verify;
        if meter.charge(intrinsic).is_err() {
            // Intrinsic alone exceeds the limit: whole limit burned.
            let fee = self.collect_fee(sender, tx.max_fee());
            self.state.account_mut(sender).nonce += 1;
            return Receipt {
                tx_hash,
                status: TxStatus::OutOfGas,
                gas_used: tx.gas_limit,
                fee_paid: fee,
                events: vec![],
                return_data: vec![],
                contract_address: None,
                block_number,
            };
        }

        // Open a journal transaction for revert: a failed call rolls back
        // only the entries it touched instead of restoring a full clone.
        let checkpoint = self.state.begin_transaction();
        self.state.account_mut(sender).nonce += 1;

        type CallOutcome =
            Result<(Vec<u8>, Vec<crate::contract::Event>, Option<AccountId>), ContractError>;
        let result: CallOutcome = match &tx.action {
            Action::Transfer { to } => match self.state.transfer(sender, *to, tx.value) {
                Ok(()) => Ok((vec![], vec![], None)),
                Err(e) => Err(ContractError::Revert(e.to_string())),
            },
            Action::Deploy { code_id, args } => {
                match self.registry.get(code_id.as_str()).cloned() {
                    None => Err(ContractError::Revert(format!(
                        "unknown code id {code_id:?}"
                    ))),
                    Some(code) => match meter.charge(schedule.deploy) {
                        Err(e) => Err(ContractError::OutOfGas(e)),
                        Ok(()) => {
                            let contract_id = AccountId::contract(&sender, tx.nonce, code_id);
                            self.state.account_mut(contract_id).code_id = Some(code_id.clone());
                            match self.state.transfer(sender, contract_id, tx.value) {
                                Err(e) => Err(ContractError::Revert(e.to_string())),
                                Ok(()) => {
                                    let env = Env {
                                        caller: sender,
                                        contract: contract_id,
                                        value: tx.value,
                                        block_number,
                                        block_time,
                                    };
                                    self.run_contract(
                                        &code, &env, "init", args, &mut meter, schedule,
                                    )
                                    .map(|(ret, events)| (ret, events, Some(contract_id)))
                                }
                            }
                        }
                    },
                }
            }
            Action::Call {
                contract,
                method,
                args,
            } => {
                let code_id = self.state.account(contract).and_then(|a| a.code_id.clone());
                match code_id.and_then(|id| self.registry.get(id.as_str()).cloned()) {
                    None => Err(ContractError::Revert(format!(
                        "account {contract} holds no code"
                    ))),
                    Some(code) => match self.state.transfer(sender, *contract, tx.value) {
                        Err(e) => Err(ContractError::Revert(e.to_string())),
                        Ok(()) => {
                            let env = Env {
                                caller: sender,
                                contract: *contract,
                                value: tx.value,
                                block_number,
                                block_time,
                            };
                            self.run_contract(&code, &env, method, args, &mut meter, schedule)
                                .map(|(ret, events)| (ret, events, None))
                        }
                    },
                }
            }
        };

        let gas_used = meter.used();
        let fee = (gas_used as u128).saturating_mul(tx.gas_price);

        match result {
            Ok((return_data, events, contract_address)) => {
                self.state.commit(checkpoint);
                let fee = self.collect_fee(sender, fee);
                Receipt {
                    tx_hash,
                    status: TxStatus::Succeeded,
                    gas_used,
                    fee_paid: fee,
                    events,
                    return_data,
                    contract_address,
                    block_number,
                }
            }
            Err(error) => {
                // Revert all state changes, then charge the fee.
                self.state.rollback(checkpoint);
                self.state.account_mut(sender).nonce += 1;
                let (status, billed_gas) = match error {
                    ContractError::OutOfGas(_) => (TxStatus::OutOfGas, tx.gas_limit),
                    other => (TxStatus::Reverted(other.to_string()), gas_used),
                };
                let fee = (billed_gas as u128).saturating_mul(tx.gas_price);
                let fee = self.collect_fee(sender, fee);
                Receipt {
                    tx_hash,
                    status,
                    gas_used: billed_gas,
                    fee_paid: fee,
                    events: vec![],
                    return_data: vec![],
                    contract_address: None,
                    block_number,
                }
            }
        }
    }

    /// Moves a fee from `sender` to the validator, capping at whatever the
    /// sender can actually pay and refunding if the validator's balance
    /// cannot absorb it (fuzzed states hold near-`u128::MAX` balances).
    /// Returns the fee actually collected — never panics on hostile input.
    fn collect_fee(&mut self, sender: AccountId, fee: u128) -> u128 {
        let paid = fee.min(self.state.balance(&sender));
        if self.state.debit(sender, paid).is_err() {
            return 0;
        }
        if self.state.credit(self.validator, paid).is_err() {
            self.state
                .credit(sender, paid)
                .expect("restoring a just-debited balance cannot overflow");
            return 0;
        }
        paid
    }

    fn run_contract(
        &mut self,
        code: &Arc<dyn Contract>,
        env: &Env,
        method: &str,
        args: &[u8],
        meter: &mut GasMeter,
        schedule: &GasSchedule,
    ) -> Result<(Vec<u8>, Vec<crate::contract::Event>), ContractError> {
        let mut host = HostStorage {
            world: &mut self.state,
            meter,
            schedule,
            contract: env.contract,
            events: Vec::new(),
            transfers: Vec::new(),
        };
        let ret = code.call(env, method, args, &mut host)?;
        let events = host.events;
        Ok((ret, events))
    }

    /// Executes a read-only call against current state without a
    /// transaction: free, unmetered (large scratch budget), uncommitted.
    ///
    /// Zero-copy: the call reads the live state through a borrow and any
    /// writes the method makes land in a discarded overlay
    /// ([`ViewStorage`]) — the state is never cloned.
    ///
    /// # Errors
    ///
    /// Propagates [`ContractError`] from the contract.
    pub fn call_view(
        &self,
        caller: AccountId,
        contract: AccountId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let code_id = self
            .state
            .account(&contract)
            .and_then(|a| a.code_id.clone())
            .ok_or_else(|| ContractError::Revert(format!("account {contract} holds no code")))?;
        let code = self
            .registry
            .get(code_id.as_str())
            .cloned()
            .ok_or_else(|| ContractError::Revert(format!("unregistered code {code_id:?}")))?;
        let mut meter = GasMeter::new(u64::MAX / 2);
        let env = Env {
            caller,
            contract,
            value: 0,
            block_number: self.height(),
            block_time: self.tip_time(),
        };
        let mut host = ViewStorage::new(&self.state, &mut meter, &self.params.schedule, contract);
        code.call(&env, method, args, &mut host)
    }

    /// Commitment over the current world state (the tip "state root").
    pub fn state_commitment(&self) -> Hash256 {
        self.state.commitment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decode, Encode};
    use crate::contract::Storage;
    use btcfast_crypto::keys::KeyPair;

    /// A tiny counter contract used to exercise the runtime.
    struct Counter;

    impl Contract for Counter {
        fn code_id(&self) -> &'static str {
            "counter"
        }

        fn call(
            &self,
            env: &Env,
            method: &str,
            args: &[u8],
            storage: &mut dyn Storage,
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "init" => {
                    let start = if args.is_empty() {
                        0u64
                    } else {
                        u64::decode(args)?
                    };
                    storage.set(b"count", &start.encode())?;
                    storage.set(b"owner", &env.caller.encode())?;
                    Ok(vec![])
                }
                "increment" => {
                    let count = storage
                        .get(b"count")?
                        .map(|v| u64::decode(&v))
                        .transpose()?
                        .unwrap_or(0);
                    let next = count + 1;
                    storage.set(b"count", &next.encode())?;
                    storage.emit("Incremented", next.encode())?;
                    Ok(next.encode())
                }
                "get" => Ok(storage.get(b"count")?.unwrap_or_default()),
                "fail" => Err(ContractError::Revert("intentional failure".into())),
                "burn" => loop {
                    storage.charge(10_000)?;
                },
                "payout" => {
                    let owner = storage
                        .get(b"owner")?
                        .map(|v| AccountId::decode(&v))
                        .transpose()?
                        .ok_or_else(|| ContractError::Revert("uninitialized".into()))?;
                    let balance = storage.contract_balance();
                    storage.transfer_out(owner, balance)?;
                    Ok(vec![])
                }
                other => Err(ContractError::UnknownMethod(other.to_string())),
            }
        }
    }

    struct Fixture {
        chain: PscChain,
        alice: KeyPair,
        contract: AccountId,
    }

    fn deploy_counter() -> Fixture {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        chain.register_code(Arc::new(Counter));
        let alice = KeyPair::from_seed(b"alice");
        chain.faucet(alice.address().into(), 10_000_000_000);

        let deploy = PscTransaction::new(
            *alice.public(),
            0,
            0,
            Action::Deploy {
                code_id: "counter".into(),
                args: 5u64.encode(),
            },
        )
        .with_gas(1_000_000, 20)
        .sign(&alice);
        let hash = chain.submit_transaction(deploy).unwrap();
        chain.produce_block(15);
        let receipt = chain.receipt(&hash).unwrap().clone();
        assert!(receipt.status.is_success(), "{:?}", receipt.status);
        Fixture {
            contract: receipt.contract_address.unwrap(),
            chain,
            alice,
        }
    }

    fn call(fx: &mut Fixture, method: &str, args: Vec<u8>, value: u128, gas_limit: u64) -> Receipt {
        let nonce = fx.chain.nonce_of(&fx.alice.address().into());
        let tx = PscTransaction::new(
            *fx.alice.public(),
            nonce,
            value,
            Action::Call {
                contract: fx.contract,
                method: method.into(),
                args,
            },
        )
        .with_gas(gas_limit, 20)
        .sign(&fx.alice);
        let hash = fx.chain.submit_transaction(tx).unwrap();
        let time = fx.chain.tip_time() + 15;
        fx.chain.produce_block(time);
        fx.chain.receipt(&hash).unwrap().clone()
    }

    #[test]
    fn deploy_and_init() {
        let fx = deploy_counter();
        let count = fx
            .chain
            .call_view(fx.alice.address().into(), fx.contract, "get", &[])
            .unwrap();
        assert_eq!(u64::decode(&count).unwrap(), 5);
    }

    #[test]
    fn call_mutates_state_and_emits() {
        let mut fx = deploy_counter();
        let receipt = call(&mut fx, "increment", vec![], 0, 1_000_000);
        assert!(receipt.status.is_success());
        assert_eq!(u64::decode(&receipt.return_data).unwrap(), 6);
        assert_eq!(receipt.events.len(), 1);
        assert_eq!(receipt.events[0].topic, "Incremented");
        assert!(receipt.gas_used > 0);
        assert_eq!(receipt.fee_paid, receipt.gas_used as u128 * 20);
    }

    #[test]
    fn revert_rolls_back_but_charges() {
        let mut fx = deploy_counter();
        call(&mut fx, "increment", vec![], 0, 1_000_000);
        let balance_before = fx.chain.balance_of(&fx.alice.address().into());
        let receipt = call(&mut fx, "fail", vec![], 0, 1_000_000);
        assert!(matches!(receipt.status, TxStatus::Reverted(_)));
        // Fee was charged.
        let balance_after = fx.chain.balance_of(&fx.alice.address().into());
        assert!(balance_after < balance_before);
        // State unchanged.
        let count = fx
            .chain
            .call_view(fx.alice.address().into(), fx.contract, "get", &[])
            .unwrap();
        assert_eq!(u64::decode(&count).unwrap(), 6);
    }

    #[test]
    fn out_of_gas_burns_full_limit() {
        let mut fx = deploy_counter();
        let receipt = call(&mut fx, "burn", vec![], 0, 200_000);
        assert_eq!(receipt.status, TxStatus::OutOfGas);
        assert_eq!(receipt.gas_used, 200_000);
        assert_eq!(receipt.fee_paid, 200_000 * 20);
    }

    #[test]
    fn value_transfer_to_contract_and_payout() {
        let mut fx = deploy_counter();
        let receipt = call(&mut fx, "increment", vec![], 500, 1_000_000);
        assert!(receipt.status.is_success());
        assert_eq!(fx.chain.balance_of(&fx.contract), 500);
        let receipt = call(&mut fx, "payout", vec![], 0, 1_000_000);
        assert!(receipt.status.is_success());
        assert_eq!(fx.chain.balance_of(&fx.contract), 0);
    }

    #[test]
    fn plain_transfer() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"a");
        let bob = KeyPair::from_seed(b"b");
        chain.faucet(alice.address().into(), 1_000_000_000);
        let tx = PscTransaction::new(
            *alice.public(),
            0,
            250,
            Action::Transfer {
                to: bob.address().into(),
            },
        )
        .with_gas(100_000, 1)
        .sign(&alice);
        chain.submit_transaction(tx).unwrap();
        chain.produce_block(15);
        assert_eq!(chain.balance_of(&bob.address().into()), 250);
    }

    #[test]
    fn bad_nonce_invalid() {
        let mut fx = deploy_counter();
        let tx = PscTransaction::new(
            *fx.alice.public(),
            99,
            0,
            Action::Call {
                contract: fx.contract,
                method: "increment".into(),
                args: vec![],
            },
        )
        .with_gas(1_000_000, 20)
        .sign(&fx.alice);
        let hash = fx.chain.submit_transaction(tx).unwrap();
        fx.chain.produce_block(30);
        assert!(matches!(
            fx.chain.receipt(&hash).unwrap().status,
            TxStatus::Invalid(_)
        ));
    }

    #[test]
    fn insufficient_balance_invalid() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let pauper = KeyPair::from_seed(b"pauper");
        let tx = PscTransaction::new(
            *pauper.public(),
            0,
            1_000,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        )
        .with_gas(100_000, 1)
        .sign(&pauper);
        let hash = chain.submit_transaction(tx).unwrap();
        chain.produce_block(15);
        assert!(matches!(
            chain.receipt(&hash).unwrap().status,
            TxStatus::Invalid(_)
        ));
    }

    #[test]
    fn unsigned_rejected_at_submission() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"a");
        let tx = PscTransaction::new(
            *alice.public(),
            0,
            0,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        );
        assert_eq!(chain.submit_transaction(tx), Err(PscTxError::BadSignature));
    }

    #[test]
    fn gas_cap_enforced() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"a");
        let tx = PscTransaction::new(
            *alice.public(),
            0,
            0,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        )
        .with_gas(100_000_000, 1)
        .sign(&alice);
        assert!(matches!(
            chain.submit_transaction(tx),
            Err(PscTxError::GasLimitTooHigh { .. })
        ));
    }

    #[test]
    fn unknown_code_reverts() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"a");
        chain.faucet(alice.address().into(), 1_000_000_000);
        let tx = PscTransaction::new(
            *alice.public(),
            0,
            0,
            Action::Deploy {
                code_id: "ghost".into(),
                args: vec![],
            },
        )
        .with_gas(1_000_000, 1)
        .sign(&alice);
        let hash = chain.submit_transaction(tx).unwrap();
        chain.produce_block(15);
        assert!(matches!(
            chain.receipt(&hash).unwrap().status,
            TxStatus::Reverted(_)
        ));
    }

    #[test]
    fn finality_tracking() {
        let mut fx = deploy_counter();
        let receipt = call(&mut fx, "increment", vec![], 0, 1_000_000);
        assert!(!fx.chain.is_final(&receipt.tx_hash));
        for _ in 0..fx.chain.params().finality_depth {
            let t = fx.chain.tip_time() + 15;
            fx.chain.produce_block(t);
        }
        assert!(fx.chain.is_final(&receipt.tx_hash));
    }

    #[test]
    fn block_chain_links() {
        let mut fx = deploy_counter();
        call(&mut fx, "increment", vec![], 0, 1_000_000);
        let b1 = fx.chain.block(1).unwrap().clone();
        let b2 = fx.chain.block(2).unwrap().clone();
        assert_eq!(b2.parent_hash, b1.hash());
        assert!(fx.chain.block(0).is_none());
        assert!(fx.chain.block(99).is_none());
    }

    #[test]
    fn sequential_nonces_in_one_block() {
        // Two transfers from the same sender with nonces n and n+1 must
        // both execute when included in the same block, in order.
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"seq");
        let bob = AccountId([9; 20]);
        chain.faucet(alice.address().into(), 1_000_000_000);
        for nonce in 0..2 {
            let tx = PscTransaction::new(*alice.public(), nonce, 100, Action::Transfer { to: bob })
                .with_gas(100_000, 1)
                .sign(&alice);
            chain.submit_transaction(tx).unwrap();
        }
        chain.produce_block(15);
        assert_eq!(chain.balance_of(&bob), 200);
        assert_eq!(chain.nonce_of(&alice.address().into()), 2);
    }

    #[test]
    fn out_of_order_nonce_in_block_is_invalid() {
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"ooo");
        chain.faucet(alice.address().into(), 1_000_000_000);
        // Submit nonce 1 before nonce 0: the first (nonce 1) fails, the
        // second (nonce 0) succeeds.
        let tx1 = PscTransaction::new(
            *alice.public(),
            1,
            5,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        )
        .with_gas(100_000, 1)
        .sign(&alice);
        let tx0 = PscTransaction::new(
            *alice.public(),
            0,
            5,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        )
        .with_gas(100_000, 1)
        .sign(&alice);
        let h1 = chain.submit_transaction(tx1).unwrap();
        let h0 = chain.submit_transaction(tx0).unwrap();
        chain.produce_block(15);
        assert!(matches!(
            chain.receipt(&h1).unwrap().status,
            TxStatus::Invalid(_)
        ));
        assert!(chain.receipt(&h0).unwrap().status.is_success());
    }

    #[test]
    fn hostile_gas_price_cannot_abort_execution() {
        // Found by the audit fuzzer: gas_limit × a u128::MAX gas_price
        // overflowed max_fee() (a debug-build panic) before the balance
        // pre-check could reject the transaction. The saturated cost now
        // fails the pre-check and the receipt degrades to Invalid.
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let alice = KeyPair::from_seed(b"hostile");
        chain.faucet(alice.address().into(), 1_000_000_000);
        let tx = PscTransaction::new(
            *alice.public(),
            0,
            1,
            Action::Transfer {
                to: AccountId([9; 20]),
            },
        )
        .with_gas(100_000, u128::MAX)
        .sign(&alice);
        let hash = chain.submit_transaction(tx).unwrap();
        chain.produce_block(15);
        assert!(matches!(
            chain.receipt(&hash).unwrap().status,
            TxStatus::Invalid(_)
        ));
        // Nothing moved.
        assert_eq!(chain.balance_of(&AccountId([9; 20])), 0);
        assert_eq!(chain.balance_of(&alice.address().into()), 1_000_000_000);
    }

    #[test]
    fn faucet_clamps_to_headroom() {
        // Repeated fuzzed mints used to overflow the credit; the faucet
        // now reports how much it actually minted.
        let mut chain = PscChain::new(PscParams::ethereum_like());
        let rich = AccountId([7; 20]);
        assert_eq!(chain.faucet(rich, u128::MAX), u128::MAX);
        assert_eq!(chain.faucet(rich, 500), 0);
        assert_eq!(chain.balance_of(&rich), u128::MAX);
    }

    #[test]
    fn total_gas_accumulates() {
        let mut fx = deploy_counter();
        let before = fx.chain.total_gas_used();
        call(&mut fx, "increment", vec![], 0, 1_000_000);
        assert!(fx.chain.total_gas_used() > before);
    }
}
