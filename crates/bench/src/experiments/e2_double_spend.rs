//! E2 — double-spend success probability vs confirmations (claim C2
//! context): Nakamoto theory, Rosenfeld theory, and Monte-Carlo simulation
//! on the race model, for attacker hashrates q ∈ {0.1, 0.2, 0.3, 0.4}.

use crate::table::{prob, Table};
use btcfast_analysis::{nakamoto, rosenfeld};
use btcfast_btcsim::attack::{race_probability_monte_carlo, RaceParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 2_000 } else { 50_000 };
    let z_values: &[u64] = if quick {
        &[0, 1, 2, 6]
    } else {
        &[0, 1, 2, 3, 4, 5, 6, 8, 10]
    };
    let mut tables = Vec::new();
    for q in [0.1, 0.2, 0.3, 0.4] {
        let mut table = Table::new(
            &format!("E2 — double-spend success probability, q = {q}"),
            &["z (confirmations)", "Nakamoto", "Rosenfeld", "Monte-Carlo"],
        );
        let mut rng = StdRng::seed_from_u64((q * 1000.0) as u64);
        for &z in z_values {
            let nak = nakamoto::attack_success(q, z);
            let ros = rosenfeld::attack_success(q, z);
            let mc = if z == 0 {
                1.0
            } else {
                race_probability_monte_carlo(
                    &RaceParams {
                        attacker_hashrate: q,
                        confirmations: z,
                        give_up_deficit: 60,
                        required_lead: 0,
                    },
                    trials,
                    &mut rng,
                )
            };
            table.push(vec![z.to_string(), prob(nak), prob(ros), prob(mc)]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_theory_and_simulation_agree() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 4);
        // Beyond smoke: re-check one cell numerically.
        let ros = btcfast_analysis::rosenfeld::attack_success(0.1, 1);
        assert!((ros - 0.2).abs() < 1e-12);
    }
}
