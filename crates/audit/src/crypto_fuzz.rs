//! `crypto` engine: differential targets for the secp256k1 wNAF fast
//! path against the retained binary double-and-add ladder, plus a hostile
//! sign→verify round-trip.
//!
//! The fast path (odd-multiple tables, the static generator table, the
//! per-key table cache — `btcfast_crypto::mul_table`) must agree with
//! `Point::mul_binary` on *every* scalar, and ECDSA verify verdicts must
//! be a pure function of `(key, digest, signature)` — never of cache
//! state. Scalar draws are edge-biased (0, 1, 2, n−1, n−2, 2^k,
//! all-ones) because wNAF bugs live at carries, leading zeros, and the
//! 257th digit. Points are drawn as `k*G` through the *binary* ladder, so
//! the group-closure guarantee holds even when the fast path under test
//! is the thing that is broken.

use crate::source::ByteSource;
use btcfast_crypto::ecdsa::{self, verify_uncached, Signature};
use btcfast_crypto::keys::KeyPair;
use btcfast_crypto::mul_table::{generator_mul, mul_wnaf, OddMultiplesTable};
use btcfast_crypto::point::{AffinePoint, Point};
use btcfast_crypto::scalar::Scalar;

/// Draws a scalar, biased toward the wNAF edge cases.
fn draw_scalar(src: &mut ByteSource) -> Scalar {
    match src.choice(8) {
        0 => Scalar::ZERO,
        1 => Scalar::ONE,
        2 => Scalar::from_u64(2),
        3 => -Scalar::ONE,         // n - 1
        4 => -Scalar::from_u64(2), // n - 2
        5 => {
            // A single power of two: the sparsest wNAF.
            let k = src.choice(256);
            let mut b = [0u8; 32];
            b[31 - k / 8] = 1 << (k % 8);
            Scalar::from_be_bytes_reduced(&b)
        }
        6 => Scalar::from_be_bytes_reduced(&[0xFF; 32]), // densest bits
        _ => {
            let mut b = [0u8; 32];
            src.fill(&mut b);
            Scalar::from_be_bytes_reduced(&b)
        }
    }
}

/// Comparable serialization: affine `x || y` bytes, empty for infinity.
fn point_bytes(p: &Point) -> Vec<u8> {
    match p.to_affine() {
        AffinePoint::Infinity => Vec::new(),
        AffinePoint::Coordinates { x, y } => {
            let mut out = Vec::with_capacity(64);
            out.extend_from_slice(&x.to_be_bytes());
            out.extend_from_slice(&y.to_be_bytes());
            out
        }
    }
}

/// Differential: every fast multiplication path must be byte-identical to
/// the binary ladder on a fuzzed `(point, scalar)` draw.
pub fn diff_crypto_mul(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    // Base point: k*G via the oracle ladder (stays on-curve by group
    // closure even if the code under test is wrong). Bias k toward edges
    // too — the table build itself doubles and adds the base.
    let base_k = draw_scalar(&mut src);
    let base = Point::generator().mul_binary(&base_k);
    let k = draw_scalar(&mut src);

    let oracle = point_bytes(&base.mul_binary(&k));
    if point_bytes(&base.mul(&k)) != oracle {
        return Err(format!(
            "Point::mul diverges from mul_binary: base_k={base_k:?} k={k:?}"
        ));
    }
    if point_bytes(&mul_wnaf(&base, &k)) != oracle {
        return Err(format!(
            "mul_wnaf diverges from mul_binary: base_k={base_k:?} k={k:?}"
        ));
    }
    // A fuzz-chosen table width exercises every supported window.
    let width = 2 + src.choice(7) as u32; // 2..=8
    match OddMultiplesTable::new(&base, width) {
        Some(table) => {
            if point_bytes(&table.mul(&k)) != oracle {
                return Err(format!(
                    "width-{width} table diverges from mul_binary: base_k={base_k:?} k={k:?}"
                ));
            }
        }
        None => {
            if !base.is_infinity() {
                return Err("table build refused a finite point".into());
            }
        }
    }
    // Fixed-base path against the same oracle.
    if point_bytes(&generator_mul(&k)) != point_bytes(&Point::generator().mul_binary(&k)) {
        return Err(format!("generator_mul diverges from mul_binary: k={k:?}"));
    }
    // Interleaved double-scalar against the composed oracle.
    let a = draw_scalar(&mut src);
    let fast = Point::lincomb(&a, &k, &base);
    let slow = Point::generator().mul_binary(&a).add(&base.mul_binary(&k));
    if point_bytes(&fast) != point_bytes(&slow) {
        return Err(format!(
            "lincomb diverges: a={a:?} b={k:?} base_k={base_k:?}"
        ));
    }
    Ok(())
}

/// Hostile sign→verify round-trip: a fresh signature must verify on the
/// cached and uncached paths, and high-S / zero-component / tampered
/// mutations must all be rejected — with raw signature bytes never
/// panicking the parser.
pub fn fuzz_crypto_sign_verify(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let seed = src.bytes(16);
    let kp = KeyPair::from_seed(&seed);
    let mut digest = [0u8; 32];
    src.fill(&mut digest);

    let sig = kp.sign(&digest);
    let q = kp.public().point();
    if !kp.public().verify(&digest, &sig) {
        return Err("fresh signature rejected by cached verify".into());
    }
    if !verify_uncached(q, &digest, &sig) {
        return Err("fresh signature rejected by uncached verify".into());
    }

    // Hostile mutations: each must fail on BOTH paths (a split verdict is
    // the worst kind of cache bug).
    let mut tampered = digest;
    tampered[src.choice(32)] ^= 1 + src.u8() % 255;
    let wrong_key = KeyPair::from_seed(&[seed.as_slice(), b"!"].concat());
    let mutations: [(&str, &Point, [u8; 32], Signature); 5] = [
        (
            "high-S",
            q,
            digest,
            Signature {
                r: sig.r,
                s: -sig.s,
            },
        ),
        (
            "zero-r",
            q,
            digest,
            Signature {
                r: Scalar::ZERO,
                s: sig.s,
            },
        ),
        (
            "zero-s",
            q,
            digest,
            Signature {
                r: sig.r,
                s: Scalar::ZERO,
            },
        ),
        ("tampered-digest", q, tampered, sig),
        ("wrong-key", wrong_key.public().point(), digest, sig),
    ];
    for (label, key, d, candidate) in &mutations {
        if ecdsa::verify(key, d, candidate) {
            return Err(format!("{label} mutation accepted by cached verify"));
        }
        if verify_uncached(key, d, candidate) {
            return Err(format!("{label} mutation accepted by uncached verify"));
        }
    }

    // Raw drawn bytes through the parser: any verdict is fine, panics are
    // not. A successful parse must re-serialize to the same bytes.
    let mut raw = [0u8; 64];
    src.fill(&mut raw);
    if let Ok(parsed) = Signature::from_bytes(&raw) {
        if parsed.to_bytes() != raw {
            return Err("Signature::from_bytes/to_bytes round trip changed bytes".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_differential_clean_on_fixed_cases() {
        // Empty (all draws zero), short, and a spread of dense cases.
        assert_eq!(diff_crypto_mul(&[]), Ok(()));
        assert_eq!(diff_crypto_mul(&[7]), Ok(()));
        for seed in 0u8..12 {
            let bytes: Vec<u8> = (0..96)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            assert_eq!(diff_crypto_mul(&bytes), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn sign_verify_clean_on_fixed_cases() {
        assert_eq!(fuzz_crypto_sign_verify(&[]), Ok(()));
        for seed in 0u8..6 {
            let bytes: Vec<u8> = (0..128)
                .map(|i| seed.wrapping_mul(17).wrapping_add(i))
                .collect();
            assert_eq!(fuzz_crypto_sign_verify(&bytes), Ok(()), "seed {seed}");
        }
    }
}
