//! A structured span/event tracer on an **injected sim-time clock**, with
//! causal `(trace_id, span_id, parent_id)` identities.
//!
//! Timestamps are plain `u64` microseconds supplied by the caller — the
//! simulation's own clock, never wall time — so a replay of the same
//! scenario at the same seed produces the **byte-identical** JSONL trace
//! (asserted by tests over the chaos harness and the sharded engine).
//!
//! Causality is explicit: each payment mints a root [`TraceContext`] and
//! every nested phase mints a child context from it, so the JSONL renders
//! a reconstructible span tree (see [`crate::critical_path`]). Context
//! ids are minted from a splitmix64 stream seeded by the session seed —
//! no globals, no atomics — which keeps traces identical across worker
//! pool sizes. Contexts serialize to a small checksummed wire form
//! ([`TraceContext::to_wire`]) so the netsim transport can carry them
//! inside frames and attribute retransmissions, dedup drops, and backoff
//! waits to the payment that caused them; corrupt wire bytes decode to
//! `None` and the events degrade to unattributed rather than panicking.
//!
//! The tracer is deliberately single-owner (`&mut self`, no interior
//! locking): each session/shard owns its own [`Tracer`] and the caller
//! merges event vectors in a deterministic order. Field values are
//! integers, booleans, and strings only — no floats — so rendering has
//! exactly one byte representation per event. Event storage is a bounded
//! ring: past [`Tracer::capacity`], the oldest half is discarded and
//! counted in [`Tracer::dropped_events`], so unbounded load runs cannot
//! grow memory without bound.

use std::fmt::Write as _;

/// A trace field value. Deliberately float-free: every variant has one
/// canonical textual form, which is what keeps traces byte-stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Field {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// The causal identity of one span: the payment-level trace it belongs
/// to, its own id, and its parent's span id (`0` for a root).
///
/// The all-zero value ([`TraceContext::UNATTRIBUTED`]) is the explicit
/// "no attribution" context: recording with it produces a context-free
/// event, and deriving a child from it stays unattributed. Ids are never
/// minted as zero, so zero is unambiguous on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Groups every span of one payment; equals the root's span id.
    pub trace_id: u64,
    /// This span's own id, unique within the minting tracer.
    pub span_id: u64,
    /// The parent span's id; `0` marks a root.
    pub parent_id: u64,
}

/// Wire-format version tag for serialized contexts.
const WIRE_VERSION: u8 = 1;

impl TraceContext {
    /// The explicit "no attribution" context.
    pub const UNATTRIBUTED: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
    };

    /// Serialized size of [`TraceContext::to_wire`]: version byte, three
    /// little-endian ids, and a 4-byte FNV-1a checksum.
    pub const WIRE_LEN: usize = 29;

    /// True when this context attributes events to a real trace.
    pub fn is_attributed(&self) -> bool {
        self.trace_id != 0 && self.span_id != 0
    }

    /// Serializes the context for carrying inside transport frames.
    pub fn to_wire(&self) -> [u8; TraceContext::WIRE_LEN] {
        let mut out = [0u8; TraceContext::WIRE_LEN];
        out[0] = WIRE_VERSION;
        out[1..9].copy_from_slice(&self.trace_id.to_le_bytes());
        out[9..17].copy_from_slice(&self.span_id.to_le_bytes());
        out[17..25].copy_from_slice(&self.parent_id.to_le_bytes());
        let sum = fnv1a32(&out[..25]);
        out[25..29].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserializes a wire context. Returns `None` — never panics — on
    /// any corruption: wrong length, unknown version, checksum mismatch,
    /// or a context whose ids mark it unattributed. Callers treat `None`
    /// as "record unattributed".
    pub fn from_wire(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != TraceContext::WIRE_LEN || bytes[0] != WIRE_VERSION {
            return None;
        }
        let sum = u32::from_le_bytes(bytes[25..29].try_into().ok()?);
        if sum != fnv1a32(&bytes[..25]) {
            return None;
        }
        let ctx = TraceContext {
            trace_id: u64::from_le_bytes(bytes[1..9].try_into().ok()?),
            span_id: u64::from_le_bytes(bytes[9..17].try_into().ok()?),
            parent_id: u64::from_le_bytes(bytes[17..25].try_into().ok()?),
        };
        ctx.is_attributed().then_some(ctx)
    }

    /// Derives a child context without a [`Tracer`]: a pure function of
    /// `(self, salt)`, so components that receive a context over the wire
    /// (the transport) can mint per-event child spans deterministically
    /// and independently of any id stream. Distinct salts give distinct
    /// child span ids. Unattributed parents stay unattributed.
    pub fn derive_child(&self, salt: u64) -> TraceContext {
        if !self.is_attributed() {
            return TraceContext::UNATTRIBUTED;
        }
        let mut z = self
            .span_id
            .wrapping_add(salt.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TraceContext {
            trace_id: self.trace_id,
            span_id: if z == 0 { 1 } else { z },
            parent_id: self.span_id,
        }
    }
}

/// FNV-1a over `bytes`, the checksum guarding wire contexts.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// One recorded trace entry: a completed span (has a duration) or a point
/// event (no duration), stamped with sim-time microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim-time at which the span started / the event occurred, µs.
    pub at_micros: u64,
    /// Span duration in sim-time µs; `None` for point events.
    pub dur_micros: Option<u64>,
    /// Span/event name, e.g. `"session.register"`.
    pub name: &'static str,
    /// Causal identity; `None` renders the pre-causal context-free form.
    pub ctx: Option<TraceContext>,
    /// Structured attributes, in recording order.
    pub fields: Vec<(&'static str, Field)>,
}

/// Default event-ring capacity: generous enough that no current
/// experiment (E12/E14/E15 at full trial counts) comes near it.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Records spans and point events for one single-threaded owner.
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// splitmix64 state behind [`Tracer::mint_root`]/[`Tracer::child_of`].
    id_state: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(false)
    }
}

impl Tracer {
    /// A tracer; when `enabled` is false every record call is a no-op and
    /// the event vector stays empty. Context ids mint from seed `0`; use
    /// [`Tracer::with_seed`] when causal ids must replay per session.
    pub fn new(enabled: bool) -> Tracer {
        Tracer::with_seed(enabled, 0)
    }

    /// A tracer whose context-id stream is a pure function of `seed`:
    /// two tracers at the same seed mint identical `(trace, span)` id
    /// sequences, which is what keeps causal traces byte-identical
    /// across replays and worker-pool sizes.
    pub fn with_seed(enabled: bool, seed: u64) -> Tracer {
        Tracer {
            enabled,
            events: Vec::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            dropped: 0,
            id_state: seed,
        }
    }

    /// Bounds the event ring to `capacity` events (clamped to ≥ 2).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(2);
    }

    /// The configured event-ring bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded by the ring bound so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Mints the next nonzero id from the splitmix64 stream.
    fn next_id(&mut self) -> u64 {
        loop {
            self.id_state = self.id_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.id_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z != 0 {
                return z;
            }
        }
    }

    /// Mints a root context (one per payment). On a disabled tracer this
    /// returns [`TraceContext::UNATTRIBUTED`] without touching the id
    /// stream, so toggling tracing never perturbs any other state.
    pub fn mint_root(&mut self) -> TraceContext {
        if !self.enabled {
            return TraceContext::UNATTRIBUTED;
        }
        let id = self.next_id();
        TraceContext {
            trace_id: id,
            span_id: id,
            parent_id: 0,
        }
    }

    /// Mints a child context under `parent`. An unattributed parent (or a
    /// disabled tracer) yields an unattributed child: corruption never
    /// fabricates attribution downstream.
    pub fn child_of(&mut self, parent: &TraceContext) -> TraceContext {
        if !self.enabled || !parent.is_attributed() {
            return TraceContext::UNATTRIBUTED;
        }
        TraceContext {
            trace_id: parent.trace_id,
            span_id: self.next_id(),
            parent_id: parent.span_id,
        }
    }

    /// Appends one event, applying the ring bound: at capacity the oldest
    /// half is discarded in bulk (amortized O(1)) and counted as dropped.
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            let discard = (self.capacity / 2).max(1);
            self.events.drain(..discard);
            self.dropped = self.dropped.saturating_add(discard as u64);
        }
        self.events.push(event);
    }

    /// Records a completed span `[start_micros, end_micros]` of sim-time,
    /// without causal identity. A span that ends before it starts records
    /// a zero duration rather than panicking (chaos schedules can reorder
    /// observations).
    pub fn span(
        &mut self,
        name: &'static str,
        start_micros: u64,
        end_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        self.span_ctx(
            name,
            TraceContext::UNATTRIBUTED,
            start_micros,
            end_micros,
            fields,
        );
    }

    /// Records a completed span attributed to `ctx`. An unattributed
    /// context records the context-free legacy form.
    pub fn span_ctx(
        &mut self,
        name: &'static str,
        ctx: TraceContext,
        start_micros: u64,
        end_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            at_micros: start_micros,
            dur_micros: Some(end_micros.saturating_sub(start_micros)),
            name,
            ctx: ctx.is_attributed().then_some(ctx),
            fields,
        });
    }

    /// Records an instantaneous event at `at_micros` of sim-time, without
    /// causal identity.
    pub fn point(
        &mut self,
        name: &'static str,
        at_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        self.point_ctx(name, TraceContext::UNATTRIBUTED, at_micros, fields);
    }

    /// Records an instantaneous event attributed to `ctx`.
    pub fn point_ctx(
        &mut self,
        name: &'static str,
        ctx: TraceContext,
        at_micros: u64,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            at_micros,
            dur_micros: None,
            name,
            ctx: ctx.is_attributed().then_some(ctx),
            fields,
        });
    }

    /// Appends pre-built events (e.g. drained from the transport fabric),
    /// in order, through the same enabled gate and ring bound.
    pub fn extend(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        if !self.enabled {
            return;
        }
        for event in events {
            self.push(event);
        }
    }

    /// The events recorded so far, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns the recorded events (e.g. to merge per-shard
    /// traces in shard order).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single JSON object with a **stable key order**:
/// `t`, then `span`+`dur_us` or `event`, then (when attributed) the
/// causal triple `trace`/`sid`/`pid`, then each field in recording
/// order. One canonical byte representation per event; context-free
/// events render exactly as they did before causal tracing existed.
pub fn render_event(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"t\":{}", event.at_micros);
    match event.dur_micros {
        Some(dur) => {
            out.push_str(",\"span\":\"");
            escape_into(&mut out, event.name);
            let _ = write!(out, "\",\"dur_us\":{dur}");
        }
        None => {
            out.push_str(",\"event\":\"");
            escape_into(&mut out, event.name);
            out.push('"');
        }
    }
    if let Some(ctx) = &event.ctx {
        let _ = write!(
            out,
            ",\"trace\":{},\"sid\":{},\"pid\":{}",
            ctx.trace_id, ctx.span_id, ctx.parent_id
        );
    }
    for (key, value) in &event.fields {
        out.push_str(",\"");
        escape_into(&mut out, key);
        out.push_str("\":");
        match value {
            Field::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Field::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Field::Str(v) => {
                out.push('"');
                escape_into(&mut out, v);
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

/// Renders an event list as JSONL — one object per line, trailing newline
/// after every line. Equal event lists render to equal bytes.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&render_event(event));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.span("x", 0, 10, vec![]);
        t.point("y", 5, vec![("k", Field::U64(1))]);
        let root = t.mint_root();
        t.span_ctx("z", root, 0, 1, vec![]);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
        assert_eq!(root, TraceContext::UNATTRIBUTED);
    }

    #[test]
    fn spans_and_points_render_with_stable_key_order() {
        let mut t = Tracer::new(true);
        t.span(
            "session.register",
            100,
            350,
            vec![("payment", Field::U64(7)), ("ok", Field::Bool(true))],
        );
        t.point("engine.batch", 400, vec![("size", 8usize.into())]);
        let jsonl = render_jsonl(t.events());
        assert_eq!(
            jsonl,
            "{\"t\":100,\"span\":\"session.register\",\"dur_us\":250,\"payment\":7,\"ok\":true}\n\
             {\"t\":400,\"event\":\"engine.batch\",\"size\":8}\n"
        );
    }

    #[test]
    fn attributed_events_render_the_causal_triple() {
        let mut t = Tracer::with_seed(true, 9);
        let root = t.mint_root();
        let child = t.child_of(&root);
        t.span_ctx(
            "session.payment",
            root,
            10,
            90,
            vec![("payment", 1u64.into())],
        );
        t.point_ctx("session.broadcast", child, 40, vec![]);
        let jsonl = render_jsonl(t.events());
        let expected = format!(
            "{{\"t\":10,\"span\":\"session.payment\",\"dur_us\":80,\"trace\":{tid},\"sid\":{tid},\"pid\":0,\"payment\":1}}\n\
             {{\"t\":40,\"event\":\"session.broadcast\",\"trace\":{tid},\"sid\":{sid},\"pid\":{tid}}}\n",
            tid = root.trace_id,
            sid = child.span_id,
        );
        assert_eq!(jsonl, expected);
    }

    #[test]
    fn id_minting_is_a_pure_function_of_the_seed() {
        let mut a = Tracer::with_seed(true, 0xFEED);
        let mut b = Tracer::with_seed(true, 0xFEED);
        for _ in 0..10 {
            let ra = a.mint_root();
            let rb = b.mint_root();
            assert_eq!(ra, rb);
            assert_eq!(a.child_of(&ra), b.child_of(&rb));
            assert!(ra.is_attributed());
        }
        let mut c = Tracer::with_seed(true, 0xFEED + 1);
        assert_ne!(a.mint_root(), c.mint_root());
    }

    #[test]
    fn child_of_an_unattributed_parent_stays_unattributed() {
        let mut t = Tracer::with_seed(true, 3);
        let child = t.child_of(&TraceContext::UNATTRIBUTED);
        assert_eq!(child, TraceContext::UNATTRIBUTED);
        // Recording with it produces the context-free form.
        t.point_ctx("x", child, 5, vec![]);
        assert!(t.events()[0].ctx.is_none());
    }

    #[test]
    fn wire_round_trip_and_corruption_rejection() {
        let mut t = Tracer::with_seed(true, 77);
        let root = t.mint_root();
        let child = t.child_of(&root);
        let wire = child.to_wire();
        assert_eq!(TraceContext::from_wire(&wire), Some(child));

        // Any single-byte corruption fails the checksum (or the version
        // byte) and degrades to None rather than panicking.
        for i in 0..wire.len() {
            let mut bad = wire;
            bad[i] ^= 0x40;
            assert_eq!(TraceContext::from_wire(&bad), None, "byte {i}");
        }
        assert_eq!(TraceContext::from_wire(&wire[..10]), None);
        assert_eq!(TraceContext::from_wire(&[]), None);
        // A checksum-valid but unattributed context is also rejected.
        assert_eq!(
            TraceContext::from_wire(&TraceContext::UNATTRIBUTED.to_wire()),
            None
        );
    }

    #[test]
    fn ring_bound_drops_oldest_and_counts() {
        let mut t = Tracer::new(true);
        t.set_capacity(8);
        for i in 0..20u64 {
            t.point("tick", i, vec![]);
        }
        assert!(t.events().len() <= 8, "len {}", t.events().len());
        assert!(t.dropped_events() > 0);
        assert_eq!(
            t.dropped_events() + t.events().len() as u64,
            20,
            "every event is either retained or counted dropped"
        );
        // The retained suffix is the most recent events, still in order.
        let times: Vec<u64> = t.events().iter().map(|e| e.at_micros).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*times.last().unwrap(), 19);
    }

    #[test]
    fn extend_merges_prebuilt_events_through_the_ring() {
        let mut t = Tracer::new(true);
        t.set_capacity(4);
        let batch: Vec<TraceEvent> = (0..6u64)
            .map(|i| TraceEvent {
                at_micros: i,
                dur_micros: None,
                name: "transport.retransmit",
                ctx: None,
                fields: vec![],
            })
            .collect();
        t.extend(batch);
        assert!(t.events().len() <= 4);
        assert!(t.dropped_events() > 0);

        let mut off = Tracer::new(false);
        off.extend(vec![TraceEvent {
            at_micros: 0,
            dur_micros: None,
            name: "x",
            ctx: None,
            fields: vec![],
        }]);
        assert!(off.events().is_empty());
    }

    #[test]
    fn rendering_is_deterministic_and_escapes_strings() {
        let mut t = Tracer::new(true);
        t.point(
            "note",
            1,
            vec![("msg", Field::Str("a\"b\\c\nd".to_string()))],
        );
        let once = render_jsonl(t.events());
        let twice = render_jsonl(t.events());
        assert_eq!(once, twice);
        assert_eq!(
            once,
            "{\"t\":1,\"event\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\"}\n"
        );
    }

    #[test]
    fn reversed_span_saturates_to_zero_duration() {
        let mut t = Tracer::new(true);
        t.span("odd", 50, 20, vec![]);
        assert_eq!(t.events()[0].dur_micros, Some(0));
    }

    #[test]
    fn take_drains_for_merging() {
        let mut t = Tracer::new(true);
        t.point("a", 1, vec![]);
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert!(t.events().is_empty());
    }
}
