//! Randomized-linear-combination batch ECDSA verification.
//!
//! A single ECDSA verify checks `R' = u1·G + u2·Q` and compares x-coords,
//! where `u1 = z/s`, `u2 = r/s`. Given the signer-supplied [`RecoveryId`]
//! hint naming the actual nonce point `R` (verification alone cannot
//! distinguish `R` from `−R` — it only sees `r`), a batch of signatures
//! collapses into **one** multi-scalar multiplication:
//!
//! ```text
//! Σ a_i·u1_i·G + Σ a_i·u2_i·Q_i − Σ a_i·R_i  ≟  ∞
//! ```
//!
//! with independent random 128-bit nonzero coefficients `a_i`. Each valid
//! signature contributes exactly `∞` to the sum; an invalid one contributes
//! a coefficient-scaled nonzero point, and the random combination of any
//! nonzero contribution lands on `∞` with probability ≤ ~2⁻¹²⁸ (fix every
//! other term: the equation is linear in `a_i` with a nonzero coefficient,
//! so at most one of the 2¹²⁸−1 choices of `a_i` satisfies it).
//!
//! The `G` coefficients fold into a single scalar, every `Q_i`/`R_i` table
//! shares one Montgomery batch inversion, and all digit streams share one
//! ~129-step doubling run ([`crate::mul_table::msm_with_generator`], which
//! also keeps the 128-bit `a_i` coefficients un-split and serves `G` from
//! its static table) — so per-signature cost is a fraction of a cold
//! sequential verify.
//!
//! **Verdicts are exactly the sequential loop's.** Items without a usable
//! hint (absent, malformed, or an `r` that does not lift to the curve) are
//! verified by the per-signature oracle [`ecdsa::verify`] directly. A
//! failing multi-scalar check bisects, and every bisection *leaf* is
//! decided by the oracle, never probabilistically — a hostile or corrupted
//! hint can cost time (it forces bisection) but can never flip a verdict
//! or misname a culprit.
//!
//! Randomizers come from a caller-seeded splitmix64 stream, **never**
//! ambient entropy, so a replay with the same seed performs byte-identical
//! work; and the stream is private to the batch call, so enabling or
//! disabling batching cannot perturb any other deterministic stream in a
//! session.

use crate::ecdsa::{self, RecoveryId, Signature};
use crate::field::FieldElement;
use crate::mul_table::msm_with_generator;
use crate::point::Point;
use crate::scalar::Scalar;

/// One signature statement submitted for batch verification.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem {
    /// The claimed signer's public-key point.
    pub pubkey: Point,
    /// The 32-byte message digest.
    pub digest: [u8; 32],
    /// The signature to check.
    pub signature: Signature,
    /// The signer's nonce-point hint; `None` routes this item to the
    /// per-signature oracle (correct, just not batched).
    pub recovery: Option<RecoveryId>,
}

/// Work counters for one [`verify_batch`] call. Callers (the payment
/// session, `payjudger`'s evidence verifier) accumulate these into their
/// own telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Signatures submitted.
    pub items: u64,
    /// Items that entered the multi-scalar fast path (usable hint).
    pub hinted: u64,
    /// Per-signature oracle verifications run (fallbacks + bisection
    /// leaves).
    pub oracle_checks: u64,
    /// Multi-scalar evaluations, including bisection-internal ones.
    pub msm_evals: u64,
    /// Failed multi-scalar checks that split into two halves.
    pub bisections: u64,
}

impl BatchStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.items += other.items;
        self.hinted += other.hinted;
        self.oracle_checks += other.oracle_checks;
        self.msm_evals += other.msm_evals;
        self.bisections += other.bisections;
    }
}

/// The result of a [`verify_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Indices (into the input slice) of invalid signatures, ascending —
    /// exactly the items the sequential `ecdsa::verify` loop would reject.
    pub invalid: Vec<usize>,
    /// What the call cost.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// True when every submitted signature verified.
    pub fn all_valid(&self) -> bool {
        self.invalid.is_empty()
    }
}

/// A hinted item with its verification scalars and reconstructed nonce
/// point, ready for the multi-scalar combination.
struct Prepared {
    index: usize,
    pubkey: Point,
    u1: Scalar,
    u2: Scalar,
    r_point: Point,
}

/// The splitmix64 step: the same generator the deterministic session
/// machinery uses, reimplemented here so `crypto` stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a uniform nonzero 128-bit randomizer from the stream.
fn randomizer(state: &mut u64) -> Scalar {
    loop {
        let mut bytes = [0u8; 32];
        bytes[16..24].copy_from_slice(&splitmix64(state).to_be_bytes());
        bytes[24..32].copy_from_slice(&splitmix64(state).to_be_bytes());
        let a = Scalar::from_be_bytes(&bytes).expect("128-bit value is below n");
        if !a.is_zero() {
            return a;
        }
    }
}

/// Montgomery batch inversion over nonzero scalars: prefix products, one
/// Fermat inversion, unwind.
fn batch_invert(values: &[Scalar]) -> Vec<Scalar> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Scalar::ONE;
    for v in values {
        acc = acc * *v;
        prefix.push(acc);
    }
    let mut inv = prefix[prefix.len() - 1].invert();
    let mut out = vec![Scalar::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        let left = if i == 0 { Scalar::ONE } else { prefix[i - 1] };
        out[i] = inv * left;
        inv = inv * values[i];
    }
    out
}

/// Lifts `r` (plus the hint's overflow/parity bits) back to the signer's
/// nonce point. `None` when the hint is unusable — `r + n` does not fit
/// the base field, or `r` is not the x-coordinate of any curve point.
fn lift_nonce_point(sig: &Signature, rec: RecoveryId) -> Option<Point> {
    let x = if rec.x_overflow {
        FieldElement::from_be_bytes(&sig.r.plus_order_bytes()?)?
    } else {
        FieldElement::from_be_bytes(&sig.r.to_be_bytes()).expect("r < n < p")
    };
    let y = (x.square() * x + FieldElement::from_u64(7)).sqrt()?;
    let y = if y.is_odd() == rec.y_odd { y } else { -y };
    Some(Point::from_affine(x, y))
}

/// One randomized multi-scalar check over a set of prepared items: draws a
/// fresh randomizer per item (in slice order — the draw sequence is part
/// of the deterministic replay), folds the `G` coefficients, and tests the
/// combination against `∞`.
fn msm_check(prepared: &[Prepared], rng: &mut u64) -> bool {
    let mut g_coeff = Scalar::ZERO;
    let mut terms = Vec::with_capacity(prepared.len() * 2);
    for p in prepared {
        let a = randomizer(rng);
        g_coeff = g_coeff + a * p.u1;
        terms.push((a * p.u2, p.pubkey));
        // `−a_i·R_i` is carried as `a_i·(−R_i)`: negating the *point* keeps
        // the coefficient at 128 bits, so the MSM runs it as one un-split
        // half-length digit stream instead of GLV-splitting a full-width
        // `n − a_i`.
        terms.push((a, p.r_point.negate()));
    }
    msm_with_generator(&g_coeff, &terms).is_infinity()
}

/// Verifies `prepared` (a contiguous bisection node), appending culprit
/// indices to `invalid`. Internal nodes re-check with fresh randomizers;
/// leaves of size one always fall through to the exact oracle.
fn check_node(
    prepared: &[Prepared],
    items: &[BatchItem],
    rng: &mut u64,
    stats: &mut BatchStats,
    invalid: &mut Vec<usize>,
) {
    match prepared {
        [] => {}
        [only] => {
            stats.oracle_checks += 1;
            let item = &items[only.index];
            if !ecdsa::verify(&item.pubkey, &item.digest, &item.signature) {
                invalid.push(only.index);
            }
        }
        _ => {
            stats.msm_evals += 1;
            if msm_check(prepared, rng) {
                return;
            }
            stats.bisections += 1;
            let mid = prepared.len() / 2;
            check_node(&prepared[..mid], items, rng, stats, invalid);
            check_node(&prepared[mid..], items, rng, stats, invalid);
        }
    }
}

/// Batch-verifies `items`, returning exactly the verdicts (and culprit
/// set) of running [`ecdsa::verify`] on each item in order. `seed` drives
/// the private splitmix64 randomizer stream: same seed and items → the
/// same randomizers, evaluations, and outcome.
pub fn verify_batch(items: &[BatchItem], seed: u64) -> BatchOutcome {
    let mut stats = BatchStats {
        items: items.len() as u64,
        ..BatchStats::default()
    };
    let mut invalid = Vec::new();
    let mut rng = seed;

    let mut prepared = Vec::with_capacity(items.len());
    let mut s_values = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        // Only items that pass the cheap prechecks *and* carry a usable
        // hint enter the fast path; everything else goes straight to the
        // oracle, which reproduces the sequential loop's verdict (and its
        // cheap-rejection behavior) bit for bit.
        let fast = ecdsa::precheck(&item.pubkey, &item.signature)
            .then_some(item.recovery)
            .flatten()
            .and_then(|rec| lift_nonce_point(&item.signature, rec));
        match fast {
            Some(r_point) => {
                prepared.push(Prepared {
                    index,
                    pubkey: item.pubkey,
                    u1: Scalar::ZERO, // filled after batch inversion
                    u2: Scalar::ZERO,
                    r_point,
                });
                s_values.push(item.signature.s);
            }
            None => {
                stats.oracle_checks += 1;
                if !ecdsa::verify(&item.pubkey, &item.digest, &item.signature) {
                    invalid.push(index);
                }
            }
        }
    }
    stats.hinted = prepared.len() as u64;

    let s_inverses = batch_invert(&s_values);
    for (p, s_inv) in prepared.iter_mut().zip(&s_inverses) {
        let item = &items[p.index];
        let z = Scalar::from_be_bytes_reduced(&item.digest);
        p.u1 = z * *s_inv;
        p.u2 = item.signature.r * *s_inv;
    }

    check_node(&prepared, items, &mut rng, &mut stats, &mut invalid);
    invalid.sort_unstable();
    BatchOutcome { invalid, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::sign_recoverable;
    use crate::sha256::sha256;

    /// A signed batch item for key seed `v` over message `msg`.
    fn item(v: u64, msg: &[u8]) -> BatchItem {
        let d = Scalar::from_u64(v * 7907 + 11);
        let digest = sha256(msg);
        let (signature, recovery) = sign_recoverable(&d, &digest).unwrap();
        BatchItem {
            pubkey: Point::generator().mul(&d),
            digest,
            signature,
            recovery: Some(recovery),
        }
    }

    fn oracle_invalid(items: &[BatchItem]) -> Vec<usize> {
        items
            .iter()
            .enumerate()
            .filter(|(_, it)| !ecdsa::verify(&it.pubkey, &it.digest, &it.signature))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn all_valid_batch_is_one_msm_and_no_oracle() {
        let items: Vec<BatchItem> = (1..17).map(|v| item(v, b"pay")).collect();
        let outcome = verify_batch(&items, 7);
        assert!(outcome.all_valid());
        assert_eq!(outcome.stats.items, 16);
        assert_eq!(outcome.stats.hinted, 16);
        assert_eq!(outcome.stats.msm_evals, 1);
        assert_eq!(outcome.stats.bisections, 0);
        assert_eq!(outcome.stats.oracle_checks, 0);
    }

    #[test]
    fn culprits_are_named_exactly() {
        let mut items: Vec<BatchItem> = (1..13).map(|v| item(v, b"pay")).collect();
        // Corrupt three items three different ways.
        items[2].digest = sha256(b"tampered");
        items[5].signature.s = -items[5].signature.s; // high-S precheck reject
        items[9].pubkey = Point::generator().mul(&Scalar::from_u64(31337));
        let outcome = verify_batch(&items, 42);
        assert_eq!(outcome.invalid, vec![2, 5, 9]);
        assert_eq!(outcome.invalid, oracle_invalid(&items));
        assert!(outcome.stats.bisections > 0);
    }

    #[test]
    fn hostile_hints_cost_time_but_never_verdicts() {
        let mut items: Vec<BatchItem> = (1..9).map(|v| item(v, b"pay")).collect();
        // Flip a parity hint on a valid signature, drop one hint entirely,
        // and corrupt one signature while keeping its (now stale) hint.
        items[1].recovery = items[1].recovery.map(|r| RecoveryId {
            y_odd: !r.y_odd,
            x_overflow: r.x_overflow,
        });
        items[3].recovery = None;
        items[6].digest = sha256(b"stale hint");
        let outcome = verify_batch(&items, 3);
        assert_eq!(outcome.invalid, vec![6]);
        assert_eq!(outcome.invalid, oracle_invalid(&items));
        // The unhinted item went to the oracle; the flipped hint forced
        // bisection down to oracle leaves.
        assert!(outcome.stats.oracle_checks >= 2);
    }

    #[test]
    fn same_seed_replays_identical_work() {
        let mut items: Vec<BatchItem> = (1..11).map(|v| item(v, b"pay")).collect();
        items[4].digest = sha256(b"bad");
        let a = verify_batch(&items, 99);
        let b = verify_batch(&items, 99);
        assert_eq!(a.invalid, b.invalid);
        assert_eq!(a.stats, b.stats);
        // A different seed may change the work profile, never the verdict.
        let c = verify_batch(&items, 100);
        assert_eq!(a.invalid, c.invalid);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let outcome = verify_batch(&[], 1);
        assert!(outcome.all_valid());
        assert_eq!(outcome.stats.msm_evals, 0);
        // A singleton batch is decided by the oracle directly: the
        // multi-scalar machinery only pays off past one item.
        let one = [item(5, b"solo")];
        let outcome = verify_batch(&one, 1);
        assert!(outcome.all_valid());
        assert_eq!(outcome.stats.oracle_checks, 1);
        assert_eq!(outcome.stats.msm_evals, 0);
    }

    #[test]
    fn x_overflow_hint_with_ordinary_r_goes_to_oracle_unharmed() {
        // A hostile overflow bit on an ordinary r: the lift lands on a
        // different x (r + n) or fails; either way the bisection/oracle
        // path must still return the sequential verdict.
        let mut it = item(8, b"pay");
        it.recovery = it.recovery.map(|r| RecoveryId {
            y_odd: r.y_odd,
            x_overflow: true,
        });
        let items = [it, item(9, b"pay")];
        let outcome = verify_batch(&items, 5);
        assert_eq!(outcome.invalid, oracle_invalid(&items));
        assert!(outcome.all_valid());
    }
}
