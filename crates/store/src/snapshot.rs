//! Single-slot state checkpoints.
//!
//! A snapshot is an encoded state blob plus the WAL sequence number it
//! covers: recovery loads the snapshot, then replays only WAL records
//! with `seq >= wal_seq`. One slot is enough — a newer checkpoint always
//! supersedes an older one — so `save` is truncate-then-append on its own
//! medium (kept separate from the WAL medium, so a crash mid-save can
//! never damage the log).
//!
//! # Slot format
//!
//! ```text
//! magic: "BFSN" | len: u32 LE | crc: u32 LE | wal_seq: u64 LE | state: [u8; len]
//! ```
//!
//! `crc` is CRC-32 over `wal_seq_le || state`. A slot that fails any
//! check loads as *absent* on the lenient path — recovery then falls back
//! to a full WAL replay, which is always sufficient — or as a typed
//! [`StoreError::Corrupt`] on the strict path.

use crate::storage::Storage;
use crate::wal::Corruption;
use crate::{crc32, StoreError};

/// Slot magic: identifies the medium as a btcfast snapshot slot.
pub const MAGIC: [u8; 4] = *b"BFSN";

/// Hard cap on an encoded state blob; larger length prefixes are
/// corruption, not allocation requests.
pub const MAX_STATE: usize = 16 << 20;

/// Fixed bytes ahead of the state blob: magic + len + crc + wal_seq.
pub const HEADER_BYTES: usize = 20;

/// A decoded checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// First WAL sequence number *not* covered by this snapshot: replay
    /// resumes from records with `seq >= wal_seq`.
    pub wal_seq: u64,
    /// The encoded state blob.
    pub state: Vec<u8>,
}

/// The single-slot checkpoint store. See the module docs for the format
/// and the corrupt-slot fallback contract.
#[derive(Debug)]
pub struct SnapshotStore<S: Storage> {
    storage: S,
}

fn decode(bytes: &[u8]) -> Result<Option<Snapshot>, Corruption> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.len() < HEADER_BYTES || bytes[0..4] != MAGIC {
        return Err(Corruption::TornTail { offset: 0 });
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice")) as usize;
    if len > MAX_STATE {
        return Err(Corruption::LengthOverCap {
            offset: 4,
            len: len as u64,
        });
    }
    if bytes.len() != HEADER_BYTES + len {
        return Err(Corruption::TornTail {
            offset: bytes.len().min(HEADER_BYTES + len) as u64,
        });
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("sized slice"));
    let body = &bytes[12..];
    if crc32(body) != crc {
        return Err(Corruption::BadChecksum { offset: 0 });
    }
    Ok(Some(Snapshot {
        wal_seq: u64::from_le_bytes(body[0..8].try_into().expect("sized slice")),
        state: body[8..].to_vec(),
    }))
}

impl<S: Storage> SnapshotStore<S> {
    /// Wraps `storage` as a snapshot slot. No validation happens until
    /// [`SnapshotStore::load`].
    pub fn new(storage: S) -> SnapshotStore<S> {
        SnapshotStore { storage }
    }

    /// Replaces the slot with a checkpoint of `state` covering every WAL
    /// record below `wal_seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::RecordTooLarge`] over [`MAX_STATE`];
    /// [`StoreError::Io`] when the medium rejects the write.
    pub fn save(&mut self, wal_seq: u64, state: &[u8]) -> Result<(), StoreError> {
        if state.len() > MAX_STATE {
            return Err(StoreError::RecordTooLarge {
                len: state.len(),
                max: MAX_STATE,
            });
        }
        let mut slot = Vec::with_capacity(HEADER_BYTES + state.len());
        slot.extend_from_slice(&MAGIC);
        slot.extend_from_slice(&(state.len() as u32).to_le_bytes());
        let mut body = Vec::with_capacity(8 + state.len());
        body.extend_from_slice(&wal_seq.to_le_bytes());
        body.extend_from_slice(state);
        slot.extend_from_slice(&crc32(&body).to_le_bytes());
        slot.extend_from_slice(&body);
        self.storage.truncate(0)?;
        self.storage.append(&slot)
    }

    /// Loads the checkpoint, treating a damaged slot as *absent* so the
    /// caller falls back to full WAL replay.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only — corruption is the `Ok(None)` fallback on
    /// this path.
    pub fn load(&self) -> Result<Option<Snapshot>, StoreError> {
        Ok(decode(&self.storage.read_all()?).unwrap_or(None))
    }

    /// Loads the checkpoint, surfacing a damaged slot as a typed error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a damaged slot; [`StoreError::Io`]
    /// when the medium cannot be read.
    pub fn load_strict(&self) -> Result<Option<Snapshot>, StoreError> {
        decode(&self.storage.read_all()?).map_err(StoreError::Corrupt)
    }

    /// The underlying medium (inspection, digests).
    pub fn storage(&self) -> &S {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn empty_slot_loads_as_absent() {
        let store = SnapshotStore::new(MemStorage::new());
        assert_eq!(store.load().unwrap(), None);
        assert_eq!(store.load_strict().unwrap(), None);
    }

    #[test]
    fn save_then_load_round_trips_and_supersedes() {
        let mut store = SnapshotStore::new(MemStorage::new());
        store.save(7, b"state-v1").unwrap();
        store.save(42, b"state-v2-longer").unwrap();
        let snap = store.load().unwrap().unwrap();
        assert_eq!(snap.wal_seq, 42);
        assert_eq!(snap.state, b"state-v2-longer");
    }

    #[test]
    fn corrupt_slot_is_absent_leniently_and_typed_strictly() {
        let medium = MemStorage::new();
        let mut store = SnapshotStore::new(medium.clone());
        store.save(3, b"precious").unwrap();
        let mut bytes = medium.bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        medium.replace(bytes);

        assert_eq!(store.load().unwrap(), None);
        assert!(matches!(
            store.load_strict(),
            Err(StoreError::Corrupt(Corruption::BadChecksum { .. }))
        ));
    }

    #[test]
    fn torn_save_is_absent_not_a_panic() {
        let medium = MemStorage::new();
        let mut store = SnapshotStore::new(medium.clone());
        store.save(9, b"half-written").unwrap();
        let mut bytes = medium.bytes();
        bytes.truncate(bytes.len() - 5);
        medium.replace(bytes);
        assert_eq!(store.load().unwrap(), None);
        assert!(matches!(
            store.load_strict(),
            Err(StoreError::Corrupt(Corruption::TornTail { .. }))
        ));
    }

    #[test]
    fn hostile_length_prefix_is_corruption() {
        let medium = MemStorage::new();
        let mut slot = MAGIC.to_vec();
        slot.extend_from_slice(&u32::MAX.to_le_bytes());
        slot.extend_from_slice(&[0u8; 12]);
        medium.replace(slot);
        let store = SnapshotStore::new(medium);
        assert_eq!(store.load().unwrap(), None);
        assert!(matches!(
            store.load_strict(),
            Err(StoreError::Corrupt(Corruption::LengthOverCap { .. }))
        ));
    }

    #[test]
    fn oversized_state_is_a_typed_error() {
        let mut store = SnapshotStore::new(MemStorage::new());
        let huge = vec![0u8; MAX_STATE + 1];
        assert!(matches!(
            store.save(0, &huge),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }
}
