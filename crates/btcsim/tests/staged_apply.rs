//! Property: staged-overlay block application is atomic and exactly
//! reversible.
//!
//! Blocks are generated from a model so they may chain transactions
//! *within* the block (an output created by tx `i` spent by tx `j > i`) —
//! precisely what the in-block overlay must resolve without mutating the
//! live set. Two properties:
//!
//! * apply + undo is the identity — [`UtxoSet`] equality covers the coin
//!   map *and* the per-address index, so a stale index entry fails the
//!   round-trip too; re-applying after the undo reproduces the identical
//!   post-state;
//! * a block that fails validation partway through (double-spend, stripped
//!   witness, inflated output, greedy coinbase — injected *after* valid
//!   prefix transactions) leaves the set byte-identical to its pre-state:
//!   no partial application, ever.

use btcfast_btcsim::amount::Amount;
use btcfast_btcsim::block::{Block, BlockHeader};
use btcfast_btcsim::pow::CompactBits;
use btcfast_btcsim::script::ScriptPubKey;
use btcfast_btcsim::transaction::{OutPoint, Transaction, TxIn, TxOut};
use btcfast_btcsim::utxo::UtxoSet;
use btcfast_crypto::{Hash256, KeyPair};
use proptest::prelude::*;

const KEYS: usize = 4;
const FUND_VALUE: u64 = 50_000_000;

fn keys() -> Vec<KeyPair> {
    (0..KEYS as u8)
        .map(|i| KeyPair::from_seed(&[i + 1; 16]))
        .collect()
}

fn header_for(transactions: &[Transaction]) -> BlockHeader {
    BlockHeader {
        version: 1,
        prev_hash: Hash256::ZERO,
        merkle_root: Block::compute_merkle_root(transactions),
        time: 0,
        bits: CompactBits(0x207fffff),
        nonce: 0,
    }
}

/// A funded set: one coinbase output per key, matured (maturity 0).
fn funded_set(keys: &[KeyPair]) -> (UtxoSet, Vec<(OutPoint, u64, usize)>) {
    let mut set = UtxoSet::new(0);
    let mut coinbase = Transaction::coinbase(
        0,
        Amount::from_sats(FUND_VALUE).unwrap(),
        keys[0].address(),
        b"fund",
    );
    for key in &keys[1..] {
        coinbase.outputs.push(TxOut::payment(
            Amount::from_sats(FUND_VALUE).unwrap(),
            key.address(),
        ));
    }
    let subsidy = Amount::from_sats(FUND_VALUE * keys.len() as u64).unwrap();
    let block = Block {
        header: header_for(std::slice::from_ref(&coinbase)),
        transactions: vec![coinbase.clone()],
    };
    set.apply_block(&block, 0, subsidy)
        .expect("funding applies");
    let txid = coinbase.txid();
    let coins = (0..keys.len())
        .map(|vout| {
            (
                OutPoint {
                    txid,
                    vout: vout as u32,
                },
                FUND_VALUE,
                vout,
            )
        })
        .collect();
    (set, coins)
}

/// One model step: which available coin to spend, who receives, whether to
/// split the value across two outputs, and the fee to leave the miner.
type Plan = Vec<(u8, u8, bool, u16)>;

fn plan_strategy() -> impl Strategy<Value = Plan> {
    proptest::collection::vec(
        (any::<u8>(), any::<u8>(), any::<bool>(), 0u16..2_000),
        1..10,
    )
}

/// Builds a valid spend block from the plan. Later transactions may spend
/// outputs created earlier in the same block, exercising the overlay.
/// Returns the block plus the total fees it pays.
fn build_block(plan: &Plan, keys: &[KeyPair], coins: &[(OutPoint, u64, usize)]) -> (Block, u64) {
    // (outpoint, value, owner key index) — grows as the block creates
    // outputs, shrinks as it spends them.
    let mut available: Vec<(OutPoint, u64, usize)> = coins.to_vec();
    let mut transactions = Vec::new();
    let mut total_fees = 0u64;

    for &(selector, recipient, split, fee) in plan {
        let index = selector as usize % available.len();
        let (outpoint, value, owner) = available.remove(index);
        // Keep every output ≥ 1 sat so the transaction stays valid.
        let fee = u64::from(fee).min(value.saturating_sub(2));
        let spendable = value - fee;
        let to = recipient as usize % keys.len();

        let mut outputs = Vec::new();
        if split && spendable >= 2 {
            let half = spendable / 2;
            outputs.push(TxOut::payment(
                Amount::from_sats(half).unwrap(),
                keys[to].address(),
            ));
            outputs.push(TxOut::payment(
                Amount::from_sats(spendable - half).unwrap(),
                keys[owner].address(),
            ));
        } else {
            outputs.push(TxOut::payment(
                Amount::from_sats(spendable).unwrap(),
                keys[to].address(),
            ));
        }

        let mut tx = Transaction::new(vec![TxIn::spend(outpoint)], outputs);
        tx.sign_input(0, &keys[owner], &ScriptPubKey::P2pkh(keys[owner].address()))
            .expect("signable");

        // The new outputs are spendable by *later* transactions in this
        // same block.
        let txid = tx.txid();
        for (vout, output) in tx.outputs.iter().enumerate() {
            let owner = keys
                .iter()
                .position(|k| ScriptPubKey::P2pkh(k.address()) == output.script_pubkey)
                .expect("outputs pay model keys");
            available.push((
                OutPoint {
                    txid,
                    vout: vout as u32,
                },
                output.value.to_sats(),
                owner,
            ));
        }
        total_fees += fee;
        transactions.push(tx);
    }

    // Coinbase claims exactly subsidy + fees.
    let coinbase = Transaction::coinbase(
        1,
        Amount::from_sats(FUND_VALUE + total_fees).unwrap(),
        keys[0].address(),
        b"spend",
    );
    transactions.insert(0, coinbase);
    let block = Block {
        header: header_for(&transactions),
        transactions,
    };
    (block, total_fees)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// apply + undo restores the exact pre-block set (coins *and* address
    /// index), and re-applying reproduces the identical post-state.
    #[test]
    fn apply_then_undo_is_identity(plan in plan_strategy()) {
        let keys = keys();
        let (mut set, coins) = funded_set(&keys);
        let (block, _) = build_block(&plan, &keys, &coins);
        let subsidy = Amount::from_sats(FUND_VALUE).unwrap();

        let pre = set.clone();
        let undo = set.apply_block(&block, 1, subsidy).expect("valid block");
        let post = set.clone();
        prop_assert_ne!(&post, &pre, "a spend block must change the set");

        set.undo_block(&undo);
        prop_assert_eq!(&set, &pre, "undo must restore the exact pre-state");

        set.apply_block(&block, 1, subsidy).expect("still valid");
        prop_assert_eq!(&set, &post, "re-apply must be deterministic");
    }

    /// A block that fails validation at any point — even after several
    /// valid transactions — leaves the set completely untouched.
    #[test]
    fn failed_block_leaves_set_untouched(
        plan in plan_strategy(),
        mode in 0u8..4,
    ) {
        let keys = keys();
        let (mut set, coins) = funded_set(&keys);
        let (mut block, _) = build_block(&plan, &keys, &coins);
        let subsidy = Amount::from_sats(FUND_VALUE).unwrap();

        match mode {
            // Double-spend: a final tx re-spends the first spend's input.
            0 => {
                let victim = block.transactions[1].inputs[0].previous_output;
                let owner = coins
                    .iter()
                    .find(|(outpoint, _, _)| *outpoint == victim)
                    .map(|(_, _, owner)| *owner)
                    .unwrap_or(0);
                let mut dup = Transaction::new(
                    vec![TxIn::spend(victim)],
                    vec![TxOut::payment(
                        Amount::from_sats(1).unwrap(),
                        keys[owner].address(),
                    )],
                );
                dup.sign_input(0, &keys[owner], &ScriptPubKey::P2pkh(keys[owner].address()))
                    .expect("signable");
                block.transactions.push(dup);
            }
            // Stripped witness on the last spend: script check fails.
            1 => {
                let last = block.transactions.len() - 1;
                block.transactions[last].inputs[0].witness = None;
            }
            // Inflated output: more value out than in (and a broken
            // signature, since the sighash covers outputs) — either way,
            // invalid.
            2 => {
                let last = block.transactions.len() - 1;
                let bloated = Amount::from_sats(FUND_VALUE * 10).unwrap();
                block.transactions[last].outputs[0].value = bloated;
            }
            // Greedy coinbase: claims one sat more than subsidy + fees.
            _ => {
                let claimed = block.transactions[0].outputs[0].value;
                block.transactions[0].outputs[0].value =
                    claimed.checked_add(Amount::from_sats(1).unwrap()).unwrap();
            }
        }

        let pre = set.clone();
        let result = set.apply_block(&block, 1, subsidy);
        prop_assert!(result.is_err(), "tampered block must be rejected");
        prop_assert_eq!(&set, &pre, "failed apply must not touch the set");
    }
}
