//! The world state: accounts and contract storage.

use crate::account::{Account, AccountId};
use btcfast_crypto::sha256::Sha256;
use btcfast_crypto::Hash256;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Balance movement failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// Debit larger than the account balance.
    InsufficientBalance {
        /// The account debited.
        account: AccountId,
        /// Balance available.
        available: u128,
        /// Amount requested.
        requested: u128,
    },
    /// Credit that would push the account balance past `u128::MAX`.
    BalanceOverflow {
        /// The account credited.
        account: AccountId,
        /// Balance before the credit.
        balance: u128,
        /// Amount that did not fit.
        amount: u128,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance {
                account,
                available,
                requested,
            } => write!(
                f,
                "insufficient balance on {account}: have {available}, need {requested}"
            ),
            StateError::BalanceOverflow {
                account,
                balance,
                amount,
            } => write!(
                f,
                "balance overflow on {account}: {balance} + {amount} exceeds u128"
            ),
        }
    }
}

impl Error for StateError {}

/// The pre-image of one touched entry, recorded while a transaction is
/// open so [`WorldState::rollback`] can restore it.
#[derive(Clone, Debug)]
enum JournalEntry {
    Account {
        id: AccountId,
        prev: Option<Account>,
    },
    Storage {
        contract: AccountId,
        key: Vec<u8>,
        prev: Option<Vec<u8>>,
    },
}

/// A position in the write journal returned by
/// [`WorldState::begin_transaction`]. Consume it with
/// [`WorldState::commit`] or [`WorldState::rollback`].
#[derive(Debug)]
#[must_use = "a checkpoint must be committed or rolled back"]
pub struct Checkpoint(usize);

/// Accounts plus per-contract key/value storage.
///
/// `BTreeMap`s keep iteration deterministic, which makes the state
/// commitment reproducible across runs.
///
/// Between [`begin_transaction`](WorldState::begin_transaction) and
/// [`commit`](WorldState::commit)/[`rollback`](WorldState::rollback) every
/// mutation records the pre-image of the entry it touches, so reverting a
/// transaction costs O(touched keys) rather than O(state size) — no
/// whole-state snapshot clone is ever taken.
#[derive(Clone, Debug, Default)]
pub struct WorldState {
    accounts: BTreeMap<AccountId, Account>,
    storage: BTreeMap<(AccountId, Vec<u8>), Vec<u8>>,
    /// Pre-images of entries touched since the outermost open checkpoint.
    journal: Vec<JournalEntry>,
    /// True while a transaction is open; mutations outside one skip the
    /// journal entirely, so steady-state writes stay allocation-free.
    recording: bool,
    /// Deepest the journal has ever grown (observability: the checkpoint
    /// depth metric). Like the journal itself, excluded from equality.
    journal_high_water: usize,
}

impl PartialEq for WorldState {
    fn eq(&self, other: &WorldState) -> bool {
        // The journal is transient bookkeeping, not state: two states with
        // identical content are equal regardless of open transactions.
        self.accounts == other.accounts && self.storage == other.storage
    }
}

impl Eq for WorldState {}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> WorldState {
        WorldState::default()
    }

    /// Read-only account lookup.
    pub fn account(&self, id: &AccountId) -> Option<&Account> {
        self.accounts.get(id)
    }

    /// Journals a pre-image, tracking the high-water depth.
    fn record(&mut self, entry: JournalEntry) {
        self.journal.push(entry);
        self.journal_high_water = self.journal_high_water.max(self.journal.len());
    }

    /// Mutable account access, creating a default record on first touch.
    pub fn account_mut(&mut self, id: AccountId) -> &mut Account {
        if self.recording {
            let prev = self.accounts.get(&id).cloned();
            self.record(JournalEntry::Account { id, prev });
        }
        self.accounts.entry(id).or_default()
    }

    /// Balance of an account (0 when absent).
    pub fn balance(&self, id: &AccountId) -> u128 {
        self.accounts.get(id).map(|a| a.balance).unwrap_or(0)
    }

    /// Nonce of an account (0 when absent).
    pub fn nonce(&self, id: &AccountId) -> u64 {
        self.accounts.get(id).map(|a| a.nonce).unwrap_or(0)
    }

    /// Credits an account.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BalanceOverflow`] if the balance would
    /// exceed `u128::MAX`; the state is unchanged in that case. Fuzzed
    /// faucet/transfer schedules reach this path, so it must be a typed
    /// error rather than a panic.
    pub fn credit(&mut self, id: AccountId, amount: u128) -> Result<(), StateError> {
        let balance = self.balance(&id);
        let new_balance = balance
            .checked_add(amount)
            .ok_or(StateError::BalanceOverflow {
                account: id,
                balance,
                amount,
            })?;
        self.account_mut(id).balance = new_balance;
        Ok(())
    }

    /// Debits an account.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] if the balance is short.
    pub fn debit(&mut self, id: AccountId, amount: u128) -> Result<(), StateError> {
        let balance = self.balance(&id);
        if balance < amount {
            return Err(StateError::InsufficientBalance {
                account: id,
                available: balance,
                requested: amount,
            });
        }
        self.account_mut(id).balance = balance - amount;
        Ok(())
    }

    /// Moves value between accounts atomically.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] if `from` is short and
    /// [`StateError::BalanceOverflow`] if `to` cannot absorb the amount;
    /// no state changes in either case.
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: u128,
    ) -> Result<(), StateError> {
        self.debit(from, amount)?;
        if let Err(e) = self.credit(to, amount) {
            self.credit(from, amount)
                .expect("restoring a just-debited balance cannot overflow");
            return Err(e);
        }
        Ok(())
    }

    /// Reads a contract storage slot.
    pub fn storage_get(&self, contract: &AccountId, key: &[u8]) -> Option<&Vec<u8>> {
        self.storage.get(&(*contract, key.to_vec()))
    }

    /// Writes a contract storage slot, returning the previous value.
    pub fn storage_set(
        &mut self,
        contract: AccountId,
        key: Vec<u8>,
        value: Vec<u8>,
    ) -> Option<Vec<u8>> {
        if self.recording {
            let prev = self.storage.insert((contract, key.clone()), value);
            self.record(JournalEntry::Storage {
                contract,
                key,
                prev: prev.clone(),
            });
            prev
        } else {
            self.storage.insert((contract, key), value)
        }
    }

    /// Deletes a contract storage slot, returning the previous value.
    pub fn storage_remove(&mut self, contract: &AccountId, key: &[u8]) -> Option<Vec<u8>> {
        let prev = self.storage.remove(&(*contract, key.to_vec()));
        if self.recording {
            self.record(JournalEntry::Storage {
                contract: *contract,
                key: key.to_vec(),
                prev: prev.clone(),
            });
        }
        prev
    }

    /// Number of live storage slots (diagnostics).
    pub fn storage_len(&self) -> usize {
        self.storage.len()
    }

    /// Opens a transaction: mutations from here on record pre-images so
    /// they can be undone. Checkpoints nest — an inner rollback undoes
    /// only the entries made after it.
    pub fn begin_transaction(&mut self) -> Checkpoint {
        self.recording = true;
        Checkpoint(self.journal.len())
    }

    /// Commits the changes made since `checkpoint`.
    ///
    /// Committing a *nested* checkpoint keeps its journal entries: they
    /// still belong to the enclosing transaction's undo set. Committing
    /// the outermost checkpoint clears the journal and stops recording.
    pub fn commit(&mut self, checkpoint: Checkpoint) {
        if checkpoint.0 == 0 {
            self.journal.clear();
            self.recording = false;
        }
    }

    /// Undoes every mutation made since `checkpoint` by replaying the
    /// recorded pre-images newest-first.
    pub fn rollback(&mut self, checkpoint: Checkpoint) {
        while self.journal.len() > checkpoint.0 {
            match self.journal.pop().expect("length checked above") {
                JournalEntry::Account { id, prev } => match prev {
                    Some(account) => {
                        self.accounts.insert(id, account);
                    }
                    None => {
                        self.accounts.remove(&id);
                    }
                },
                JournalEntry::Storage {
                    contract,
                    key,
                    prev,
                } => match prev {
                    Some(value) => {
                        self.storage.insert((contract, key), value);
                    }
                    None => {
                        self.storage.remove(&(contract, key));
                    }
                },
            }
        }
        if checkpoint.0 == 0 {
            self.recording = false;
        }
    }

    /// Number of journal entries currently recorded (diagnostics).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The deepest the pre-image journal has ever grown — a proxy for the
    /// largest transaction (touched-entry count) this state has executed.
    pub fn journal_high_water(&self) -> usize {
        self.journal_high_water
    }

    /// A deterministic commitment over the full state (hash of the sorted
    /// account and storage entries) — stands in for a Merkle-Patricia root.
    pub fn commitment(&self) -> Hash256 {
        let mut hasher = Sha256::new();
        for (id, account) in &self.accounts {
            hasher.update(&id.0);
            hasher.update(&account.balance.to_le_bytes());
            hasher.update(&account.nonce.to_le_bytes());
            if let Some(code_id) = &account.code_id {
                hasher.update(code_id.as_bytes());
            }
            hasher.update(&[0xFE]); // account-record separator
        }
        for ((contract, key), value) in &self.storage {
            hasher.update(&contract.0);
            hasher.update(&(key.len() as u64).to_le_bytes());
            hasher.update(key);
            hasher.update(&(value.len() as u64).to_le_bytes());
            hasher.update(value);
        }
        Hash256(hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(tag: u8) -> AccountId {
        AccountId([tag; 20])
    }

    #[test]
    fn credit_debit() {
        let mut state = WorldState::new();
        state.credit(id(1), 100).unwrap();
        assert_eq!(state.balance(&id(1)), 100);
        state.debit(id(1), 40).unwrap();
        assert_eq!(state.balance(&id(1)), 60);
    }

    #[test]
    fn overdraft_rejected() {
        let mut state = WorldState::new();
        state.credit(id(1), 10).unwrap();
        let err = state.debit(id(1), 11).unwrap_err();
        assert!(matches!(err, StateError::InsufficientBalance { .. }));
        assert_eq!(state.balance(&id(1)), 10);
    }

    #[test]
    fn credit_overflow_is_typed_not_a_panic() {
        // Found by the audit fuzzer: two faucet mints summing past
        // u128::MAX used to abort on checked_add().expect().
        let mut state = WorldState::new();
        state.credit(id(1), u128::MAX).unwrap();
        let err = state.credit(id(1), 1).unwrap_err();
        assert!(matches!(err, StateError::BalanceOverflow { .. }));
        // The failed credit left the balance untouched.
        assert_eq!(state.balance(&id(1)), u128::MAX);
    }

    #[test]
    fn transfer_overflow_unwinds_the_debit() {
        let mut state = WorldState::new();
        state.credit(id(1), 100).unwrap();
        state.credit(id(2), u128::MAX).unwrap();
        let err = state.transfer(id(1), id(2), 50).unwrap_err();
        assert!(matches!(err, StateError::BalanceOverflow { .. }));
        // Atomic: the debit from the sender was rolled back.
        assert_eq!(state.balance(&id(1)), 100);
        assert_eq!(state.balance(&id(2)), u128::MAX);
    }

    #[test]
    fn transfer_atomicity() {
        let mut state = WorldState::new();
        state.credit(id(1), 50).unwrap();
        state.transfer(id(1), id(2), 20).unwrap();
        assert_eq!(state.balance(&id(1)), 30);
        assert_eq!(state.balance(&id(2)), 20);
        assert!(state.transfer(id(1), id(2), 100).is_err());
        assert_eq!(state.balance(&id(1)), 30);
        assert_eq!(state.balance(&id(2)), 20);
    }

    #[test]
    fn storage_round_trip() {
        let mut state = WorldState::new();
        assert!(state.storage_get(&id(3), b"k").is_none());
        assert!(state
            .storage_set(id(3), b"k".to_vec(), b"v1".to_vec())
            .is_none());
        assert_eq!(state.storage_get(&id(3), b"k").unwrap(), b"v1");
        assert_eq!(
            state.storage_set(id(3), b"k".to_vec(), b"v2".to_vec()),
            Some(b"v1".to_vec())
        );
        assert_eq!(state.storage_remove(&id(3), b"k"), Some(b"v2".to_vec()));
        assert!(state.storage_get(&id(3), b"k").is_none());
    }

    #[test]
    fn storage_isolated_per_contract() {
        let mut state = WorldState::new();
        state.storage_set(id(1), b"k".to_vec(), b"a".to_vec());
        state.storage_set(id(2), b"k".to_vec(), b"b".to_vec());
        assert_eq!(state.storage_get(&id(1), b"k").unwrap(), b"a");
        assert_eq!(state.storage_get(&id(2), b"k").unwrap(), b"b");
    }

    #[test]
    fn commitment_changes_with_state() {
        let mut state = WorldState::new();
        let c0 = state.commitment();
        state.credit(id(1), 1).unwrap();
        let c1 = state.commitment();
        assert_ne!(c0, c1);
        state.storage_set(id(1), b"k".to_vec(), b"v".to_vec());
        let c2 = state.commitment();
        assert_ne!(c1, c2);
    }

    #[test]
    fn rollback_restores_accounts_and_storage() {
        let mut state = WorldState::new();
        state.credit(id(1), 100).unwrap();
        state.storage_set(id(1), b"keep".to_vec(), b"old".to_vec());
        let before = state.clone();

        let cp = state.begin_transaction();
        state.credit(id(1), 50).unwrap();
        state.credit(id(2), 7).unwrap(); // fresh account
        state.account_mut(id(1)).nonce += 1;
        state.storage_set(id(1), b"keep".to_vec(), b"new".to_vec());
        state.storage_set(id(1), b"fresh".to_vec(), b"x".to_vec());
        state.storage_remove(&id(1), b"keep");
        state.rollback(cp);

        assert_eq!(state, before);
        assert_eq!(state.commitment(), before.commitment());
        assert_eq!(state.journal_len(), 0);
    }

    #[test]
    fn commit_keeps_changes_and_clears_journal() {
        let mut state = WorldState::new();
        let cp = state.begin_transaction();
        state.credit(id(1), 42).unwrap();
        state.storage_set(id(1), b"k".to_vec(), b"v".to_vec());
        state.commit(cp);
        assert_eq!(state.balance(&id(1)), 42);
        assert_eq!(state.storage_get(&id(1), b"k").unwrap(), b"v");
        assert_eq!(state.journal_len(), 0);
        // The high-water mark survives the commit (observability), and
        // never affects equality.
        assert_eq!(state.journal_high_water(), 2);
        assert_eq!(state, state.clone());
        // Post-commit mutations no longer journal.
        state.credit(id(1), 1).unwrap();
        assert_eq!(state.journal_len(), 0);
        assert_eq!(state.journal_high_water(), 2);
    }

    #[test]
    fn nested_checkpoints_roll_back_independently() {
        let mut state = WorldState::new();
        state.credit(id(1), 10).unwrap();
        let outer = state.begin_transaction();
        state.credit(id(1), 5).unwrap();
        let inner = state.begin_transaction();
        state.credit(id(1), 100).unwrap();
        state.rollback(inner);
        assert_eq!(state.balance(&id(1)), 15);
        // An inner commit leaves its entries in the outer undo set.
        let inner = state.begin_transaction();
        state.credit(id(2), 9).unwrap();
        state.commit(inner);
        state.rollback(outer);
        assert_eq!(state.balance(&id(1)), 10);
        assert_eq!(state.balance(&id(2)), 0);
    }

    #[test]
    fn equality_ignores_open_journal() {
        let mut a = WorldState::new();
        a.credit(id(1), 10).unwrap();
        let mut b = a.clone();
        let cp = b.begin_transaction();
        b.credit(id(1), 1).unwrap();
        b.rollback(cp);
        let _ = b.begin_transaction(); // leave a transaction open
        assert_eq!(a, b);
        a.credit(id(1), 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn commitment_deterministic() {
        let mut a = WorldState::new();
        let mut b = WorldState::new();
        // Different insertion orders, same content.
        a.credit(id(1), 5).unwrap();
        a.credit(id(2), 7).unwrap();
        b.credit(id(2), 7).unwrap();
        b.credit(id(1), 5).unwrap();
        assert_eq!(a.commitment(), b.commitment());
    }
}
