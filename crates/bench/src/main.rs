//! The evaluation harness CLI.
//!
//! ```text
//! harness            # run every experiment (full trial counts)
//! harness e3         # run one experiment
//! harness all quick  # reduced trial counts (what CI runs)
//! ```

use btcfast_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "quick" || a == "--quick");

    if id == "--help" || id == "-h" {
        println!("usage: harness [e1..e10|all] [quick]");
        for id in experiments::ALL_IDS {
            println!("  {id}");
        }
        return;
    }

    let tables = experiments::run(id, quick);
    if tables.is_empty() {
        eprintln!("unknown experiment id {id:?}; try --help");
        std::process::exit(2);
    }
    for table in tables {
        table.print();
    }
}
