//! A full node: chain + mempool glued together, including the reorg path
//! that returns disconnected transactions to the mempool.
//!
//! This is the component a BTCFast merchant actually runs: it is where a
//! double spend becomes *observable* — either as a mempool conflict at
//! offer time or as a confirmed transaction vanishing in a reorg.

use crate::block::Block;
use crate::chain::{Chain, ChainError, SubmitOutcome};
use crate::mempool::{Mempool, MempoolError};
use crate::params::ChainParams;
use crate::transaction::Transaction;
use btcfast_crypto::Hash256;
use std::collections::HashSet;

/// A full node with a chain view and a mempool.
#[derive(Clone, Debug)]
pub struct Node {
    chain: Chain,
    mempool: Mempool,
}

impl Node {
    /// Creates a node with an empty chain and mempool.
    pub fn new(params: ChainParams) -> Node {
        Node {
            chain: Chain::new(params),
            mempool: Mempool::new(),
        }
    }

    /// Wraps an existing chain view.
    pub fn from_chain(chain: Chain) -> Node {
        Node {
            chain,
            mempool: Mempool::new(),
        }
    }

    /// The chain view.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The mempool view.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Accepts a relayed transaction into the mempool.
    ///
    /// # Errors
    ///
    /// Propagates [`MempoolError`] (double spends surface as
    /// [`MempoolError::Conflict`]).
    pub fn submit_transaction(
        &mut self,
        tx: Transaction,
        now: u64,
    ) -> Result<Hash256, MempoolError> {
        self.mempool
            .insert(tx, self.chain.utxo(), self.chain.height() + 1, now)
    }

    /// Accepts a relayed block, maintaining the mempool across any reorg:
    /// transactions confirmed by the new chain leave the pool; transactions
    /// disconnected by a reorg return to it (when still valid).
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`].
    pub fn submit_block(&mut self, block: Block, now: u64) -> Result<SubmitOutcome, ChainError> {
        let before: Vec<Hash256> = self.chain.active_hashes().to_vec();
        let outcome = self.chain.submit_block(block)?;
        if matches!(outcome, SubmitOutcome::Connected { .. }) {
            let after: HashSet<Hash256> = self.chain.active_hashes().iter().copied().collect();

            // Transactions from disconnected blocks go back to the pool
            // (skipping coinbases and anything the new branch confirmed).
            for hash in before.iter().filter(|h| !after.contains(h)) {
                let disconnected = self
                    .chain
                    .block(hash)
                    .expect("disconnected blocks stay in the tree")
                    .clone();
                for tx in disconnected.transactions.into_iter().skip(1) {
                    if self.chain.confirmations(&tx.txid()).is_none() {
                        // Invalid re-insertions (e.g. conflicted away) are
                        // simply dropped, as real nodes do.
                        let _ = self.mempool.insert(
                            tx,
                            self.chain.utxo(),
                            self.chain.height() + 1,
                            now,
                        );
                    }
                }
            }

            // Purge everything the newly active blocks confirmed or
            // conflicted.
            let before_set: HashSet<Hash256> = before.into_iter().collect();
            let newly_active: Vec<Hash256> = self
                .chain
                .active_hashes()
                .iter()
                .filter(|h| !before_set.contains(*h))
                .copied()
                .collect();
            for hash in newly_active {
                let block = self.chain.block(&hash).expect("active block").clone();
                self.mempool.purge_confirmed(&block.transactions);
            }
        }
        Ok(outcome)
    }

    /// Builds a block template (fee-ordered mempool selection).
    pub fn template(&self, max: usize) -> Vec<Transaction> {
        self.mempool.select_for_block(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::Miner;
    use crate::wallet::Wallet;
    use crate::Amount;

    fn sats(v: u64) -> Amount {
        Amount::from_sats(v).unwrap()
    }

    /// Node whose wallet owns two mature coinbases.
    fn funded() -> (Node, Wallet, Miner) {
        let params = ChainParams::regtest();
        let mut node = Node::new(params.clone());
        let wallet = Wallet::from_seed(b"node wallet");
        let mut miner = Miner::new(params, wallet.address());
        for i in 1..=3u64 {
            let block = miner.mine_block(node.chain(), vec![], i * 600);
            node.submit_block(block, i * 600).unwrap();
        }
        (node, wallet, miner)
    }

    #[test]
    fn transactions_flow_pool_to_block() {
        let (mut node, wallet, mut miner) = funded();
        let merchant = Wallet::from_seed(b"m");
        let pay = wallet
            .create_payment(
                node.chain(),
                merchant.address(),
                sats(1_000),
                sats(100),
                None,
            )
            .unwrap();
        let txid = node.submit_transaction(pay, 2000).unwrap();
        assert!(node.mempool().contains(&txid));

        let block = miner.mine_block(node.chain(), node.template(100), 2400);
        node.submit_block(block, 2400).unwrap();
        assert!(!node.mempool().contains(&txid));
        assert_eq!(node.chain().confirmations(&txid), Some(1));
    }

    #[test]
    fn double_spend_rejected_at_pool() {
        let (mut node, wallet, _) = funded();
        let merchant = Wallet::from_seed(b"m");
        let pay = wallet
            .create_payment(
                node.chain(),
                merchant.address(),
                sats(1_000),
                sats(100),
                None,
            )
            .unwrap();
        let steal = wallet.create_conflicting_spend(node.chain(), &pay, sats(200));
        node.submit_transaction(pay, 2000).unwrap();
        assert!(matches!(
            node.submit_transaction(steal, 2001),
            Err(MempoolError::Conflict { .. })
        ));
    }

    #[test]
    fn reorg_returns_disconnected_txs_to_pool() {
        let (mut node, wallet, mut miner) = funded();
        let merchant = Wallet::from_seed(b"m");
        let pay = wallet
            .create_payment(
                node.chain(),
                merchant.address(),
                sats(1_000),
                sats(100),
                None,
            )
            .unwrap();
        let txid = node.submit_transaction(pay, 2000).unwrap();

        // Confirm it at height 4.
        let fork_base = node.chain().tip_hash();
        let block = miner.mine_block(node.chain(), node.template(100), 2400);
        node.submit_block(block, 2400).unwrap();
        assert_eq!(node.chain().confirmations(&txid), Some(1));
        assert!(!node.mempool().contains(&txid));

        // A 2-block fork from the pre-payment tip reorgs it away. The fork
        // does NOT conflict with the payment, so it returns to the pool.
        let mut rival = Miner::new(
            ChainParams::regtest(),
            Wallet::from_seed(b"rival").address(),
        );
        let f1 = rival.mine_block_on(node.chain(), fork_base, vec![], 2500);
        node.submit_block(f1.clone(), 2500).unwrap();
        let f2 = rival.mine_block_on(node.chain(), f1.hash(), vec![], 2600);
        node.submit_block(f2, 2600).unwrap();

        assert_eq!(node.chain().confirmations(&txid), None);
        assert!(
            node.mempool().contains(&txid),
            "disconnected tx must return to the pool"
        );
    }

    #[test]
    fn reorg_drops_conflicted_disconnected_txs() {
        let (mut node, wallet, mut miner) = funded();
        let merchant = Wallet::from_seed(b"m");
        let pay = wallet
            .create_payment(
                node.chain(),
                merchant.address(),
                sats(1_000),
                sats(100),
                None,
            )
            .unwrap();
        let steal = wallet.create_conflicting_spend(node.chain(), &pay, sats(300));
        let txid = node.submit_transaction(pay, 2000).unwrap();

        let fork_base = node.chain().tip_hash();
        let block = miner.mine_block(node.chain(), node.template(100), 2400);
        node.submit_block(block, 2400).unwrap();

        // The rival branch CONFIRMS the conflicting spend: the disconnected
        // payment must not re-enter the pool.
        let mut rival = Miner::new(
            ChainParams::regtest(),
            Wallet::from_seed(b"rival").address(),
        );
        let f1 = rival.mine_block_on(node.chain(), fork_base, vec![steal.clone()], 2500);
        node.submit_block(f1.clone(), 2500).unwrap();
        let f2 = rival.mine_block_on(node.chain(), f1.hash(), vec![], 2600);
        node.submit_block(f2, 2600).unwrap();

        assert_eq!(node.chain().confirmations(&txid), None);
        assert_eq!(node.chain().confirmations(&steal.txid()), Some(2));
        assert!(
            !node.mempool().contains(&txid),
            "conflicted tx must stay out of the pool"
        );
    }

    #[test]
    fn template_respects_pool() {
        let (mut node, wallet, _) = funded();
        let merchant = Wallet::from_seed(b"m");
        let pay = wallet
            .create_payment(
                node.chain(),
                merchant.address(),
                sats(1_000),
                sats(100),
                None,
            )
            .unwrap();
        let txid = node.submit_transaction(pay, 2000).unwrap();
        let template = node.template(10);
        assert_eq!(template.len(), 1);
        assert_eq!(template[0].txid(), txid);
        assert!(node.template(0).is_empty());
    }
}
