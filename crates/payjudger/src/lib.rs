//! # btcfast-payjudger
//!
//! The `PayJudger` smart contract — the paper's core contribution — plus a
//! typed client for driving it.
//!
//! PayJudger is a trusted payment judger living on a PSC chain. It holds a
//! customer's collateral in escrow and adjudicates Bitcoin payment disputes
//! through a **PoW-based payment judgment**: disputing parties submit SPV
//! evidence (Bitcoin header segments with Merkle inclusion proofs), the
//! contract verifies every header's proof of work on-chain, and rules for
//! the branch carrying the most accumulated work. A customer whose payment
//! was double-spent away loses collateral to the merchant; an honest
//! customer's inclusion proof on the heaviest chain defeats a frivolous
//! dispute.
//!
//! * [`types`] — escrow/payment/dispute records and their storage codecs;
//! * [`evidence`] — the on-chain evidence format and its gas-charged
//!   verification;
//! * [`contract`] — the contract state machine (deposit, openPayment, ack,
//!   dispute, submitEvidence, judge, close, withdraw);
//! * [`client`] — an off-chain helper that builds the PSC transactions and
//!   decodes receipts, used by the protocol roles in `btcfast`;
//! * [`retry`] — a rebuild-and-resubmit loop so dispute-path calls survive
//!   `OutOfGas` and land before the challenge window closes;
//! * [`verify`] — the off-chain accelerated verifier: parallel PoW checks
//!   plus an LRU memo of verified header-segment prefixes (byte-identical
//!   verdicts to the sequential path; on-chain gas semantics untouched).
//!
//! # Lifecycle
//!
//! ```text
//!   deposit ─▶ Escrow(Active)
//!                 │ open_payment(merchant, btc_txid, collateral)
//!                 ▼
//!            Payment(Open) ── ack / window expiry ──▶ Closed (collateral unlocked)
//!                 │ dispute (merchant, within window)
//!                 ▼
//!            Payment(Disputed) ── submit_evidence × N ──▶ judge
//!                 │                                          │
//!                 ▼                                          ▼
//!       MerchantWins (collateral → merchant)     CustomerWins (collateral unlocked)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod contract;
pub mod evidence;
pub mod retry;
pub mod types;
pub mod verify;

pub use client::PayJudgerClient;
pub use contract::{PayJudger, CODE_ID};
pub use retry::{submit_with_retry, AttemptResult, RetryError, RetryPolicy, RetryReport};
pub use types::{DisputeVerdict, EscrowRecord, PaymentRecord, PaymentState};
pub use verify::{CacheStats, EvidenceVerifier, VerifierConfig, VerifyMetrics};
