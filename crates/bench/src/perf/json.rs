//! A minimal JSON value: enough to emit `BENCH_payjudger.json` and read it
//! back in the regression gate. The registry is vendored-offline, so no
//! serde — a hand-rolled renderer and recursive-descent parser instead.

use std::fmt::Write as _;

/// A JSON document node. Object keys keep insertion order so emitted files
/// diff cleanly across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always rendered as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The node as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node's object entries, if it is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}");
                    item.render_into(out, depth + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}");
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii run");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_document() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("btcfast-bench/v1".into())),
            ("quick", Json::Bool(true)),
            (
                "benches",
                Json::obj(vec![(
                    "header_verify",
                    Json::obj(vec![
                        ("ops_per_sec", Json::Num(12345.67)),
                        ("p50_ns", Json::Num(81000.0)),
                        ("iters", Json::Num(40.0)),
                    ]),
                )]),
            ),
            ("tags", Json::Arr(vec![Json::Null, Json::Num(-2.5)])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("benches")
                .and_then(|b| b.get("header_verify"))
                .and_then(|h| h.get("ops_per_sec"))
                .and_then(Json::as_f64),
            Some(12345.67)
        );
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = Json::parse(" { \"a\\n\\\"b\" : [ 1 , true , null ] } ").unwrap();
        let entries = parsed.entries().unwrap();
        assert_eq!(entries[0].0, "a\n\"b");
        assert_eq!(
            entries[0].1,
            Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }
}
