//! The sharded payment engine: N concurrent customer→merchant sessions.
//!
//! The paper's throughput story is per-merchant: each merchant runs its own
//! PSC node and accepts fast payments independently, so aggregate capacity
//! scales with merchants, not with a shared bottleneck. [`PaymentEngine`]
//! models that as *shards* — each shard owns a complete, independent
//! [`FastPaySession`] (its own BTC chain, mempool, PSC chain, and escrow),
//! so shards share no mutable state and run in parallel on a
//! [`WorkerPool`] without locks.
//!
//! # Determinism
//!
//! Runs replay byte-identically from a single `u64` base seed:
//!
//! * each shard derives its own seed via a splitmix64 finalizer over
//!   `(base_seed, shard_index)` — shard streams never overlap and do not
//!   depend on worker scheduling;
//! * shards are shared-nothing, so execution order across threads cannot
//!   leak into any shard's outcome;
//! * [`WorkerPool::map_coarse`] preserves input order, so the outcome
//!   vector — and the [`EngineReport::fingerprint`] hashed over it — is
//!   independent of the worker count.
//!
//! The fingerprint covers every per-shard observable (accept counts,
//! exact simulated latencies, the PSC state commitment, the BTC tip, and
//! the shard's rendered JSONL trace), so two runs with equal fingerprints
//! executed the same payments against the same final chain states — and
//! recorded byte-identical per-phase traces doing it.

use crate::admission::{AdmissionConfig, AdmissionQueue, ShardAdmissionStats, Ticket};
use crate::config::SessionConfig;
use crate::recovery::{Outcome, RecoveryManager, Step};
use crate::session::{FastPaySession, SessionError};
use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::{Hash256, WorkerPool};
use btcfast_netsim::time::SimTime;
use btcfast_store::MemStorage;

/// Knobs of a sharded engine run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-shard session configuration. The escrow deposit is
    /// automatically raised (never lowered) to cover every payment's
    /// collateral for the whole run.
    pub session: SessionConfig,
    /// Independent shards (merchant deployments) to drive.
    pub shards: usize,
    /// Payments each shard executes.
    pub payments_per_shard: usize,
    /// Payments per batch: a batch spends disjoint confirmed coins,
    /// registers all its escrow payments in one PSC block, and is
    /// confirmed by one public BTC block.
    pub batch_size: usize,
    /// Value of each payment, satoshis.
    pub amount_sats: u64,
    /// Crash-restart drill cadence: after every N batches the shard drops
    /// its volatile recovery manager and re-hydrates from the durable
    /// media, asserting the recovered digest matches. `0` disables drills.
    pub crash_restart_every: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            session: SessionConfig::default(),
            shards: 4,
            payments_per_shard: 16,
            batch_size: 8,
            amount_sats: 1_000_000,
            crash_restart_every: 0,
        }
    }
}

/// What one shard observed, in a deterministic, hashable form.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// The derived per-shard seed.
    pub seed: u64,
    /// Payments the merchant accepted.
    pub accepted: usize,
    /// Payments the merchant rejected.
    pub rejected: usize,
    /// Point-of-sale waiting time of every accepted payment, in order.
    pub accept_latencies: Vec<SimTime>,
    /// The shard's final PSC world-state commitment.
    pub psc_commitment: Hash256,
    /// The shard's final BTC tip hash.
    pub btc_tip: Hash256,
    /// The shard's per-phase trace, rendered as canonical JSONL (empty
    /// when [`SessionConfig::tracing`] is off). Hashed into the run
    /// fingerprint, so the replay guarantee covers traces too.
    pub trace_jsonl: String,
    /// Digest of the shard's durable payment ledger (WAL-journaled); a
    /// crash-restart drill must land on the same digest, and it is hashed
    /// into the run fingerprint so replays cover recovery too.
    pub store_digest: Hash256,
    /// Crash-restart drills the shard performed (all digest-verified).
    pub recoveries: u64,
}

impl ShardOutcome {
    /// Canonical byte encoding hashed into the run fingerprint.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.shard as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.accepted as u64).to_le_bytes());
        out.extend_from_slice(&(self.rejected as u64).to_le_bytes());
        out.extend_from_slice(&(self.accept_latencies.len() as u64).to_le_bytes());
        for latency in &self.accept_latencies {
            out.extend_from_slice(&latency.as_micros().to_le_bytes());
        }
        out.extend_from_slice(&self.psc_commitment.0);
        out.extend_from_slice(&self.btc_tip.0);
        out.extend_from_slice(&(self.trace_jsonl.len() as u64).to_le_bytes());
        out.extend_from_slice(self.trace_jsonl.as_bytes());
        out.extend_from_slice(&self.store_digest.0);
        out.extend_from_slice(&self.recoveries.to_le_bytes());
    }
}

/// The aggregate of one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// Payments attempted across all shards.
    pub total_payments: usize,
    /// Payments accepted across all shards.
    pub total_accepted: usize,
    /// SHA-256d over the canonical encoding of every outcome: equal
    /// fingerprints ⇒ byte-identical replays.
    pub fingerprint: Hash256,
}

impl EngineReport {
    /// `(p50, p99)` of the simulated accept latency across all shards, in
    /// seconds. `None` when nothing was accepted.
    pub fn accept_latency_quantiles(&self) -> Option<(f64, f64)> {
        let mut micros: Vec<u64> = self
            .outcomes
            .iter()
            .flat_map(|o| o.accept_latencies.iter().map(SimTime::as_micros))
            .collect();
        micros.sort_unstable();
        let rank =
            |q: f64| btcfast_obs::stats::quantile_sorted_u64(&micros, q).map(|v| v as f64 / 1e6);
        Some((rank(0.50)?, rank(0.99)?))
    }
}

/// Derives shard `index`'s seed from the base seed: a splitmix64
/// finalizer, so neighboring indices produce uncorrelated streams.
fn shard_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives [`EngineConfig::shards`] independent payment sessions in
/// parallel.
#[derive(Clone, Debug)]
pub struct PaymentEngine {
    config: EngineConfig,
}

impl PaymentEngine {
    /// An engine over `config`.
    pub fn new(config: EngineConfig) -> PaymentEngine {
        PaymentEngine { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs every shard to completion on `pool` and aggregates.
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`SessionError`] (in shard order) when a
    /// payment or registration fails.
    pub fn run(&self, base_seed: u64, pool: &WorkerPool) -> Result<EngineReport, SessionError> {
        let shards: Vec<usize> = (0..self.config.shards).collect();
        let results = pool.map_coarse(&shards, |&shard| {
            run_shard(&self.config, shard, shard_seed(base_seed, shard as u64))
        });

        let mut outcomes = Vec::with_capacity(results.len());
        for result in results {
            outcomes.push(result?);
        }
        let total_accepted = outcomes.iter().map(|o| o.accepted).sum();
        let mut bytes = Vec::new();
        for outcome in &outcomes {
            outcome.encode(&mut bytes);
        }
        Ok(EngineReport {
            total_payments: self.config.shards * self.config.payments_per_shard,
            total_accepted,
            fingerprint: sha256d(&bytes),
            outcomes,
        })
    }
}

/// One scheduled open-loop arrival: `payments` equal-value payments bound
/// for `shard` at global time `at`.
///
/// The schedule is fixed *before* the run (typically sampled from
/// `btcfast_netsim::poisson::OpenLoopArrivals`), so arrivals keep coming
/// at the offered rate whether or not the shards keep up — the open-loop
/// property that exposes saturation instead of hiding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadArrival {
    /// Arrival offset on the global run timeline (`t = 0` is the instant
    /// every shard finishes provisioning).
    pub at: SimTime,
    /// Destination shard.
    pub shard: usize,
    /// Payments in the arriving batch.
    pub payments: usize,
}

/// What one shard observed during an open-loop load run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLoadOutcome {
    /// The shard index.
    pub shard: usize,
    /// The derived per-shard seed.
    pub seed: u64,
    /// Payments the schedule offered to this shard.
    pub offered: usize,
    /// Payments that reached the session (admitted and served).
    pub executed: usize,
    /// Served payments the merchant accepted.
    pub accepted: usize,
    /// Served payments the merchant rejected (protocol rejection, not a
    /// load shed).
    pub rejected: usize,
    /// This shard's admission accounting (depth, high-water, sheds).
    pub admission: ShardAdmissionStats,
    /// Accept latency of every accepted payment, in service order,
    /// charged from the payment's *scheduled arrival* — not from when a
    /// server finally picked it up — so queueing delay under overload is
    /// measured, not coordinated-omission-hidden.
    pub accept_latencies: Vec<SimTime>,
    /// The shard's final PSC world-state commitment.
    pub psc_commitment: Hash256,
    /// The shard's final BTC tip hash.
    pub btc_tip: Hash256,
    /// Escrow value locked at the end of the run.
    pub escrow_locked: u128,
    /// Total escrow balance at the end of the run; solvency requires
    /// `escrow_locked <= escrow_balance` at all times.
    pub escrow_balance: u128,
    /// The lock the ledger *should* hold: per-payment collateral × served
    /// payments. Shed payments never reach registration, so any
    /// difference is escrow residue — value leaked by shedding.
    pub expected_locked: u128,
}

impl ShardLoadOutcome {
    /// Escrow residue: absolute difference between the locked value and
    /// what the served payments account for. Non-zero means shedding
    /// leaked or stranded escrow value.
    pub fn escrow_residue(&self) -> u128 {
        self.escrow_locked.abs_diff(self.expected_locked)
    }

    /// Canonical byte encoding hashed into the load-run fingerprint.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.shard as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.offered as u64).to_le_bytes());
        out.extend_from_slice(&(self.executed as u64).to_le_bytes());
        out.extend_from_slice(&(self.accepted as u64).to_le_bytes());
        out.extend_from_slice(&(self.rejected as u64).to_le_bytes());
        out.extend_from_slice(&self.admission.admitted.to_le_bytes());
        out.extend_from_slice(&self.admission.rejected_new.to_le_bytes());
        out.extend_from_slice(&self.admission.dropped_oldest.to_le_bytes());
        out.extend_from_slice(&(self.admission.high_water as u64).to_le_bytes());
        out.extend_from_slice(&(self.accept_latencies.len() as u64).to_le_bytes());
        for latency in &self.accept_latencies {
            out.extend_from_slice(&latency.as_micros().to_le_bytes());
        }
        out.extend_from_slice(&self.psc_commitment.0);
        out.extend_from_slice(&self.btc_tip.0);
        out.extend_from_slice(&self.escrow_locked.to_le_bytes());
        out.extend_from_slice(&self.escrow_balance.to_le_bytes());
        out.extend_from_slice(&self.expected_locked.to_le_bytes());
    }
}

/// The aggregate of one open-loop load run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardLoadOutcome>,
    /// Every shed ticket across the run, in shed order — the
    /// deterministic shed set, hashed into [`LoadReport::fingerprint`].
    pub shed: Vec<Ticket>,
    /// Payments the schedule offered across all shards.
    pub offered: usize,
    /// Payments served across all shards.
    pub executed: usize,
    /// Global-timeline instant the last service completed.
    pub makespan: SimTime,
    /// SHA-256d over every outcome's canonical encoding plus the shed
    /// set: equal fingerprints ⇒ byte-identical replays *including every
    /// shedding decision*.
    pub fingerprint: Hash256,
}

impl LoadReport {
    /// Payments shed (never served) across all shards.
    pub fn shed_count(&self) -> usize {
        self.shed.len()
    }

    /// Shed fraction of the offered load, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed.len() as f64 / self.offered as f64
        }
    }

    /// Merchant-accepted payments across all shards.
    pub fn total_accepted(&self) -> usize {
        self.outcomes.iter().map(|o| o.accepted).sum()
    }

    /// Goodput: accepted payments per simulated second of makespan.
    pub fn goodput_per_sec(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.total_accepted() as f64 / span
        }
    }

    /// `(p50, p99)` accept latency across all shards in seconds, charged
    /// from scheduled arrival. `None` when nothing was accepted.
    pub fn accept_latency_quantiles(&self) -> Option<(f64, f64)> {
        let mut micros: Vec<u64> = self
            .outcomes
            .iter()
            .flat_map(|o| o.accept_latencies.iter().map(SimTime::as_micros))
            .collect();
        micros.sort_unstable();
        let rank =
            |q: f64| btcfast_obs::stats::quantile_sorted_u64(&micros, q).map(|v| v as f64 / 1e6);
        Some((rank(0.50)?, rank(0.99)?))
    }

    /// Total escrow residue across shards — zero iff shed payments left
    /// no trace in any escrow (value conservation).
    pub fn escrow_residue(&self) -> u128 {
        self.outcomes.iter().map(|o| o.escrow_residue()).sum()
    }
}

/// One shard's server state during an open-loop run.
struct LoadServer {
    session: FastPaySession,
    /// Session-clock reading at `t = 0` of the global timeline.
    start: SimTime,
    /// Global-timeline instant the in-flight service round completes;
    /// `None` when idle.
    busy_until: Option<SimTime>,
}

/// Per-shard service accounting accumulated by the event loop.
#[derive(Default)]
struct ShardLoadAcc {
    executed: usize,
    accepted: usize,
    rejected: usize,
    latencies: Vec<SimTime>,
}

/// Starts one service round on an idle shard at global time `now`: pops
/// up to `batch_size` queued tickets, runs them as one payment batch, and
/// marks the server busy until the batch completes. No-op when the
/// shard's queue is empty.
fn serve_shard(
    config: &EngineConfig,
    shard: usize,
    now: SimTime,
    server: &mut LoadServer,
    queue: &mut AdmissionQueue,
    acc: &mut ShardLoadAcc,
) -> Result<(), SessionError> {
    let batch = config.batch_size.max(1);
    let mut tickets = Vec::with_capacity(batch);
    while tickets.len() < batch {
        match queue.pop(shard) {
            Some(ticket) => tickets.push(ticket),
            None => break,
        }
    }
    if tickets.is_empty() {
        return Ok(());
    }

    // Advance the shard's session clock to the global service start.
    let target = server.start + now;
    if target > server.session.clock {
        let delta = target - server.session.clock;
        server.session.advance_clock(delta);
    }
    server.session.trace_point(
        "engine.load_serve",
        vec![
            ("shard", shard.into()),
            ("batch", tickets.len().into()),
            ("queued", queue.shard_depth(shard).into()),
        ],
    );

    let amounts: Vec<u64> = tickets.iter().map(|t| t.amount_sats).collect();
    let reports = server.session.run_fast_payment_batch(&amounts)?;
    // Confirm the batch so its change outputs fund the next round.
    server.session.mine_public_block()?;

    for (ticket, report) in tickets.iter().zip(&reports) {
        acc.executed += 1;
        if report.accepted {
            acc.accepted += 1;
            // Coordinated-omission-correct: completion minus *scheduled*
            // arrival, so time spent queued under overload is charged.
            let completion = report.accepted_at - server.start;
            acc.latencies
                .push(completion.saturating_sub(ticket.arrival));
        } else {
            acc.rejected += 1;
        }
    }
    server.busy_until = Some(server.session.clock - server.start);
    Ok(())
}

impl PaymentEngine {
    /// Drives an open-loop arrival schedule through every shard with
    /// bounded admission: a discrete-event loop interleaving scheduled
    /// arrivals with per-shard service completions.
    ///
    /// Arrivals are offered to the [`AdmissionQueue`] the moment they
    /// occur; a shard serves queued payments [`EngineConfig::batch_size`]
    /// at a time, and refused/displaced tickets land in the shed set. At
    /// equal event times a service completion is processed before an
    /// arrival (capacity frees before the next admission decision), and
    /// among simultaneous completions the lowest shard goes first — the
    /// tie-break that makes the run a pure function of `(schedule,
    /// base_seed, admission)`.
    ///
    /// [`EngineConfig::payments_per_shard`] is ignored here — the
    /// schedule decides how much work each shard sees.
    ///
    /// # Errors
    ///
    /// Returns the first [`SessionError`] a shard hits. Overload is *not*
    /// an error at this level: shed payments are reported, not failed.
    ///
    /// # Panics
    ///
    /// Panics when the schedule is not sorted by arrival time or targets
    /// a shard out of range.
    pub fn run_load(
        &self,
        base_seed: u64,
        schedule: &[LoadArrival],
        admission: AdmissionConfig,
    ) -> Result<LoadReport, SessionError> {
        let shards = self.config.shards;
        let mut offered = vec![0usize; shards];
        let mut prev = SimTime::ZERO;
        for arrival in schedule {
            assert!(arrival.shard < shards, "arrival shard out of range");
            assert!(arrival.at >= prev, "schedule must be sorted by time");
            prev = arrival.at;
            offered[arrival.shard] += arrival.payments;
        }

        // Provision every shard before t = 0, sized so escrow can cover
        // the worst case (every offered payment admitted).
        let per_payment = self
            .config
            .session
            .required_collateral(self.config.amount_sats);
        let mut servers = Vec::with_capacity(shards);
        for (shard, &shard_offered) in offered.iter().enumerate() {
            let mut session_config = self.config.session.clone();
            let worst_case = per_payment.saturating_mul(shard_offered as u128 + 1);
            session_config.escrow_deposit = session_config.escrow_deposit.max(worst_case);
            let mut session =
                FastPaySession::new(session_config, shard_seed(base_seed, shard as u64));
            session.fund_customer_coins(self.config.batch_size.max(1))?;
            let start = session.clock;
            servers.push(LoadServer {
                session,
                start,
                busy_until: None,
            });
        }

        let mut queue = AdmissionQueue::new(shards, admission);
        let mut acc: Vec<ShardLoadAcc> = (0..shards).map(|_| ShardLoadAcc::default()).collect();

        let mut next_arrival = 0usize;
        loop {
            let next_done = servers
                .iter()
                .enumerate()
                .filter_map(|(shard, server)| server.busy_until.map(|t| (t, shard)))
                .min();
            let arrival = schedule.get(next_arrival);
            // Completion-before-arrival on ties: capacity frees before
            // the next admission decision.
            let completion_first = match (next_done, arrival) {
                (None, None) => break,
                (Some((done, _)), Some(a)) => done <= a.at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            if completion_first {
                let (done, shard) = next_done.expect("completion_first implies a busy server");
                servers[shard].busy_until = None;
                serve_shard(
                    &self.config,
                    shard,
                    done,
                    &mut servers[shard],
                    &mut queue,
                    &mut acc[shard],
                )?;
            } else {
                let arrival = *arrival.expect("otherwise the loop broke");
                next_arrival += 1;
                for _ in 0..arrival.payments {
                    // A refusal is a shed, recorded in the queue's shed
                    // log — not a run failure.
                    let _ = queue.offer(arrival.shard, arrival.at, self.config.amount_sats);
                }
                if servers[arrival.shard].busy_until.is_none() {
                    serve_shard(
                        &self.config,
                        arrival.shard,
                        arrival.at,
                        &mut servers[arrival.shard],
                        &mut queue,
                        &mut acc[arrival.shard],
                    )?;
                }
            }
        }
        debug_assert_eq!(queue.depth(), 0, "the drain left work queued");

        let mut outcomes = Vec::with_capacity(shards);
        let mut makespan = SimTime::ZERO;
        for (shard, (server, acc)) in servers.iter().zip(&acc).enumerate() {
            let record = server
                .session
                .judger
                .escrow(&server.session.psc, server.session.customer.psc_account())
                .map_err(|e| SessionError::Psc(format!("escrow view: {e}")))?;
            makespan = makespan.max(server.session.clock - server.start);
            outcomes.push(ShardLoadOutcome {
                shard,
                seed: shard_seed(base_seed, shard as u64),
                offered: offered[shard],
                executed: acc.executed,
                accepted: acc.accepted,
                rejected: acc.rejected,
                admission: queue.stats()[shard],
                accept_latencies: acc.latencies.clone(),
                psc_commitment: server.session.psc.state_commitment(),
                btc_tip: server.session.btc.tip_hash(),
                escrow_locked: record.locked,
                escrow_balance: record.balance,
                expected_locked: per_payment.saturating_mul(acc.executed as u128),
            });
        }

        let mut bytes = Vec::new();
        for outcome in &outcomes {
            outcome.encode(&mut bytes);
        }
        for ticket in queue.shed_log() {
            bytes.extend_from_slice(&ticket.seq.to_le_bytes());
            bytes.extend_from_slice(&(ticket.shard as u64).to_le_bytes());
            bytes.extend_from_slice(&ticket.arrival.as_micros().to_le_bytes());
            bytes.extend_from_slice(&ticket.amount_sats.to_le_bytes());
        }

        Ok(LoadReport {
            offered: offered.iter().sum(),
            executed: acc.iter().map(|a| a.executed).sum(),
            shed: queue.shed_log().to_vec(),
            makespan,
            fingerprint: sha256d(&bytes),
            outcomes,
        })
    }
}

/// Wraps a recovery-store failure as a shard error.
fn store_err(e: crate::recovery::RecoveryError) -> SessionError {
    SessionError::Psc(format!("shard recovery store: {e}"))
}

/// One shard, start to finish: provision a session, then run payments in
/// batches — disjoint coin selection, one registration block per batch,
/// one confirming BTC block per batch. Every payment's lifecycle is
/// journaled to the shard's durable store; when
/// [`EngineConfig::crash_restart_every`] is set, the shard periodically
/// drops its volatile manager and re-hydrates from the media, failing the
/// run if the recovered digest diverges.
fn run_shard(config: &EngineConfig, shard: usize, seed: u64) -> Result<ShardOutcome, SessionError> {
    let mut session_config = config.session.clone();
    let per_payment = session_config.required_collateral(config.amount_sats);
    let whole_run = per_payment.saturating_mul(config.payments_per_shard as u128 + 1);
    session_config.escrow_deposit = session_config.escrow_deposit.max(whole_run);

    let mut session = FastPaySession::new(session_config, seed);
    let batch = config.batch_size.max(1);
    session.fund_customer_coins(batch)?;

    // Per-shard durable media: clone-shared handles, so dropping the
    // manager models losing volatile state while the "disk" survives.
    let wal_medium = MemStorage::new();
    let snap_medium = MemStorage::new();
    let (mut recovery, _) =
        RecoveryManager::open(wal_medium.clone(), snap_medium.clone()).map_err(store_err)?;
    let mut recoveries = 0u64;

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut accept_latencies = Vec::with_capacity(config.payments_per_shard);
    let mut remaining = config.payments_per_shard;
    let mut batches = 0usize;
    while remaining > 0 {
        let k = remaining.min(batch);
        session.trace_point(
            "engine.batch",
            vec![
                ("shard", shard.into()),
                ("size", k.into()),
                ("queued", remaining.into()),
            ],
        );
        let amounts = vec![config.amount_sats; k];
        for report in session.run_fast_payment_batch(&amounts)? {
            // Journal the payment's durable lifecycle facts.
            let intent = recovery
                .begin(Step::OpenPayment {
                    txid: report.txid,
                    amount_sats: config.amount_sats,
                    collateral: per_payment,
                    psc_nonce: report.payment_id,
                })
                .map_err(store_err)?;
            recovery
                .complete(
                    intent,
                    Outcome::PaymentRegistered {
                        payment_id: report.payment_id,
                    },
                )
                .map_err(store_err)?;
            let intent = recovery
                .begin(Step::AcceptanceSend {
                    payment_id: report.payment_id,
                    accepted: report.accepted,
                })
                .map_err(store_err)?;
            recovery
                .complete(
                    intent,
                    if report.accepted {
                        Outcome::Applied
                    } else {
                        Outcome::Rejected
                    },
                )
                .map_err(store_err)?;
            if report.accepted {
                let intent = recovery
                    .begin(Step::Broadcast {
                        payment_id: report.payment_id,
                        txid: report.txid,
                    })
                    .map_err(store_err)?;
                recovery
                    .complete(intent, Outcome::Applied)
                    .map_err(store_err)?;
                accepted += 1;
                accept_latencies.push(report.waiting);
            } else {
                rejected += 1;
            }
        }
        // Confirm the batch: the change outputs become the next batch's
        // disjoint confirmed coins.
        session.mine_public_block()?;
        remaining -= k;
        batches += 1;

        // Alternate batches checkpoint, so drills exercise both the
        // snapshot-plus-tail and the full-replay recovery paths.
        if batches.is_multiple_of(2) {
            recovery.checkpoint().map_err(store_err)?;
        }
        if config.crash_restart_every > 0 && batches.is_multiple_of(config.crash_restart_every) {
            let digest_before = recovery.digest();
            drop(recovery);
            let (restored, report) = RecoveryManager::open(wal_medium.clone(), snap_medium.clone())
                .map_err(store_err)?;
            if restored.digest() != digest_before {
                return Err(SessionError::Psc(format!(
                    "shard {shard}: recovered store digest diverged after restart"
                )));
            }
            recovery = restored;
            recoveries += 1;
            session.trace_point(
                "recovery.restart",
                vec![
                    ("shard", shard.into()),
                    ("replayed", report.replayed_records.into()),
                    ("snapshot", report.snapshot_used.into()),
                ],
            );
        }
    }

    let trace_jsonl = btcfast_obs::render_jsonl(&session.take_trace());
    Ok(ShardOutcome {
        shard,
        seed,
        accepted,
        rejected,
        accept_latencies,
        psc_commitment: session.psc.state_commitment(),
        btc_tip: session.btc.tip_hash(),
        trace_jsonl,
        store_digest: recovery.digest(),
        recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EngineConfig {
        EngineConfig {
            shards: 2,
            payments_per_shard: 3,
            batch_size: 2,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_accepts_every_payment_sub_second() {
        let engine = PaymentEngine::new(small());
        let report = engine.run(42, &WorkerPool::new(2)).unwrap();
        assert_eq!(report.total_payments, 6);
        assert_eq!(report.total_accepted, 6);
        assert!(report.outcomes.iter().all(|o| o.rejected == 0));
        let (p50, p99) = report.accept_latency_quantiles().unwrap();
        assert!(p50 <= p99);
        assert!(p99 < 1.0, "p99 accept latency = {p99}s");
    }

    #[test]
    fn same_seed_replays_byte_identically_across_worker_counts() {
        let engine = PaymentEngine::new(small());
        let sequential = engine.run(7, &WorkerPool::new(1)).unwrap();
        let parallel = engine.run(7, &WorkerPool::new(4)).unwrap();
        assert_eq!(sequential.fingerprint, parallel.fingerprint);
        assert_eq!(sequential.outcomes, parallel.outcomes);
        // The fingerprint now hashes the rendered trace too, so equal
        // fingerprints certify byte-identical per-shard traces.
        for (a, b) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert!(!a.trace_jsonl.is_empty(), "tracing defaults on");
            assert_eq!(a.trace_jsonl, b.trace_jsonl);
        }
        // And a third run, same pool, still identical.
        let again = engine.run(7, &WorkerPool::new(4)).unwrap();
        assert_eq!(parallel.fingerprint, again.fingerprint);
    }

    #[test]
    fn batch_verification_never_changes_the_replay_fingerprint() {
        // Batch signature pre-verification is cost-only: the verdicts, the
        // latency sample stream, the traces, and therefore the replay
        // fingerprint must be bit-identical with the toggle on or off, at
        // any worker count.
        let batched = PaymentEngine::new(small());
        assert!(batched.config().session.batch_verify, "defaults on");
        let mut config = small();
        config.session.batch_verify = false;
        let sequential_only = PaymentEngine::new(config);

        let on_1 = batched.run(11, &WorkerPool::new(1)).unwrap();
        let on_4 = batched.run(11, &WorkerPool::new(4)).unwrap();
        let off_1 = sequential_only.run(11, &WorkerPool::new(1)).unwrap();
        let off_4 = sequential_only.run(11, &WorkerPool::new(4)).unwrap();

        assert_eq!(on_1.fingerprint, off_1.fingerprint);
        assert_eq!(on_1.fingerprint, on_4.fingerprint);
        assert_eq!(on_1.fingerprint, off_4.fingerprint);
        assert_eq!(on_1.outcomes, off_1.outcomes);
        for (a, b) in on_1.outcomes.iter().zip(&off_1.outcomes) {
            assert_eq!(a.trace_jsonl, b.trace_jsonl);
        }
    }

    #[test]
    fn crash_restart_drills_recover_byte_identical_state() {
        let clean = PaymentEngine::new(small())
            .run(5, &WorkerPool::new(2))
            .unwrap();
        let mut config = small();
        config.crash_restart_every = 1;
        let crashed = PaymentEngine::new(config.clone())
            .run(5, &WorkerPool::new(2))
            .unwrap();
        // Crash drills never change what the shard pays or records: the
        // durable ledger digest matches the uninterrupted run shard for
        // shard, and the payment outcomes are unaffected.
        assert_eq!(clean.total_accepted, crashed.total_accepted);
        for (a, b) in clean.outcomes.iter().zip(&crashed.outcomes) {
            assert_eq!(a.store_digest, b.store_digest, "shard {}", a.shard);
            assert_eq!(a.recoveries, 0);
            assert!(b.recoveries > 0, "drills ran");
            assert_eq!(a.accepted, b.accepted);
        }
        // Same-seed reruns including crash-restart events replay
        // byte-identically across worker counts.
        let again = PaymentEngine::new(config)
            .run(5, &WorkerPool::new(4))
            .unwrap();
        assert_eq!(crashed.fingerprint, again.fingerprint);
        assert_eq!(crashed.outcomes, again.outcomes);
    }

    #[test]
    fn different_seeds_diverge() {
        let engine = PaymentEngine::new(small());
        let a = engine.run(1, &WorkerPool::new(2)).unwrap();
        let b = engine.run(2, &WorkerPool::new(2)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    use crate::admission::SheddingPolicy;

    /// A deterministic overload schedule: `per_shard` single-payment
    /// arrivals to each of `shards` shards, interleaved round-robin at
    /// one arrival per `gap_ms` milliseconds — far faster than a shard
    /// serves, so bounded admission must shed.
    fn burst_schedule(shards: usize, per_shard: usize, gap_ms: u64) -> Vec<LoadArrival> {
        (0..shards * per_shard)
            .map(|i| LoadArrival {
                at: SimTime::from_millis(i as u64 * gap_ms),
                shard: i % shards,
                payments: 1,
            })
            .collect()
    }

    fn load_engine(shards: usize) -> PaymentEngine {
        PaymentEngine::new(EngineConfig {
            session: SessionConfig::eos_flavored(),
            shards,
            batch_size: 4,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn overloaded_bounded_queue_sheds_and_conserves_escrow() {
        let engine = load_engine(2);
        let schedule = burst_schedule(2, 12, 5);
        let report = engine
            .run_load(
                3,
                &schedule,
                AdmissionConfig::bounded(4, SheddingPolicy::RejectNew),
            )
            .unwrap();
        assert_eq!(report.offered, 24);
        assert!(report.shed_count() > 0, "overload must shed");
        assert_eq!(report.executed + report.shed_count(), report.offered);
        // Value conservation: shed payments never touch the escrow.
        assert_eq!(report.escrow_residue(), 0);
        for outcome in &report.outcomes {
            assert_eq!(outcome.escrow_locked, outcome.expected_locked);
            assert_eq!(outcome.executed, outcome.admission.admitted as usize);
        }
    }

    #[test]
    fn unbounded_queue_never_sheds_but_latency_grows() {
        let engine = load_engine(1);
        let schedule = burst_schedule(1, 16, 5);
        let unbounded = engine
            .run_load(3, &schedule, AdmissionConfig::unbounded())
            .unwrap();
        assert_eq!(unbounded.shed_count(), 0);
        assert_eq!(unbounded.executed, 16);
        let bounded = engine
            .run_load(
                3,
                &schedule,
                AdmissionConfig::bounded(2, SheddingPolicy::RejectNew),
            )
            .unwrap();
        assert!(bounded.shed_count() > 0);
        // Open-loop p99 is charged from scheduled arrival: the unbounded
        // queue's tail reflects everything queued behind it, while the
        // bounded queue holds the tail down by refusing work.
        let (_, p99_unbounded) = unbounded.accept_latency_quantiles().unwrap();
        let (_, p99_bounded) = bounded.accept_latency_quantiles().unwrap();
        assert!(
            p99_unbounded > p99_bounded,
            "unbounded p99 {p99_unbounded}s should exceed bounded p99 {p99_bounded}s"
        );
    }

    #[test]
    fn load_run_replays_byte_identically_per_seed() {
        let engine = load_engine(2);
        let schedule = burst_schedule(2, 8, 10);
        let admission = AdmissionConfig::bounded(3, SheddingPolicy::FairPerShard);
        let a = engine.run_load(11, &schedule, admission).unwrap();
        let b = engine.run_load(11, &schedule, admission).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.shed, b.shed, "the shed set replays exactly");
        let c = engine.run_load(12, &schedule, admission).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint, "seeds diverge");
    }

    #[test]
    fn shed_set_is_part_of_the_fingerprint() {
        let engine = load_engine(1);
        let schedule = burst_schedule(1, 10, 5);
        let tight = engine
            .run_load(
                9,
                &schedule,
                AdmissionConfig::bounded(2, SheddingPolicy::RejectNew),
            )
            .unwrap();
        let loose = engine
            .run_load(
                9,
                &schedule,
                AdmissionConfig::bounded(6, SheddingPolicy::RejectNew),
            )
            .unwrap();
        assert!(tight.shed_count() > loose.shed_count());
        assert_ne!(
            tight.fingerprint, loose.fingerprint,
            "different shedding decisions must change the fingerprint"
        );
    }

    #[test]
    fn empty_schedule_is_a_clean_noop() {
        let engine = load_engine(1);
        let report = engine.run_load(1, &[], AdmissionConfig::default()).unwrap();
        assert_eq!(report.offered, 0);
        assert_eq!(report.executed, 0);
        assert_eq!(report.shed_count(), 0);
        assert_eq!(report.goodput_per_sec(), 0.0);
        assert!(report.accept_latency_quantiles().is_none());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_schedule_panics() {
        let engine = load_engine(1);
        let schedule = vec![
            LoadArrival {
                at: SimTime::from_secs(2),
                shard: 0,
                payments: 1,
            },
            LoadArrival {
                at: SimTime::from_secs(1),
                shard: 0,
                payments: 1,
            },
        ];
        let _ = engine.run_load(1, &schedule, AdmissionConfig::default());
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|i| shard_seed(99, i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(
            seeds,
            (0..16).map(|i| shard_seed(99, i)).collect::<Vec<_>>()
        );
    }
}
