//! Structure-aware codec round-trip fuzz targets.
//!
//! Every target asserts the same contract from two directions:
//!
//! * **structural** — a value built from the byte stream must survive
//!   `decode(encode(x)) == x` exactly;
//! * **hostile** — arbitrary (or bit-flipped) bytes fed to a decoder must
//!   either yield a value that re-encodes to the *identical* bytes, or a
//!   typed [`CodecError`] — never a panic, never a silently re-normalised
//!   value.
//!
//! The `compact-bits` target is differential: the production
//! encode/decode pair is compared against an independent re-statement of
//! Bitcoin Core's `SetCompact`/`GetCompact`. This is the target that
//! caught the sign-bit and truncating-cast bugs fixed in
//! `btcsim::pow` (see the committed corpus).

use crate::corpus::hex_encode;
use crate::source::ByteSource;
use btcfast_btcsim::block::BlockHeader;
use btcfast_btcsim::params::ChainParams;
use btcfast_btcsim::pow::{CompactBits, CompactBitsError};
use btcfast_btcsim::spv::SpvEvidence;
use btcfast_btcsim::transaction::{OutPoint, TxIn, TxOut};
use btcfast_btcsim::{Amount, Chain, Transaction, U256};
use btcfast_crypto::Hash256;
use btcfast_payjudger::evidence::EvidenceBundle;
use btcfast_payjudger::types::{
    CheckpointRecord, EscrowRecord, EvidenceSummary, JudgerConfig, PaymentRecord, PaymentState,
};
use btcfast_pscsim::account::AccountId;
use btcfast_pscsim::codec::{Decode, Encode};
use std::sync::OnceLock;

/// Asserts `decode(encode(value)) == value`.
fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) -> Result<(), String> {
    let encoded = value.encode();
    match T::decode(&encoded) {
        Ok(back) if &back == value => Ok(()),
        Ok(back) => Err(format!(
            "round-trip mismatch: {value:?} decoded as {back:?}"
        )),
        Err(e) => Err(format!("canonical encoding rejected: {value:?}: {e}")),
    }
}

/// Asserts hostile bytes either decode to a value that re-encodes to the
/// identical buffer, or fail with a typed error.
fn hostile_decode<T: Encode + Decode>(buf: &[u8], label: &str) -> Result<(), String> {
    match T::decode(buf) {
        Ok(value) => {
            let re = value.encode();
            if re == buf {
                Ok(())
            } else {
                Err(format!(
                    "{label}: accepted non-canonical bytes {} (re-encodes as {})",
                    hex_encode(buf),
                    hex_encode(&re)
                ))
            }
        }
        Err(_) => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// compact-bits: differential against Bitcoin Core's SetCompact/GetCompact.
// ---------------------------------------------------------------------------

/// Independent restatement of Bitcoin Core's `arith_uint256::SetCompact`
/// classification, with the same error precedence the production decoder
/// documents: zero mantissa first, then sign bit, then overflow.
fn set_compact_ref(bits: u32) -> Result<U256, CompactBitsError> {
    let exp = (bits >> 24) as i64;
    let mantissa = bits & 0x007f_ffff;
    if mantissa == 0 {
        return Err(CompactBitsError::Zero);
    }
    if bits & 0x0080_0000 != 0 {
        return Err(CompactBitsError::Negative);
    }
    if exp > 34 || (mantissa > 0xff && exp > 33) || (mantissa > 0xffff && exp > 32) {
        return Err(CompactBitsError::Overflow);
    }
    let mut be = [0u8; 32];
    let m = [
        (mantissa >> 16) as u8,
        (mantissa >> 8) as u8,
        mantissa as u8,
    ];
    for (i, &byte) in m.iter().enumerate() {
        let sig = exp - 1 - i as i64;
        if !(0..32).contains(&sig) {
            continue;
        }
        be[31 - sig as usize] = byte;
    }
    let target = U256::from_be_bytes(&be);
    if target.is_zero() {
        return Err(CompactBitsError::Zero);
    }
    Ok(target)
}

/// Independent restatement of `arith_uint256::GetCompact` (never sets the
/// sign bit: mantissas with the top bit high shift right and bump the
/// exponent).
fn get_compact_ref(target: &U256) -> u32 {
    let be = target.to_be_bytes();
    let size = 32 - be.iter().take_while(|&&b| b == 0).count();
    if size == 0 {
        return 0;
    }
    let mut mantissa: u32 = 0;
    for i in 0..3 {
        let sig = size as i64 - 1 - i;
        let byte = if sig >= 0 { be[31 - sig as usize] } else { 0 };
        mantissa = (mantissa << 8) | u32::from(byte);
    }
    let mut exponent = size as u32;
    if mantissa & 0x0080_0000 != 0 {
        mantissa >>= 8;
        exponent += 1;
    }
    (exponent << 24) | mantissa
}

/// Differential fuzz of [`CompactBits`] against the reference pair.
pub fn fuzz_compact_bits(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);

    // Decode direction: an arbitrary u32 must classify identically. A
    // quarter of the draws are edge-biased — independent exponent plus a
    // mantissa from the boundary set (zero, sign bit, extremes) that a
    // uniform u32 essentially never hits. The sign-bit-with-zero-mantissa
    // misclassification lived in exactly that 2^-24 corner.
    let bits = if src.u8() % 4 == 0 {
        let exponent = u32::from(src.u8()) % 40;
        let mantissa = match src.u8() % 6 {
            0 => 0,
            1 => 0x0080_0000,
            2 => 0x007f_ffff,
            3 => 0x0000_0001,
            4 => 0x0000_8000,
            _ => src.u32() & 0x00ff_ffff,
        };
        (exponent << 24) | mantissa
    } else {
        src.u32()
    };
    let ours = CompactBits(bits).to_target();
    let reference = set_compact_ref(bits);
    match (&ours, &reference) {
        (Ok(a), Ok(b)) if a == b => {
            // Round trip: the canonical re-encoding must be a fixpoint and
            // match the reference encoder.
            let re = CompactBits::from_target(a);
            let ref_bits = get_compact_ref(a);
            if re.0 != ref_bits {
                return Err(format!(
                    "from_target(to_target(0x{bits:08x})) = 0x{:08x}, reference encoder says 0x{ref_bits:08x}",
                    re.0
                ));
            }
            match re.to_target() {
                Ok(again) if &again == a => {}
                other => {
                    return Err(format!(
                        "re-encoding 0x{bits:08x} -> 0x{:08x} failed to decode back: {other:?}",
                        re.0
                    ))
                }
            }
        }
        (Err(a), Err(b)) if a == b => {}
        _ => {
            return Err(format!(
                "compact-bits 0x{bits:08x}: production {ours:?} vs reference {reference:?}"
            ))
        }
    }

    // Encode direction: an arbitrary 256-bit target must encode identically
    // to the reference, and the encoding must be a decodable fixpoint that
    // never exceeds the original value.
    let mut word = [0u8; 32];
    src.fill(&mut word);
    let target = U256::from_be_bytes(&word);
    let compact = CompactBits::from_target(&target);
    let ref_bits = get_compact_ref(&target);
    if compact.0 != ref_bits {
        return Err(format!(
            "from_target({}) = 0x{:08x}, reference says 0x{ref_bits:08x}",
            hex_encode(&word),
            compact.0
        ));
    }
    if !target.is_zero() {
        match compact.to_target() {
            Ok(decoded) => {
                if decoded > target {
                    return Err(format!(
                        "compact truncation rounded {} up to {}",
                        hex_encode(&word),
                        hex_encode(&decoded.to_be_bytes())
                    ));
                }
                if CompactBits::from_target(&decoded).0 != compact.0 {
                    return Err(format!(
                        "encoding of {} is not a fixpoint",
                        hex_encode(&word)
                    ));
                }
            }
            Err(e) => {
                return Err(format!(
                    "encoding of non-zero target {} does not decode: {e:?}",
                    hex_encode(&word)
                ))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// block-header: the 88-byte wire format is a bijection.
// ---------------------------------------------------------------------------

/// Any 88 bytes decode to a header that re-encodes to the same 88 bytes.
pub fn fuzz_block_header(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let mut raw = [0u8; 88];
    src.fill(&mut raw);
    let header = BlockHeader::decode(&raw);
    let re = header.encode();
    if re != raw {
        return Err(format!(
            "header codec is not bijective: {} re-encoded as {}",
            hex_encode(&raw),
            hex_encode(&re)
        ));
    }
    if header.hash() != BlockHeader::decode(&raw).hash() {
        return Err("header hash is not a pure function of the bytes".into());
    }
    // target()/work() must classify, not panic, on arbitrary bits.
    let _ = header.target();
    let _ = header.work();
    Ok(())
}

// ---------------------------------------------------------------------------
// psc-values: the pscsim storage/ABI codec primitives.
// ---------------------------------------------------------------------------

/// Structural + hostile fuzz of every primitive the pscsim codec ships.
pub fn fuzz_psc_values(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let selector = src.u8() % 13;
    match selector {
        0 => round_trip(&src.u8())?,
        1 => round_trip(&src.u16())?,
        2 => round_trip(&src.u32())?,
        3 => round_trip(&src.u64())?,
        4 => round_trip(&src.u128())?,
        5 => round_trip(&src.bool())?,
        6 => {
            let len = src.choice(48);
            let value = String::from_utf8_lossy(&src.bytes(len)).into_owned();
            round_trip(&value)?;
        }
        7 => {
            let mut hash = [0u8; 32];
            src.fill(&mut hash);
            round_trip(&Hash256(hash))?;
        }
        8 => {
            let mut id = [0u8; 20];
            src.fill(&mut id);
            round_trip(&AccountId(id))?;
        }
        9 => {
            let value = if src.bool() { Some(src.u64()) } else { None };
            round_trip(&value)?;
        }
        10 => {
            let len = src.choice(17);
            let value: Vec<u32> = (0..len).map(|_| src.u32()).collect();
            round_trip(&value)?;
        }
        11 => {
            let mut hash = [0u8; 32];
            src.fill(&mut hash);
            round_trip(&(src.u64(), Hash256(hash)))?;
        }
        _ => {
            let len = src.choice(64);
            let value: Vec<u8> = src.bytes(len);
            round_trip(&value)?;
        }
    }

    // Whatever bytes remain are a hostile buffer for the same type family.
    let rest = src.rest();
    match selector {
        0 => hostile_decode::<u8>(rest, "u8")?,
        1 => hostile_decode::<u16>(rest, "u16")?,
        2 => hostile_decode::<u32>(rest, "u32")?,
        3 => hostile_decode::<u64>(rest, "u64")?,
        4 => hostile_decode::<u128>(rest, "u128")?,
        5 => hostile_decode::<bool>(rest, "bool")?,
        6 => hostile_decode::<String>(rest, "String")?,
        7 => hostile_decode::<Hash256>(rest, "Hash256")?,
        8 => hostile_decode::<AccountId>(rest, "AccountId")?,
        9 => hostile_decode::<Option<u64>>(rest, "Option<u64>")?,
        10 => hostile_decode::<Vec<u32>>(rest, "Vec<u32>")?,
        11 => hostile_decode::<(u64, Hash256)>(rest, "(u64, Hash256)")?,
        _ => hostile_decode::<Vec<u8>>(rest, "Vec<u8>")?,
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// judger-types: the payjudger's persisted record codecs.
// ---------------------------------------------------------------------------

fn summary_from(src: &mut ByteSource<'_>) -> EvidenceSummary {
    let mut work = [0u8; 32];
    src.fill(&mut work);
    let mut tip = [0u8; 32];
    src.fill(&mut tip);
    EvidenceSummary {
        work,
        blocks: src.u64(),
        tip: Hash256(tip),
        includes_tx: src.bool(),
        tx_confirmations: src.u64(),
    }
}

/// Structural + hostile fuzz of every record the judger persists.
pub fn fuzz_judger_types(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let selector = src.u8() % 6;
    match selector {
        0 => {
            let mut checkpoint = [0u8; 32];
            src.fill(&mut checkpoint);
            round_trip(&JudgerConfig {
                checkpoint: Hash256(checkpoint),
                min_target_bits: src.u32(),
                challenge_window_secs: src.u64(),
                min_evidence_blocks: src.u64(),
            })?;
            hostile_decode::<JudgerConfig>(src.rest(), "JudgerConfig")?;
        }
        1 => {
            let mut customer = [0u8; 20];
            src.fill(&mut customer);
            round_trip(&EscrowRecord {
                customer: AccountId(customer),
                balance: src.u128(),
                locked: src.u128(),
                payment_count: src.u64(),
            })?;
            hostile_decode::<EscrowRecord>(src.rest(), "EscrowRecord")?;
        }
        2 => {
            let states = [
                PaymentState::Open,
                PaymentState::Acked,
                PaymentState::Closed,
                PaymentState::Disputed,
                PaymentState::MerchantPaid,
                PaymentState::CustomerCleared,
            ];
            round_trip(&states[src.choice(states.len())])?;
            hostile_decode::<PaymentState>(src.rest(), "PaymentState")?;
        }
        3 => {
            round_trip(&summary_from(&mut src))?;
            hostile_decode::<EvidenceSummary>(src.rest(), "EvidenceSummary")?;
        }
        4 => {
            let mut hash = [0u8; 32];
            src.fill(&mut hash);
            round_trip(&CheckpointRecord {
                hash: Hash256(hash),
                advanced_blocks: src.u64(),
                advanced_at: src.u64(),
            })?;
            hostile_decode::<CheckpointRecord>(src.rest(), "CheckpointRecord")?;
        }
        _ => {
            let mut checkpoint = [0u8; 32];
            src.fill(&mut checkpoint);
            let mut merchant = [0u8; 20];
            src.fill(&mut merchant);
            let mut txid = [0u8; 32];
            src.fill(&mut txid);
            let states = [
                PaymentState::Open,
                PaymentState::Acked,
                PaymentState::Closed,
                PaymentState::Disputed,
                PaymentState::MerchantPaid,
                PaymentState::CustomerCleared,
            ];
            let state = states[src.choice(states.len())];
            round_trip(&PaymentRecord {
                checkpoint: Hash256(checkpoint),
                merchant: AccountId(merchant),
                btc_txid: Hash256(txid),
                amount_sats: src.u64(),
                collateral: src.u128(),
                opened_at: src.u64(),
                disputed_at: src.u64(),
                state,
                merchant_evidence: summary_from(&mut src),
                customer_evidence: summary_from(&mut src),
            })?;
            hostile_decode::<PaymentRecord>(src.rest(), "PaymentRecord")?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// evidence-bundle: valid SPV evidence survives the wire; mutations are
// typed-rejected or canonical.
// ---------------------------------------------------------------------------

/// A small Bitcoin chain shared (read-only) by evidence-based targets.
pub struct SharedBtc {
    /// 10-block regtest chain.
    pub chain: Chain,
    /// Coinbase txids of blocks 1..=10, in height order.
    pub txids: Vec<Hash256>,
}

static SHARED_BTC: OnceLock<SharedBtc> = OnceLock::new();

/// Lazily mines and caches the shared evidence chain.
pub fn shared_btc() -> &'static SharedBtc {
    SHARED_BTC.get_or_init(|| {
        let params = ChainParams::regtest();
        let mut chain = Chain::new(params.clone());
        let mut miner =
            btcfast_btcsim::miner::Miner::new(params, btcfast_crypto::keys::Address([0x5E; 20]));
        let mut txids = Vec::new();
        for height in 1..=10u64 {
            let block = miner.mine_block(&chain, vec![], height * 600);
            txids.push(block.transactions[0].txid());
            chain
                .submit_block(block)
                .expect("shared chain block connects");
        }
        SharedBtc { chain, txids }
    })
}

/// Round-trips honestly built evidence bundles, then bit-flips them.
pub fn fuzz_evidence_bundle(bytes: &[u8]) -> Result<(), String> {
    let shared = shared_btc();
    let mut src = ByteSource::new(bytes);
    let from = 1 + src.choice(10) as u64;
    let to = from + src.choice((10 - from as usize).max(1)) as u64;
    let txid = if src.bool() {
        Some(shared.txids[src.choice(shared.txids.len())])
    } else {
        None
    };
    let evidence = SpvEvidence::from_chain(&shared.chain, from, to, txid.as_ref());
    let bundle = EvidenceBundle(evidence);
    round_trip(&bundle)?;

    let mut buf = bundle.encode();
    let flips = 1 + src.choice(6);
    for _ in 0..flips {
        let pos = src.choice(buf.len());
        buf[pos] ^= 1 + src.u8() % 255;
    }
    hostile_decode::<EvidenceBundle>(&buf, "EvidenceBundle")?;
    // A decodable mutation must still *verify* without panicking.
    if let Ok(mutated) = EvidenceBundle::decode(&buf) {
        let min_target = shared
            .chain
            .params()
            .pow_limit_bits
            .to_target()
            .expect("regtest limit decodes");
        let _ = mutated.0.verify(&min_target);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// btc-transaction: structural checks and txid determinism on arbitrary
// transaction shapes.
// ---------------------------------------------------------------------------

/// Builds arbitrary transactions and exercises the structural validators.
pub fn fuzz_btc_transaction(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let n_inputs = src.choice(4);
    let n_outputs = src.choice(4);
    let mut inputs = Vec::with_capacity(n_inputs);
    for _ in 0..n_inputs {
        let mut txid = [0u8; 32];
        src.fill(&mut txid);
        if src.bool() {
            let data_len = src.choice(16);
            inputs.push(TxIn {
                previous_output: OutPoint::NULL,
                coinbase_data: src.bytes(data_len),
                witness: None,
            });
        } else {
            inputs.push(TxIn::spend(OutPoint {
                txid: Hash256(txid),
                vout: src.u32() % 8,
            }));
        }
    }
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        let sats = src.u64() % 21_000_000_000_000;
        let value = Amount::from_sats(sats).map_err(|e| format!("amount cap violated: {e:?}"))?;
        let mut addr = [0u8; 20];
        src.fill(&mut addr);
        outputs.push(TxOut::payment(value, btcfast_crypto::keys::Address(addr)));
    }
    let mut tx = Transaction::new(inputs, outputs);
    tx.version = src.u32();
    tx.lock_time = src.u64();

    // Structural validation must classify, not abort.
    let _ = tx.check_structure();
    // The txid is a pure function of the core encoding.
    let core_a = tx.encode_core();
    let core_b = tx.encode_core();
    if core_a != core_b || tx.txid() != tx.txid() {
        return Err("transaction core encoding is not deterministic".into());
    }
    if tx.size_bytes() < core_a.len() {
        return Err("size_bytes smaller than the core encoding".into());
    }
    // Witness verification on unsigned inputs must error, not panic.
    for index in 0..tx.inputs.len() {
        let _ = tx.verify_input(
            index,
            &btcfast_btcsim::script::ScriptPubKey::P2pkh(btcfast_crypto::keys::Address([0; 20])),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// trace-context: the causal-tracing wire format under mutation.
// ---------------------------------------------------------------------------

/// Mutates serialized [`TraceContext`] bytes and feeds them to a live
/// transport. The contract: corruption degrades to *unattributed* —
/// the decoder never panics, never accepts non-canonical bytes, and a
/// transport carrying a corrupt context behaves byte-identically to an
/// untraced twin (delivery, retransmission, and dedup unchanged).
pub fn fuzz_trace_context(bytes: &[u8]) -> Result<(), String> {
    use btcfast_netsim::latency::LatencyModel;
    use btcfast_netsim::network::{Network, NodeId};
    use btcfast_netsim::transport::{Transport, TransportConfig};
    use btcfast_obs::TraceContext;

    let mut src = ByteSource::new(bytes);

    // Structural: a context built from the stream survives the wire
    // exactly; unattributed ids are refused by the decoder.
    let ctx = TraceContext {
        trace_id: src.u64(),
        span_id: src.u64(),
        parent_id: src.u64(),
    };
    let wire = ctx.to_wire();
    match TraceContext::from_wire(&wire) {
        Some(back) if back == ctx => {}
        Some(back) => return Err(format!("wire round-trip mismatch: {ctx:?} -> {back:?}")),
        None if ctx.is_attributed() => {
            return Err(format!("canonical wire bytes rejected: {ctx:?}"))
        }
        None => {}
    }

    // Hostile: stream-driven mutations — bit flips, overwrites,
    // truncation, extension.
    let mut mutated = wire.to_vec();
    for _ in 0..src.choice(8) {
        match src.u8() % 4 {
            0 if !mutated.is_empty() => {
                let i = src.u8() as usize % mutated.len();
                mutated[i] ^= src.u8();
            }
            1 => {
                let keep = src.u8() as usize % (mutated.len() + 1);
                mutated.truncate(keep);
            }
            2 => {
                let extra = src.choice(8);
                for _ in 0..extra {
                    mutated.push(src.u8());
                }
            }
            _ if !mutated.is_empty() => {
                let i = src.u8() as usize % mutated.len();
                mutated[i] = src.u8();
            }
            _ => {}
        }
    }

    let decoded = TraceContext::from_wire(&mutated);
    if let Some(d) = decoded {
        if !d.is_attributed() {
            return Err("decoder yielded an unattributed context".into());
        }
        if d.to_wire()[..] != mutated[..] {
            return Err(format!(
                "accepted non-canonical wire bytes {}",
                hex_encode(&mutated)
            ));
        }
    }

    // Differential: attribution is purely observational. A transport fed
    // the mutated bytes must replay byte-identically to an untraced twin.
    let seed = src.u64();
    let loss = f64::from(src.u8() % 100) / 100.0;
    let build = || {
        let mut net = Network::new(2, LatencyModel::Constant { secs: 0.01 });
        net.set_loss_probability(loss);
        Transport::new(net, TransportConfig::default(), seed)
    };
    let mut traced: Transport<u8> = build();
    let mut plain: Transport<u8> = build();
    traced.send_traced(NodeId(0), NodeId(1), 7, &mutated, 1_000);
    plain.send(NodeId(0), NodeId(1), 7);
    traced.run_until_idle();
    plain.run_until_idle();
    if traced.trace() != plain.trace() {
        return Err("corrupt context changed transport behavior".into());
    }
    if traced.stats() != plain.stats() {
        return Err("corrupt context changed transport counters".into());
    }
    let events = traced.take_trace_events();
    match decoded {
        None => {
            if events.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "corrupt context still attributed {} events",
                    events.len()
                ))
            }
        }
        Some(d) => {
            if events
                .iter()
                .all(|e| e.ctx.is_some_and(|c| c.trace_id == d.trace_id))
            {
                Ok(())
            } else {
                Err("attributed event escaped its trace".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_bits_reference_agrees_on_known_vectors() {
        // Canonical mainnet genesis bits.
        assert_eq!(
            set_compact_ref(0x1d00ffff).unwrap(),
            CompactBits(0x1d00ffff).to_target().unwrap()
        );
        // Sign bit with zero mantissa is zero, not negative.
        assert_eq!(set_compact_ref(0x03800000), Err(CompactBitsError::Zero));
        // Sign bit with non-zero mantissa is negative.
        assert_eq!(set_compact_ref(0x04800001), Err(CompactBitsError::Negative));
        assert_eq!(get_compact_ref(&U256::MAX), 0x2100ffff);
    }

    #[test]
    fn targets_accept_arbitrary_seeds() {
        for seed in 0u8..8 {
            let bytes = vec![seed; 96];
            fuzz_compact_bits(&bytes).unwrap();
            fuzz_block_header(&bytes).unwrap();
            fuzz_psc_values(&bytes).unwrap();
            fuzz_judger_types(&bytes).unwrap();
            fuzz_evidence_bundle(&bytes).unwrap();
            fuzz_btc_transaction(&bytes).unwrap();
            fuzz_trace_context(&bytes).unwrap();
        }
    }

    #[test]
    fn trace_context_target_survives_hostile_wire_bytes() {
        // Exercise the mutation machinery across many stream shapes:
        // varying op counts, indices, and transport loss rates.
        for seed in 0u8..32 {
            let mut bytes = vec![0u8; 128];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = seed
                    .wrapping_mul(37)
                    .wrapping_add(i as u8)
                    .wrapping_mul(101);
            }
            fuzz_trace_context(&bytes).unwrap();
        }
        // Empty and short streams degrade to the boring schedule.
        fuzz_trace_context(&[]).unwrap();
        fuzz_trace_context(&[0xFF; 3]).unwrap();
    }

    #[test]
    fn hostile_decode_flags_non_canonical_acceptance() {
        // 0x2 tag for bool would round-trip to 0x1 if bool decoding were
        // lax; the codec rejects it, which hostile_decode accepts.
        hostile_decode::<bool>(&[2], "bool").unwrap();
    }
}
