//! The rolling-checkpoint extension: bounding dispute evidence size over an
//! escrow's lifetime.
//!
//! Evidence verification gas grows linearly with header count (E5), so a
//! long-lived escrow anchored at its deployment-time checkpoint gets ever
//! more expensive to defend. The `advance_checkpoint` extension lets anyone
//! roll the anchor forward with a deep header segment; new payments pin the
//! fresh anchor and their disputes need only short proofs.
//!
//! ```text
//! cargo run --example rolling_checkpoint
//! ```

use btcfast_suite::btcsim::spv::SpvEvidence;
use btcfast_suite::netsim::time::SimTime;
use btcfast_suite::protocol::{FastPaySession, SessionConfig};

fn main() {
    let mut session = FastPaySession::new(SessionConfig::default(), 2026);

    println!("Rolling checkpoint — bounding evidence size");
    println!("===========================================");
    let checkpoint = session.judger.checkpoint(&session.psc).unwrap();
    println!("anchor at deployment : {} (genesis)", checkpoint.hash);

    // The Bitcoin chain grows for a while (an escrow lives for months).
    for _ in 0..20 {
        session.advance_clock(SimTime::from_secs(600));
        session.mine_public_block().expect("block connects");
    }
    let full_depth = session.btc.height();
    println!("BTC height now       : {full_depth}");
    println!(
        "full-genesis evidence: {} headers ≈ {} gas to verify",
        full_depth,
        full_depth * 2_400 + 21_000
    );

    // Anyone rolls the anchor forward (Δ = 6 safety margin below the tip).
    let segment = SpvEvidence::from_chain(&session.btc, 1, session.btc.height(), None);
    let tx = session.judger.advance_checkpoint_tx(
        session.merchant.psc_keys(),
        session.psc.nonce_of(&session.merchant.psc_account()),
        segment,
    );
    let receipt = session.run_psc_tx(tx).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    let checkpoint = session.judger.checkpoint(&session.psc).unwrap();
    println!(
        "\nanchor advanced to   : height {} ({} headers absorbed, {} gas once)",
        checkpoint.advanced_blocks, checkpoint.advanced_blocks, receipt.gas_used
    );

    // A new payment now disputes with a short segment.
    let report = session.run_fast_payment(500_000).expect("payment");
    assert!(report.accepted);
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");
    for _ in 0..6 {
        session.advance_clock(SimTime::from_secs(600));
        session.mine_public_block().expect("block connects");
    }
    let anchor_height = checkpoint.advanced_blocks;
    let short = SpvEvidence::from_chain(
        &session.btc,
        anchor_height + 1,
        session.btc.height(),
        Some(&report.txid),
    );
    println!(
        "new payment's evidence: {} headers (vs {} from genesis)",
        short.segment.len(),
        session.btc.height()
    );
    assert!(short.segment.len() < session.btc.height() as usize / 2);
    assert!(short.inclusion.is_some());
    println!("\nOK: post-advancement disputes verify a fraction of the headers.");
}
