//! HMAC-SHA256 (RFC 2104), used by the RFC 6979 deterministic ECDSA nonce
//! generator in [`crate::ecdsa`].

use crate::sha256::{sha256, Sha256};

/// Computes `HMAC-SHA256(key, message)`.
///
/// ```
/// let mac = btcfast_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(mac.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Streaming HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys longer
    /// than the 64-byte block size are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            block_key[..32].copy_from_slice(&sha256(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte MAC.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        // Key longer than block size must be hashed first.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, data);
        assert_eq!(
            hex::encode(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"stream key";
        let data: Vec<u8> = (0..177u8).collect();
        let expected = hmac_sha256(key, &data);
        let mut mac = HmacSha256::new(key);
        for chunk in data.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), expected);
    }

    #[test]
    fn empty_message() {
        // HMAC must be well-defined on empty input.
        let a = hmac_sha256(b"k", b"");
        let b = hmac_sha256(b"k", b"");
        assert_eq!(a, b);
        assert_ne!(a, hmac_sha256(b"other", b""));
    }
}
