//! # btcfast
//!
//! The BTCFast protocol (Lei, Xie, Tu, Liu — ICDCS 2020): sub-second
//! Bitcoin payment acceptance backed by an inter-blockchain escrow and a
//! PoW-judging smart contract.
//!
//! This crate ties the substrates together into the protocol the paper
//! describes:
//!
//! * [`roles`] — the [`roles::Customer`] and [`roles::Merchant`] drivers:
//!   wallets on both chains, payment construction, acceptance checks,
//!   double-spend detection, evidence gathering;
//! * [`policy`] — the merchant's acceptance policy (collateral coverage,
//!   exposure limits, exchange rate);
//! * [`protocol`] — the phase artifacts exchanged between roles
//!   (payment offers, acceptances, rejection reasons);
//! * [`session`] — end-to-end discrete-event simulations: honest fast
//!   payments, confirmation baselines, full double-spend attacks with
//!   dispute resolution;
//! * [`engine`] — [`engine::PaymentEngine`]: N concurrent shared-nothing
//!   payment sessions sharded over a worker pool, with batched escrow
//!   registration and seed-deterministic, byte-identical replays — plus
//!   an open-loop load mode ([`engine::PaymentEngine::run_load`]) that
//!   drives a fixed arrival schedule through bounded admission;
//! * [`admission`] — the backpressure layer: a capacity-bounded
//!   admission queue with pluggable shedding policies and a typed
//!   [`admission::OverloadError`], whose shed set is part of the replay
//!   fingerprint;
//! * [`baseline`] — the comparison schemes (wait-for-z, naive 0-conf);
//! * [`fees`] — the cost model behind the "no extra operation fee" claim;
//! * [`robustness`] — typed failure surface ([`robustness::RobustnessError`])
//!   and the merchant's graceful-degradation policy for adverse networks;
//! * [`recovery`] — [`recovery::RecoveryManager`]: durable intent
//!   journaling (WAL + snapshots via `btcfast-store`), so a crashed
//!   participant re-hydrates a byte-identical ledger and resumes
//!   in-flight payments and disputes exactly-once;
//! * [`chaos`] — [`chaos::ChaosSession`]: the full protocol driven through
//!   a reliable transport under a seeded fault plan (loss, partitions,
//!   crashes, PSC stalls), with retry-aware dispute submission;
//! * [`telemetry`] — scrapes every substrate's stat counters into one
//!   `btcfast-obs` registry; sessions also record per-phase spans on the
//!   sim-time clock, so replays produce byte-identical traces;
//! * [`config`] — one knob surface for all of the above.
//!
//! # Quickstart
//!
//! ```
//! use btcfast::{FastPaySession, SessionConfig};
//!
//! let mut session = FastPaySession::new(SessionConfig::default(), 42);
//! let report = session.run_fast_payment(10_000_000).unwrap();
//! assert!(report.accepted);
//! assert!(report.waiting.as_secs_f64() < 1.0, "sub-second acceptance");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod baseline;
pub mod chaos;
pub mod config;
pub mod engine;
pub mod fees;
pub mod policy;
pub mod protocol;
pub mod recovery;
pub mod robustness;
pub mod roles;
pub mod session;
pub mod telemetry;

pub use admission::{
    AdmissionConfig, AdmissionQueue, OverloadError, ShardAdmissionStats, SheddingPolicy, Ticket,
};
pub use chaos::{ChaosDisputeReport, ChaosPaymentReport, ChaosSession, EscrowSnapshot};
pub use config::SessionConfig;
pub use engine::{
    EngineConfig, EngineReport, LoadArrival, LoadReport, PaymentEngine, ShardLoadOutcome,
    ShardOutcome,
};
pub use policy::AcceptancePolicy;
pub use protocol::{Acceptance, PaymentOffer, RejectReason};
pub use recovery::{
    Outcome, PaymentLedger, RecoveryError, RecoveryManager, RecoveryReport, RecoveryStats, Step,
};
pub use robustness::{ChaosConfig, FallbackPolicy, ProtocolPhase, RobustnessError};
pub use session::FastPaySession;
