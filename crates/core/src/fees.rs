//! The cost model behind the abstract's "no extra operation fee" claim.
//!
//! BTCFast's honest path pays exactly the normal BTC transaction fee per
//! payment. The PSC-side costs — escrow deposit, payment registrations,
//! closes, and the eventual withdrawal — amortize over the escrow lifetime,
//! and on an EOS-like chain (`gas_price = 0`) vanish entirely; dispute costs
//! only arise under attack and are recovered from the loser's collateral in
//! a rational deployment.

use btcfast_pscsim::gas::Gas;

/// Per-operation gas usage measured from a live session (the E4 inputs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GasUsage {
    /// Contract deployment (once per judger, not per user).
    pub deploy: Gas,
    /// Escrow deposit (once per escrow).
    pub deposit: Gas,
    /// Payment registration (per payment).
    pub open_payment: Gas,
    /// Undisputed close (per payment, skippable when acked).
    pub close_payment: Gas,
    /// Merchant acknowledgment (the alternative early release).
    pub ack_payment: Gas,
    /// Dispute opening (per dispute).
    pub dispute: Gas,
    /// Evidence submission (per dispute, dominated by header count).
    pub submit_evidence: Gas,
    /// Judgment (per dispute).
    pub judge: Gas,
    /// Escrow withdrawal (once per escrow).
    pub withdraw: Gas,
}

/// A per-payment cost breakdown in comparable satoshi units.
#[derive(Clone, Debug, PartialEq)]
pub struct PaymentCost {
    /// The BTC network fee (paid under every scheme).
    pub btc_fee_sats: f64,
    /// Amortized PSC overhead per payment, in satoshi-equivalents.
    pub psc_overhead_sats: f64,
}

impl PaymentCost {
    /// Total per-payment cost.
    pub fn total_sats(&self) -> f64 {
        self.btc_fee_sats + self.psc_overhead_sats
    }

    /// The extra cost relative to the plain-BTC baseline.
    pub fn extra_vs_baseline_sats(&self) -> f64 {
        self.psc_overhead_sats
    }
}

/// Cost model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct FeeModel {
    /// BTC fee per transaction, satoshis.
    pub btc_fee_sats: u64,
    /// PSC gas price in native units per gas.
    pub gas_price: u128,
    /// Exchange rate: satoshis per PSC native unit.
    pub sats_per_psc_unit: f64,
}

impl FeeModel {
    /// Converts a gas quantity to satoshi-equivalents.
    pub fn gas_to_sats(&self, gas: Gas) -> f64 {
        gas as f64 * self.gas_price as f64 * self.sats_per_psc_unit
    }

    /// Honest-path cost per payment when the escrow serves `payments`
    /// payments over its lifetime: every payment registers and closes, the
    /// deposit and withdrawal amortize.
    ///
    /// # Panics
    ///
    /// Panics when `payments` is zero.
    pub fn honest_cost_per_payment(&self, usage: &GasUsage, payments: u64) -> PaymentCost {
        assert!(payments > 0, "amortization needs at least one payment");
        let per_payment_gas = (usage.open_payment + usage.close_payment) as f64;
        let amortized_gas = (usage.deposit + usage.withdraw) as f64 / payments as f64;
        let sats_per_gas = self.gas_price as f64 * self.sats_per_psc_unit;
        PaymentCost {
            btc_fee_sats: self.btc_fee_sats as f64,
            psc_overhead_sats: (per_payment_gas + amortized_gas) * sats_per_gas,
        }
    }

    /// Cost of one dispute (loser-pays in a rational deployment; reported
    /// for completeness).
    pub fn dispute_cost_sats(&self, usage: &GasUsage) -> f64 {
        self.gas_to_sats(usage.dispute + usage.submit_evidence + usage.judge)
    }

    /// The plain-BTC baseline's per-payment cost.
    pub fn baseline_cost(&self) -> PaymentCost {
        PaymentCost {
            btc_fee_sats: self.btc_fee_sats as f64,
            psc_overhead_sats: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage() -> GasUsage {
        GasUsage {
            deploy: 120_000,
            deposit: 70_000,
            open_payment: 60_000,
            close_payment: 40_000,
            ack_payment: 40_000,
            dispute: 45_000,
            submit_evidence: 160_000,
            judge: 80_000,
            withdraw: 50_000,
        }
    }

    #[test]
    fn eos_like_overhead_is_zero() {
        let model = FeeModel {
            btc_fee_sats: 1_000,
            gas_price: 0,
            sats_per_psc_unit: 1.0,
        };
        let cost = model.honest_cost_per_payment(&usage(), 10);
        assert_eq!(cost.psc_overhead_sats, 0.0);
        assert_eq!(cost.total_sats(), 1_000.0);
        assert_eq!(cost.extra_vs_baseline_sats(), 0.0);
    }

    #[test]
    fn overhead_amortizes_with_volume() {
        let model = FeeModel {
            btc_fee_sats: 1_000,
            gas_price: 1,
            sats_per_psc_unit: 0.000001,
        };
        let few = model.honest_cost_per_payment(&usage(), 1);
        let many = model.honest_cost_per_payment(&usage(), 1_000);
        assert!(few.psc_overhead_sats > many.psc_overhead_sats);
    }

    #[test]
    fn baseline_has_no_overhead() {
        let model = FeeModel {
            btc_fee_sats: 500,
            gas_price: 20,
            sats_per_psc_unit: 0.01,
        };
        assert_eq!(model.baseline_cost().total_sats(), 500.0);
    }

    #[test]
    fn dispute_cost_dominated_by_evidence() {
        let model = FeeModel {
            btc_fee_sats: 500,
            gas_price: 1,
            sats_per_psc_unit: 1.0,
        };
        let u = usage();
        let dispute = model.dispute_cost_sats(&u);
        assert!(dispute > model.gas_to_sats(u.submit_evidence));
        assert!(model.gas_to_sats(u.submit_evidence) > dispute / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one payment")]
    fn zero_payments_panics() {
        let model = FeeModel {
            btc_fee_sats: 1,
            gas_price: 1,
            sats_per_psc_unit: 1.0,
        };
        model.honest_cost_per_payment(&usage(), 0);
    }
}
