//! ECDSA over secp256k1 with RFC 6979 deterministic nonces and low-S
//! normalization (the scheme Bitcoin transactions use).

use crate::hmac::hmac_sha256;
use crate::mul_table::{self, OddMultiplesTable, PubkeyCacheStats, PubkeyTableCache};
use crate::point::{AffinePoint, Point};
use crate::scalar::Scalar;
use std::cell::RefCell;
use std::error::Error;
use std::fmt;

/// An ECDSA signature `(r, s)` with `s` normalized to the low half of the
/// scalar range.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// The x-coordinate component.
    pub r: Scalar,
    /// The proof component (always low-S).
    pub s: Scalar,
}

impl Signature {
    /// Serializes as 64 bytes: `r || s`, both big-endian.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a 64-byte `r || s` signature.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::OutOfRange`] if either component is zero or
    /// not below the group order, or [`SignatureError::HighS`] if `s` is in
    /// the high half (malleable encoding).
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<Signature, SignatureError> {
        let mut r_bytes = [0u8; 32];
        let mut s_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..32]);
        s_bytes.copy_from_slice(&bytes[32..]);
        // Error precedence is part of the stable contract: range checks run
        // before the high-S check, so `s >= n` (whose reduced form may be
        // low or high) is always `OutOfRange`, never `HighS`. Audit-corpus
        // minimization relies on this ordering staying byte-stable.
        let r = Scalar::from_be_bytes(&r_bytes).ok_or(SignatureError::OutOfRange)?;
        let s = Scalar::from_be_bytes(&s_bytes).ok_or(SignatureError::OutOfRange)?;
        if r.is_zero() || s.is_zero() {
            return Err(SignatureError::OutOfRange);
        }
        if s.is_high() {
            return Err(SignatureError::HighS);
        }
        Ok(Signature { r, s })
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature(r: {:?}, s: {:?})", self.r, self.s)
    }
}

/// Errors arising from signature parsing or signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// A component was zero or >= the group order.
    OutOfRange,
    /// `s` was in the high (malleable) half.
    HighS,
    /// The signing key was zero.
    InvalidSecretKey,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::OutOfRange => write!(f, "signature component out of range"),
            SignatureError::HighS => write!(f, "signature s component is in the high half"),
            SignatureError::InvalidSecretKey => write!(f, "secret key is zero"),
        }
    }
}

impl Error for SignatureError {}

/// The two bits of signer-side context that make a signature *batchable*:
/// which of the (at most four) curve points with `x ≡ r (mod n)` was the
/// nonce point `k·G`.
///
/// ECDSA verification only compares x-coordinates, so `(r, s, z, Q)` alone
/// determines the nonce point up to sign — a verifier cannot reconstruct
/// `R = k·G` itself, which the batched equation
/// `Σ a_i·u1_i·G + Σ a_i·u2_i·Q_i − Σ a_i·R_i = ∞` needs explicitly. The
/// signer knows `R` for free, and these two bits pin it down exactly (the
/// same trick as Bitcoin/Ethereum recoverable signatures). The hint is
/// advisory: it never changes a verdict, only whether the fast batched
/// path applies (see [`crate::batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryId {
    /// True when the nonce point's y-coordinate is odd.
    pub y_odd: bool,
    /// True when the nonce point's x-coordinate was `>= n` before reduction
    /// (probability ~2^-128; kept for completeness).
    pub x_overflow: bool,
}

impl RecoveryId {
    /// Packs into the conventional 2-bit encoding `2·x_overflow + y_odd`.
    pub fn to_byte(self) -> u8 {
        (self.x_overflow as u8) << 1 | self.y_odd as u8
    }

    /// Unpacks the 2-bit encoding; `None` for out-of-range bytes.
    pub fn from_byte(byte: u8) -> Option<RecoveryId> {
        if byte > 3 {
            return None;
        }
        Some(RecoveryId {
            y_odd: byte & 1 == 1,
            x_overflow: byte & 2 == 2,
        })
    }
}

/// RFC 6979 deterministic nonce derivation for SHA-256.
///
/// Given the secret key `d` and message digest `z` (both 32 bytes), produces
/// the unique, deterministic nonce `k` in `[1, n-1]`.
pub fn rfc6979_nonce(secret: &[u8; 32], digest: &[u8; 32]) -> Scalar {
    // z reduced mod n, re-serialized, per RFC 6979 §2.3 bits2octets.
    let z_reduced = Scalar::from_be_bytes_reduced(digest).to_be_bytes();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    // K = HMAC_K(V || 0x00 || x || h)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x00);
    data.extend_from_slice(secret);
    data.extend_from_slice(&z_reduced);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    // K = HMAC_K(V || 0x01 || x || h)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32);
    data.extend_from_slice(&v);
    data.push(0x01);
    data.extend_from_slice(secret);
    data.extend_from_slice(&z_reduced);
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        if let Some(candidate) = Scalar::from_be_bytes(&v) {
            if !candidate.is_zero() {
                return candidate;
            }
        }
        // K = HMAC_K(V || 0x00); V = HMAC_K(V); retry.
        let mut data = Vec::with_capacity(33);
        data.extend_from_slice(&v);
        data.push(0x00);
        k = hmac_sha256(&k, &data);
        v = hmac_sha256(&k, &v);
    }
}

/// Signs a 32-byte message digest with secret scalar `d`.
///
/// # Errors
///
/// Returns [`SignatureError::InvalidSecretKey`] if `d` is zero.
pub fn sign(d: &Scalar, digest: &[u8; 32]) -> Result<Signature, SignatureError> {
    sign_recoverable(d, digest).map(|(sig, _)| sig)
}

/// Signs a 32-byte message digest, also returning the [`RecoveryId`] that
/// identifies the nonce point `k·G` among the candidates sharing `r` —
/// the hint batch verification needs to reconstruct `R` (see
/// [`crate::batch`]). The signature itself is identical to [`sign`]'s.
///
/// # Errors
///
/// Returns [`SignatureError::InvalidSecretKey`] if `d` is zero.
pub fn sign_recoverable(
    d: &Scalar,
    digest: &[u8; 32],
) -> Result<(Signature, RecoveryId), SignatureError> {
    if d.is_zero() {
        return Err(SignatureError::InvalidSecretKey);
    }
    let z = Scalar::from_be_bytes_reduced(digest);
    let secret_bytes = d.to_be_bytes();
    let mut k = rfc6979_nonce(&secret_bytes, digest);
    loop {
        let r_point = mul_table::generator_mul(&k);
        if let AffinePoint::Coordinates { x, y } = r_point.to_affine() {
            let x_bytes = x.to_be_bytes();
            let r = Scalar::from_be_bytes_reduced(&x_bytes);
            if !r.is_zero() {
                let s = k.invert() * (z + r * *d);
                if !s.is_zero() {
                    let x_overflow = Scalar::from_be_bytes(&x_bytes).is_none();
                    let mut y_odd = y.is_odd();
                    let s = if s.is_high() {
                        // Low-S normalization replaces s with -s, and a
                        // verifier computing s⁻¹(z + r·d)·G then lands on
                        // -k·G instead of k·G: flip the parity hint so it
                        // names the point verification will reconstruct.
                        y_odd = !y_odd;
                        -s
                    } else {
                        s
                    };
                    return Ok((Signature { r, s }, RecoveryId { y_odd, x_overflow }));
                }
            }
        }
        // Vanishingly unlikely; derive a fresh nonce by re-keying on k.
        let retry_seed = crate::sha256::sha256(&k.to_be_bytes());
        k = rfc6979_nonce(&secret_bytes, &retry_seed);
    }
}

/// Capacity of the thread-local per-key table cache used by [`verify`]:
/// enough for the working set of a busy merchant session, small enough
/// that a hostile stream of one-shot keys stays bounded.
pub const PUBKEY_CACHE_CAPACITY: usize = 32;

thread_local! {
    /// Per-thread cache of public-key odd-multiple tables. Thread-local
    /// (like btcsim's signature cache) so the payment-engine shards never
    /// contend on a lock in the verify hot path.
    static PUBKEY_TABLES: RefCell<PubkeyTableCache> =
        RefCell::new(PubkeyTableCache::new(PUBKEY_CACHE_CAPACITY));
}

/// Compressed-SEC1 identity of a public-key point, used as the cache key.
/// `None` for the point at infinity.
fn compressed_id(q: &Point) -> Option<[u8; 33]> {
    match q.to_affine() {
        AffinePoint::Infinity => None,
        AffinePoint::Coordinates { x, y } => {
            let mut id = [0u8; 33];
            id[0] = if y.is_odd() { 0x03 } else { 0x02 };
            id[1..].copy_from_slice(&x.to_be_bytes());
            Some(id)
        }
    }
}

/// The shared tail of verification once a Q table exists: compute
/// `u1 = z/s`, `u2 = r/s`, evaluate `u1*G + u2*Q` by interleaved wNAF, and
/// compare the result's x-coordinate against `r` without leaving Jacobian
/// coordinates.
fn verify_prepared(q_table: &OddMultiplesTable, digest: &[u8; 32], sig: &Signature) -> bool {
    let z = Scalar::from_be_bytes_reduced(digest);
    let s_inv = sig.s.invert();
    let u1 = z * s_inv;
    let u2 = sig.r * s_inv;
    let point = mul_table::lincomb_wnaf(&u1, &u2, q_table);
    point.eq_x_scalar(&sig.r)
}

/// Verifies a signature on a 32-byte digest against public key point `q`.
///
/// Accepts only low-S signatures (matching what [`sign`] emits), which rules
/// out the classic `(r, s) → (r, n − s)` malleability used in transaction-id
/// malleation attacks.
///
/// Repeated verifies against the same key on the same thread reuse a cached
/// precomputation table (see [`PUBKEY_CACHE_CAPACITY`]); the verdict is
/// independent of cache state, which [`verify_uncached`] and the
/// equivalence test suite enforce.
pub fn verify(q: &Point, digest: &[u8; 32], sig: &Signature) -> bool {
    if !precheck(q, sig) {
        return false;
    }
    let Some(id) = compressed_id(q) else {
        return false;
    };
    PUBKEY_TABLES.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.get_or_build(&id, q) {
            Some(table) => verify_prepared(table, digest, sig),
            None => false,
        }
    })
}

/// [`verify`] without the per-key table cache: always builds a fresh Q
/// table. The explicit cold path, used by benchmarks and the differential
/// tests that pin cached and uncached verdicts together.
pub fn verify_uncached(q: &Point, digest: &[u8; 32], sig: &Signature) -> bool {
    if !precheck(q, sig) {
        return false;
    }
    match OddMultiplesTable::new(q, mul_table::WINDOW_P) {
        Some(table) => verify_prepared(&table, digest, sig),
        None => false,
    }
}

/// The cheap rejections shared by every verify entry point: zero or
/// high-S components, the point at infinity, and — critically — points
/// not on the curve at all. [`Point::from_affine`] is unchecked, and the
/// cached path keys tables by `(y parity, x)` alone; without the curve
/// check an off-curve point sharing a cached key's parity and x would
/// borrow that key's table and inherit its verdict, while the uncached
/// path computed garbage. Both paths must reject before touching tables
/// so their verdicts (and cache stats) cannot diverge.
pub(crate) fn precheck(q: &Point, sig: &Signature) -> bool {
    !(sig.r.is_zero() || sig.s.is_zero() || sig.s.is_high() || q.is_infinity()) && q.is_on_curve()
}

/// Snapshot of this thread's public-key table cache counters, scraped by
/// `core::telemetry` into the observability registry.
pub fn pubkey_cache_stats() -> PubkeyCacheStats {
    PUBKEY_TABLES.with(|cache| cache.borrow().stats())
}

/// Drops this thread's cached key tables and zeroes the counters. Tests
/// use this to exercise the cold path deterministically.
pub fn reset_pubkey_cache() {
    PUBKEY_TABLES.with(|cache| cache.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use crate::sha256::sha256;

    fn secret(hexstr: &str) -> Scalar {
        Scalar::from_be_bytes(&crate::hex_arr(hexstr)).unwrap()
    }

    fn pubkey(d: &Scalar) -> Point {
        Point::generator().mul(d)
    }

    /// Well-known RFC 6979 secp256k1 test vectors (key 0x1, key n-1).
    #[test]
    fn rfc6979_vector_key1_satoshi() {
        let d = secret("0000000000000000000000000000000000000000000000000000000000000001");
        let digest = sha256(b"Satoshi Nakamoto");
        let k = rfc6979_nonce(&d.to_be_bytes(), &digest);
        assert_eq!(
            hex::encode(&k.to_be_bytes()),
            "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15"
        );
        let sig = sign(&d, &digest).unwrap();
        assert_eq!(
            hex::encode(&sig.r.to_be_bytes()),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            hex::encode(&sig.s.to_be_bytes()),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
        assert!(verify(&pubkey(&d), &digest, &sig));
    }

    #[test]
    fn rfc6979_vector_key1_blade_runner() {
        let d = secret("0000000000000000000000000000000000000000000000000000000000000001");
        let msg: &[u8] =
            b"All those moments will be lost in time, like tears in rain. Time to die...";
        let digest = sha256(msg);
        let k = rfc6979_nonce(&d.to_be_bytes(), &digest);
        assert_eq!(
            hex::encode(&k.to_be_bytes()),
            "38aa22d72376b4dbc472e06c3ba403ee0a394da63fc58d88686c611aba98d6b3"
        );
        let sig = sign(&d, &digest).unwrap();
        assert_eq!(
            hex::encode(&sig.r.to_be_bytes()),
            "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b"
        );
        assert_eq!(
            hex::encode(&sig.s.to_be_bytes()),
            "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21"
        );
    }

    #[test]
    fn rfc6979_vector_key_n_minus_1() {
        let d = secret("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140");
        let digest = sha256(b"Satoshi Nakamoto");
        let k = rfc6979_nonce(&d.to_be_bytes(), &digest);
        assert_eq!(
            hex::encode(&k.to_be_bytes()),
            "33a19b60e25fb6f4435af53a3d42d493644827367e6453928554f43e49aa6f90"
        );
        let sig = sign(&d, &digest).unwrap();
        assert_eq!(
            hex::encode(&sig.r.to_be_bytes()),
            "fd567d121db66e382991534ada77a6bd3106f0a1098c231e47993447cd6af2d0"
        );
        assert_eq!(
            hex::encode(&sig.s.to_be_bytes()),
            "6b39cd0eb1bc8603e159ef5c20a5c8ad685a45b06ce9bebed3f153d10d93bed5"
        );
        assert!(verify(&pubkey(&d), &digest, &sig));
    }

    #[test]
    fn sign_verify_round_trip_many_keys() {
        for seed in 1u64..20 {
            let d = Scalar::from_u64(seed * 7919 + 13);
            let q = pubkey(&d);
            let digest = sha256(&seed.to_le_bytes());
            let sig = sign(&d, &digest).unwrap();
            assert!(verify(&q, &digest, &sig), "seed {seed}");
        }
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let d = Scalar::from_u64(12345);
        let q = pubkey(&d);
        let sig = sign(&d, &sha256(b"paid")).unwrap();
        assert!(!verify(&q, &sha256(b"not paid"), &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let d1 = Scalar::from_u64(111);
        let d2 = Scalar::from_u64(222);
        let digest = sha256(b"msg");
        let sig = sign(&d1, &digest).unwrap();
        assert!(!verify(&pubkey(&d2), &digest, &sig));
    }

    #[test]
    fn verify_rejects_high_s() {
        let d = Scalar::from_u64(999);
        let digest = sha256(b"msg");
        let sig = sign(&d, &digest).unwrap();
        let malleated = Signature {
            r: sig.r,
            s: -sig.s,
        };
        assert!(!verify(&pubkey(&d), &digest, &malleated));
    }

    #[test]
    fn verify_rejects_zero_components() {
        let d = Scalar::from_u64(5);
        let digest = sha256(b"msg");
        let sig = sign(&d, &digest).unwrap();
        assert!(!verify(
            &pubkey(&d),
            &digest,
            &Signature {
                r: Scalar::ZERO,
                s: sig.s
            }
        ));
        assert!(!verify(
            &pubkey(&d),
            &digest,
            &Signature {
                r: sig.r,
                s: Scalar::ZERO
            }
        ));
    }

    #[test]
    fn signing_with_zero_key_fails() {
        assert_eq!(
            sign(&Scalar::ZERO, &[0u8; 32]),
            Err(SignatureError::InvalidSecretKey)
        );
    }

    #[test]
    fn signature_bytes_round_trip() {
        let d = Scalar::from_u64(777);
        let sig = sign(&d, &sha256(b"round trip")).unwrap();
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn signature_from_bytes_rejects_high_s() {
        let d = Scalar::from_u64(777);
        let sig = sign(&d, &sha256(b"x")).unwrap();
        let mut bytes = sig.to_bytes();
        bytes[32..].copy_from_slice(&(-sig.s).to_be_bytes());
        assert_eq!(Signature::from_bytes(&bytes), Err(SignatureError::HighS));
    }

    #[test]
    fn signature_from_bytes_rejects_zero() {
        let bytes = [0u8; 64];
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::OutOfRange)
        );
    }

    /// Pins the `from_bytes` error precedence: range failures (zero or
    /// `>= n`) always win over `HighS`, in every combination where both
    /// could apply. Audit-corpus minimization is byte-stable only if this
    /// ordering never changes.
    #[test]
    fn from_bytes_out_of_range_takes_precedence_over_high_s() {
        let d = Scalar::from_u64(321);
        let sig = sign(&d, &sha256(b"precedence")).unwrap();
        let n_minus_1 = (-Scalar::ONE).to_be_bytes();

        // s >= n: OutOfRange, even though the reduced form of all-ones is
        // a perfectly parseable scalar that could be high.
        let mut bytes = sig.to_bytes();
        bytes[32..].copy_from_slice(&[0xFF; 32]);
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::OutOfRange)
        );

        // r >= n combined with an in-range high s: r's range failure is
        // reported first.
        let mut bytes = [0xFF; 64];
        bytes[32..].copy_from_slice(&n_minus_1);
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::OutOfRange)
        );

        // r = 0 with a high s: zero is a range failure, not HighS.
        let mut bytes = [0u8; 64];
        bytes[32..].copy_from_slice(&n_minus_1);
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::OutOfRange)
        );

        // An in-range high s on its own is still HighS: n - 1 is the
        // largest valid-but-malleable value.
        let mut bytes = sig.to_bytes();
        bytes[32..].copy_from_slice(&n_minus_1);
        assert_eq!(Signature::from_bytes(&bytes), Err(SignatureError::HighS));
    }

    #[test]
    fn recovery_id_byte_round_trip() {
        for byte in 0u8..4 {
            assert_eq!(RecoveryId::from_byte(byte).unwrap().to_byte(), byte);
        }
        assert_eq!(RecoveryId::from_byte(4), None);
        assert_eq!(RecoveryId::from_byte(255), None);
    }

    /// `sign_recoverable` emits the same signature as `sign`, and its hint
    /// names the exact point verification reconstructs: lifting `r` by the
    /// hinted parity must land on `u1·G + u2·Q` itself, not just a point
    /// sharing its x-coordinate.
    #[test]
    fn sign_recoverable_names_the_reconstructed_nonce_point() {
        use crate::field::FieldElement;
        for seed in 1u64..12 {
            let d = Scalar::from_u64(seed * 104_729 + 7);
            let digest = sha256(&seed.to_be_bytes());
            let (sig, rec) = sign_recoverable(&d, &digest).unwrap();
            assert_eq!(sig, sign(&d, &digest).unwrap(), "seed {seed}");
            assert!(!rec.x_overflow, "overflow has probability ~2^-128");

            let x = FieldElement::from_be_bytes(&sig.r.to_be_bytes()).unwrap();
            let y = (x.square() * x + FieldElement::from_u64(7))
                .sqrt()
                .expect("r lifts to the curve");
            let y = if y.is_odd() == rec.y_odd { y } else { -y };
            let lifted = Point::from_affine_checked(x, y).unwrap();

            let z = Scalar::from_be_bytes_reduced(&digest);
            let s_inv = sig.s.invert();
            let reconstructed = Point::generator()
                .mul(&(z * s_inv))
                .add(&pubkey(&d).mul(&(sig.r * s_inv)));
            assert!(reconstructed.equals(&lifted), "seed {seed}");
        }
    }

    /// Off-curve points must be rejected by both verify paths before any
    /// table work — `Point::from_affine` is unchecked, and the cached path
    /// keys tables by (parity, x) alone, so an unvalidated off-curve point
    /// could otherwise borrow an honest key's cached table.
    #[test]
    fn verify_rejects_off_curve_points_on_both_paths() {
        use crate::field::FieldElement;
        let d = Scalar::from_u64(606);
        let digest = sha256(b"off-curve");
        let sig = sign(&d, &digest).unwrap();
        let q = pubkey(&d);
        let AffinePoint::Coordinates { x, y } = q.to_affine() else {
            panic!("finite key");
        };
        // Same x, same y-parity, different y: off the curve by
        // construction (only ±y lift x, and they differ in parity).
        let bad_y = y + FieldElement::from_u64(2);
        let forged = Point::from_affine(x, bad_y);
        assert!(!forged.is_on_curve());
        assert!(!verify(&forged, &digest, &sig));
        assert!(!verify_uncached(&forged, &digest, &sig));
        // The honest key still verifies afterwards (no cache poisoning).
        assert!(verify(&q, &digest, &sig));
    }

    #[test]
    fn deterministic_signing() {
        let d = Scalar::from_u64(42);
        let digest = sha256(b"same message");
        assert_eq!(sign(&d, &digest).unwrap(), sign(&d, &digest).unwrap());
    }

    #[test]
    fn error_display() {
        assert!(!SignatureError::OutOfRange.to_string().is_empty());
        assert!(!SignatureError::HighS.to_string().is_empty());
        assert!(!SignatureError::InvalidSecretKey.to_string().is_empty());
    }
}
