//! Gas metering with an EVM-shaped cost schedule.
//!
//! The BTCFast evaluation's fee claims reduce to a gas table for PayJudger
//! operations, so the schedule mirrors the dominant EVM cost sources:
//! intrinsic transaction cost, calldata bytes, storage reads/writes/deletes,
//! hashing, signature checks, and log emission.

use std::error::Error;
use std::fmt;

/// A quantity of gas.
pub type Gas = u64;

/// Cost schedule (units: gas).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GasSchedule {
    /// Flat cost of any transaction (EVM: 21000).
    pub tx_intrinsic: Gas,
    /// Per calldata byte (EVM charges 16 per nonzero byte; we use a flat 16).
    pub calldata_byte: Gas,
    /// Storage read (EVM cold SLOAD: 2100).
    pub storage_read: Gas,
    /// Storage write to a fresh slot (EVM SSTORE set: 20000).
    pub storage_write_new: Gas,
    /// Storage overwrite (EVM SSTORE reset: 2900).
    pub storage_write_existing: Gas,
    /// Storage delete (refunds exist in the EVM; we charge a small cost).
    pub storage_delete: Gas,
    /// Per stored byte beyond the first 32 of a value.
    pub storage_byte: Gas,
    /// One SHA-256 application over <= 64 bytes (EVM precompile-ish: 60+12/word).
    pub hash_base: Gas,
    /// Per 32-byte word hashed.
    pub hash_word: Gas,
    /// One ECDSA verification (EVM ecrecover precompile: 3000).
    pub ecdsa_verify: Gas,
    /// Emitting a log/event (EVM LOG1 base: 750) plus per-byte below.
    pub log_base: Gas,
    /// Per event data byte (EVM: 8).
    pub log_byte: Gas,
    /// Base cost of verifying one 88-byte PoW header inside a contract
    /// (two SHA-256 compressions + compact-target math; calibrated against
    /// the BTCRelay per-header figure of roughly 60-100k gas when combined
    /// with its storage writes).
    pub header_verify: Gas,
    /// Value transfer initiated by a contract (EVM CALL with value: 9000).
    pub transfer: Gas,
    /// Contract deployment surcharge (EVM create: 32000).
    pub deploy: Gas,
}

impl GasSchedule {
    /// The default EVM-shaped schedule.
    pub fn evm_shaped() -> GasSchedule {
        GasSchedule {
            tx_intrinsic: 21_000,
            calldata_byte: 16,
            storage_read: 2_100,
            storage_write_new: 20_000,
            storage_write_existing: 2_900,
            storage_delete: 5_000,
            storage_byte: 8,
            hash_base: 60,
            hash_word: 12,
            ecdsa_verify: 3_000,
            log_base: 750,
            log_byte: 8,
            header_verify: 3_200,
            transfer: 9_000,
            deploy: 32_000,
        }
    }

    /// Cost of hashing `len` bytes.
    pub fn hash_cost(&self, len: usize) -> Gas {
        self.hash_base + self.hash_word * (len as u64).div_ceil(32)
    }
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule::evm_shaped()
    }
}

/// Raised when a transaction exhausts its gas limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas {
    /// The limit that was exhausted.
    pub limit: Gas,
    /// The charge that pushed past the limit.
    pub attempted: Gas,
}

impl fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of gas: limit {}, attempted charge of {}",
            self.limit, self.attempted
        )
    }
}

impl Error for OutOfGas {}

/// A gas meter: charges against a limit and records usage.
#[derive(Clone, Debug)]
pub struct GasMeter {
    limit: Gas,
    used: Gas,
}

impl GasMeter {
    /// Creates a meter with the given limit.
    pub fn new(limit: Gas) -> GasMeter {
        GasMeter { limit, used: 0 }
    }

    /// Gas consumed so far.
    pub fn used(&self) -> Gas {
        self.used
    }

    /// Gas remaining.
    pub fn remaining(&self) -> Gas {
        self.limit - self.used
    }

    /// The limit.
    pub fn limit(&self) -> Gas {
        self.limit
    }

    /// Charges `amount` gas.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfGas`] if the charge exceeds the remaining budget; the
    /// meter is pinned at the limit so the full limit is billed.
    pub fn charge(&mut self, amount: Gas) -> Result<(), OutOfGas> {
        if amount > self.remaining() {
            self.used = self.limit;
            return Err(OutOfGas {
                limit: self.limit,
                attempted: amount,
            });
        }
        self.used += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn meter_charges_and_reports() {
        let mut meter = GasMeter::new(100);
        meter.charge(30).unwrap();
        assert_eq!(meter.used(), 30);
        assert_eq!(meter.remaining(), 70);
        meter.charge(70).unwrap();
        assert_eq!(meter.remaining(), 0);
    }

    #[test]
    fn out_of_gas_pins_to_limit() {
        let mut meter = GasMeter::new(100);
        meter.charge(90).unwrap();
        let err = meter.charge(20).unwrap_err();
        assert_eq!(err.limit, 100);
        assert_eq!(err.attempted, 20);
        assert_eq!(meter.used(), 100);
        assert_eq!(meter.remaining(), 0);
    }

    #[test]
    fn hash_cost_scales_by_word() {
        let s = GasSchedule::evm_shaped();
        assert_eq!(s.hash_cost(0), s.hash_base);
        assert_eq!(s.hash_cost(1), s.hash_base + s.hash_word);
        assert_eq!(s.hash_cost(32), s.hash_base + s.hash_word);
        assert_eq!(s.hash_cost(33), s.hash_base + 2 * s.hash_word);
        assert_eq!(s.hash_cost(64), s.hash_base + 2 * s.hash_word);
    }

    #[test]
    fn default_is_evm_shaped() {
        assert_eq!(GasSchedule::default(), GasSchedule::evm_shaped());
    }

    #[test]
    fn schedule_orders_match_evm_intuition() {
        let s = GasSchedule::evm_shaped();
        assert!(s.storage_write_new > s.storage_write_existing);
        assert!(s.storage_write_existing > s.storage_read / 2);
        assert!(s.tx_intrinsic > s.ecdsa_verify);
    }

    proptest! {
        #[test]
        fn prop_meter_used_never_exceeds_limit(limit in 0u64..1_000_000,
                                               charges in proptest::collection::vec(0u64..10_000, 0..50)) {
            let mut meter = GasMeter::new(limit);
            for c in charges {
                let _ = meter.charge(c);
            }
            prop_assert!(meter.used() <= limit);
            prop_assert_eq!(meter.remaining(), limit - meter.used());
        }
    }
}
