//! The UTXO set: contextual transaction validation and reversible block
//! application.
//!
//! [`UtxoSet::apply_block`] returns an [`UndoLog`] so that chain
//! reorganizations can roll blocks back exactly — the mechanism a
//! double-spend attack exploits and the `PayJudger` evidence captures.

use crate::amount::Amount;
use crate::block::Block;
use crate::script::ScriptPubKey;
use crate::transaction::{OutPoint, Transaction, TxError};
use btcfast_crypto::keys::Address;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A spendable coin: the output plus metadata needed for maturity checks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Coin {
    /// The output's value.
    pub value: Amount,
    /// The locking script.
    pub script_pubkey: ScriptPubKey,
    /// Height of the block that created the coin.
    pub height: u64,
    /// Whether it came from a coinbase (subject to maturity).
    pub is_coinbase: bool,
}

/// Contextual validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// Input refers to a missing (never existed or already spent) coin.
    MissingCoin(OutPoint),
    /// Coinbase spend before maturity.
    ImmatureCoinbase {
        /// The offending outpoint.
        outpoint: OutPoint,
        /// Height the coin was created.
        created: u64,
        /// Height of the spend attempt.
        spend_height: u64,
    },
    /// Outputs exceed inputs.
    ValueOutOfRange,
    /// Coinbase claims more than subsidy + fees.
    ExcessiveCoinbase {
        /// What the coinbase claimed.
        claimed: Amount,
        /// What it was allowed to claim.
        allowed: Amount,
    },
    /// The transaction is not final at this height (locktime).
    NotFinal,
    /// A structural or script failure.
    Tx(TxError),
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingCoin(op) => write!(f, "missing or spent coin {op}"),
            UtxoError::ImmatureCoinbase {
                outpoint,
                created,
                spend_height,
            } => write!(
                f,
                "coinbase {outpoint} created at {created} spent at {spend_height} before maturity"
            ),
            UtxoError::ValueOutOfRange => write!(f, "outputs exceed inputs"),
            UtxoError::ExcessiveCoinbase { claimed, allowed } => {
                write!(f, "coinbase claims {claimed}, allowed {allowed}")
            }
            UtxoError::NotFinal => write!(f, "transaction locktime not satisfied"),
            UtxoError::Tx(e) => write!(f, "transaction error: {e}"),
        }
    }
}

impl Error for UtxoError {}

impl From<TxError> for UtxoError {
    fn from(e: TxError) -> UtxoError {
        UtxoError::Tx(e)
    }
}

/// Undo information for one applied block.
#[derive(Clone, Debug, Default)]
pub struct UndoLog {
    /// Coins consumed by the block, in consumption order.
    spent: Vec<(OutPoint, Coin)>,
    /// Outpoints created by the block.
    created: Vec<OutPoint>,
}

/// The set of unspent transaction outputs.
#[derive(Clone, Debug, Default)]
pub struct UtxoSet {
    coins: HashMap<OutPoint, Coin>,
    maturity: u64,
}

impl UtxoSet {
    /// Creates an empty set with the given coinbase maturity.
    pub fn new(coinbase_maturity: u64) -> UtxoSet {
        UtxoSet {
            coins: HashMap::new(),
            maturity: coinbase_maturity,
        }
    }

    /// Looks up a coin.
    pub fn coin(&self, outpoint: &OutPoint) -> Option<&Coin> {
        self.coins.get(outpoint)
    }

    /// Number of unspent coins.
    pub fn len(&self) -> usize {
        self.coins.len()
    }

    /// True when no coins exist.
    pub fn is_empty(&self) -> bool {
        self.coins.is_empty()
    }

    /// Total value held by an address (wallet balance scan).
    pub fn balance_of(&self, address: &Address) -> Amount {
        self.coins
            .values()
            .filter_map(|c| match &c.script_pubkey {
                ScriptPubKey::P2pkh(a) if a == address => Some(c.value),
                _ => None,
            })
            .sum()
    }

    /// All spendable outpoints of an address at `height` (excludes immature
    /// coinbases), sorted for determinism.
    pub fn spendable_by(&self, address: &Address, height: u64) -> Vec<(OutPoint, Coin)> {
        let mut coins: Vec<(OutPoint, Coin)> = self
            .coins
            .iter()
            .filter(|(_, c)| match &c.script_pubkey {
                ScriptPubKey::P2pkh(a) => {
                    a == address && (!c.is_coinbase || height >= c.height + self.maturity)
                }
                _ => false,
            })
            .map(|(op, c)| (*op, c.clone()))
            .collect();
        coins.sort_by_key(|(op, _)| *op);
        coins
    }

    /// Validates a non-coinbase transaction against the current set,
    /// returning the fee it pays.
    ///
    /// # Errors
    ///
    /// See [`UtxoError`].
    pub fn validate_transaction(&self, tx: &Transaction, height: u64) -> Result<Amount, UtxoError> {
        tx.check_structure()?;
        if tx.is_coinbase() {
            return Err(UtxoError::Tx(TxError::MisplacedCoinbase));
        }
        if tx.lock_time > height {
            return Err(UtxoError::NotFinal);
        }
        let mut total_in = Amount::ZERO;
        for (index, input) in tx.inputs.iter().enumerate() {
            let coin = self
                .coins
                .get(&input.previous_output)
                .ok_or(UtxoError::MissingCoin(input.previous_output))?;
            if coin.is_coinbase && height < coin.height + self.maturity {
                return Err(UtxoError::ImmatureCoinbase {
                    outpoint: input.previous_output,
                    created: coin.height,
                    spend_height: height,
                });
            }
            tx.verify_input(index, &coin.script_pubkey)?;
            total_in = total_in
                .checked_add(coin.value)
                .ok_or(UtxoError::ValueOutOfRange)?;
        }
        let total_out = tx.total_output();
        total_in
            .checked_sub(total_out)
            .ok_or(UtxoError::ValueOutOfRange)
    }

    /// Validates and applies a single non-coinbase transaction, mutating the
    /// set and returning the fee. Used by miners and mempools to evaluate
    /// chained unconfirmed transactions; block connection goes through
    /// [`UtxoSet::apply_block`].
    ///
    /// # Errors
    ///
    /// See [`UtxoError`]; the set is unchanged on error.
    pub fn apply_transaction(
        &mut self,
        tx: &Transaction,
        height: u64,
    ) -> Result<Amount, UtxoError> {
        let fee = self.validate_transaction(tx, height)?;
        for input in &tx.inputs {
            self.coins.remove(&input.previous_output);
        }
        let mut scratch_undo = UndoLog::default();
        self.add_outputs(tx, height, false, &mut scratch_undo);
        Ok(fee)
    }

    /// Applies a structurally valid block at `height`, returning the undo
    /// log. On error the set is left unchanged.
    ///
    /// # Errors
    ///
    /// See [`UtxoError`]; also enforces the coinbase value rule
    /// (subsidy + fees).
    pub fn apply_block(
        &mut self,
        block: &Block,
        height: u64,
        subsidy: Amount,
    ) -> Result<UndoLog, UtxoError> {
        // Validate first against a scratch copy so failures cannot corrupt
        // the live set.
        let mut scratch = self.clone();
        let undo = scratch.apply_block_inner(block, height, subsidy)?;
        *self = scratch;
        Ok(undo)
    }

    fn apply_block_inner(
        &mut self,
        block: &Block,
        height: u64,
        subsidy: Amount,
    ) -> Result<UndoLog, UtxoError> {
        let mut undo = UndoLog::default();
        let mut total_fees = Amount::ZERO;

        for tx in block.transactions.iter().skip(1) {
            let fee = self.validate_transaction(tx, height)?;
            total_fees = total_fees
                .checked_add(fee)
                .ok_or(UtxoError::ValueOutOfRange)?;
            for input in &tx.inputs {
                let coin = self
                    .coins
                    .remove(&input.previous_output)
                    .expect("validated above");
                undo.spent.push((input.previous_output, coin));
            }
            self.add_outputs(tx, height, false, &mut undo);
        }

        // Coinbase value rule.
        let coinbase = &block.transactions[0];
        let allowed = subsidy
            .checked_add(total_fees)
            .ok_or(UtxoError::ValueOutOfRange)?;
        let claimed = coinbase.total_output();
        if claimed > allowed {
            return Err(UtxoError::ExcessiveCoinbase { claimed, allowed });
        }
        self.add_outputs(coinbase, height, true, &mut undo);

        Ok(undo)
    }

    fn add_outputs(
        &mut self,
        tx: &Transaction,
        height: u64,
        is_coinbase: bool,
        undo: &mut UndoLog,
    ) {
        let txid = tx.txid();
        for (vout, output) in tx.outputs.iter().enumerate() {
            if output.script_pubkey.is_unspendable() {
                continue;
            }
            let outpoint = OutPoint {
                txid,
                vout: vout as u32,
            };
            self.coins.insert(
                outpoint,
                Coin {
                    value: output.value,
                    script_pubkey: output.script_pubkey.clone(),
                    height,
                    is_coinbase,
                },
            );
            undo.created.push(outpoint);
        }
    }

    /// Rolls back a previously applied block using its undo log.
    pub fn undo_block(&mut self, undo: &UndoLog) {
        for outpoint in &undo.created {
            self.coins.remove(outpoint);
        }
        for (outpoint, coin) in undo.spent.iter().rev() {
            self.coins.insert(*outpoint, coin.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockHeader;
    use crate::params::ChainParams;
    use crate::pow::hash_meets_target;
    use crate::transaction::{TxIn, TxOut};
    use btcfast_crypto::keys::KeyPair;
    use btcfast_crypto::Hash256;

    fn sats(v: u64) -> Amount {
        Amount::from_sats(v).unwrap()
    }

    struct Fixture {
        utxo: UtxoSet,
        miner: KeyPair,
        params: ChainParams,
        height: u64,
        prev_hash: Hash256,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                utxo: UtxoSet::new(ChainParams::regtest().coinbase_maturity),
                miner: KeyPair::from_seed(b"miner"),
                params: ChainParams::regtest(),
                height: 0,
                prev_hash: Hash256::ZERO,
            }
        }

        fn mine(&mut self, txs: Vec<Transaction>) -> (Block, UndoLog) {
            self.height += 1;
            let subsidy = sats(self.params.subsidy_at(self.height));
            // Fees accrue to the coinbase in a real miner; keep subsidy-only
            // coinbases here for simplicity.
            let coinbase = Transaction::coinbase(self.height, subsidy, self.miner.address(), b"");
            let mut transactions = vec![coinbase];
            transactions.extend(txs);
            let merkle_root = Block::compute_merkle_root(&transactions);
            let mut header = BlockHeader {
                version: 1,
                prev_hash: self.prev_hash,
                merkle_root,
                time: self.height * 600,
                bits: self.params.pow_limit_bits,
                nonce: 0,
            };
            let target = header.target().unwrap();
            while !hash_meets_target(&header.hash(), &target) {
                header.nonce += 1;
            }
            let block = Block {
                header,
                transactions,
            };
            self.prev_hash = block.hash();
            let undo = self
                .utxo
                .apply_block(&block, self.height, subsidy)
                .expect("valid block");
            (block, undo)
        }

        /// Builds a signed spend of the miner's coinbase from `block`.
        fn spend_coinbase(&self, block: &Block, to: Address, value: Amount) -> Transaction {
            let coinbase = &block.transactions[0];
            let outpoint = OutPoint {
                txid: coinbase.txid(),
                vout: 0,
            };
            let coin_value = coinbase.outputs[0].value;
            let change = coin_value - value - sats(1000); // 1000 sats fee
            let mut tx = Transaction::new(
                vec![TxIn::spend(outpoint)],
                vec![
                    TxOut::payment(value, to),
                    TxOut::payment(change, self.miner.address()),
                ],
            );
            tx.sign_input(0, &self.miner, &coinbase.outputs[0].script_pubkey)
                .unwrap();
            tx
        }
    }

    #[test]
    fn coinbase_creates_coins() {
        let mut fx = Fixture::new();
        let (block, _) = fx.mine(vec![]);
        assert_eq!(fx.utxo.len(), 1);
        assert_eq!(
            fx.utxo.balance_of(&fx.miner.address()),
            block.transactions[0].outputs[0].value
        );
    }

    #[test]
    fn spend_moves_value() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let customer = KeyPair::from_seed(b"customer");
        let pay = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        fx.mine(vec![pay]);
        assert_eq!(fx.utxo.balance_of(&customer.address()), sats(1_000_000));
    }

    #[test]
    fn fee_computed() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let customer = KeyPair::from_seed(b"customer");
        let pay = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        let fee = fx.utxo.validate_transaction(&pay, 2).unwrap();
        assert_eq!(fee, sats(1000));
    }

    #[test]
    fn double_spend_within_set_rejected() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let customer = KeyPair::from_seed(b"customer");
        let pay1 = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        fx.mine(vec![pay1]);
        // Second spend of the same coinbase — coin is gone.
        let pay2 = fx.spend_coinbase(&b1, customer.address(), sats(2_000_000));
        let err = fx.utxo.validate_transaction(&pay2, fx.height + 1);
        assert!(matches!(err, Err(UtxoError::MissingCoin(_))));
    }

    #[test]
    fn missing_coin_rejected() {
        let fx = Fixture::new();
        let ghost = OutPoint {
            txid: Hash256([7; 32]),
            vout: 0,
        };
        let key = KeyPair::from_seed(b"x");
        let mut tx = Transaction::new(
            vec![TxIn::spend(ghost)],
            vec![TxOut::payment(sats(1), key.address())],
        );
        tx.sign_input(0, &key, &ScriptPubKey::P2pkh(key.address()))
            .unwrap();
        assert_eq!(
            fx.utxo.validate_transaction(&tx, 1),
            Err(UtxoError::MissingCoin(ghost))
        );
    }

    #[test]
    fn immature_coinbase_rejected() {
        let mut fx = Fixture::new();
        fx.utxo = UtxoSet::new(100); // long maturity
        let (b1, _) = fx.mine(vec![]);
        let customer = KeyPair::from_seed(b"customer");
        let pay = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        let err = fx.utxo.validate_transaction(&pay, 2);
        assert!(matches!(err, Err(UtxoError::ImmatureCoinbase { .. })));
        // Mature later.
        assert!(fx.utxo.validate_transaction(&pay, 101).is_ok());
    }

    #[test]
    fn outputs_exceeding_inputs_rejected() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let coinbase = &b1.transactions[0];
        let outpoint = OutPoint {
            txid: coinbase.txid(),
            vout: 0,
        };
        let mut tx = Transaction::new(
            vec![TxIn::spend(outpoint)],
            vec![TxOut::payment(
                coinbase.outputs[0].value + sats(1),
                fx.miner.address(),
            )],
        );
        tx.sign_input(0, &fx.miner, &coinbase.outputs[0].script_pubkey)
            .unwrap();
        assert_eq!(
            fx.utxo.validate_transaction(&tx, 2),
            Err(UtxoError::ValueOutOfRange)
        );
    }

    #[test]
    fn locktime_enforced() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let customer = KeyPair::from_seed(b"customer");
        let mut pay = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        pay.lock_time = 100;
        // Witness must be refreshed since lock_time changed the sighash.
        let coinbase = &b1.transactions[0];
        pay.sign_input(0, &fx.miner, &coinbase.outputs[0].script_pubkey)
            .unwrap();
        assert_eq!(
            fx.utxo.validate_transaction(&pay, 2),
            Err(UtxoError::NotFinal)
        );
        assert!(fx.utxo.validate_transaction(&pay, 100).is_ok());
    }

    #[test]
    fn undo_restores_exact_state() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let before = fx.utxo.clone();
        let customer = KeyPair::from_seed(b"customer");
        let pay = fx.spend_coinbase(&b1, customer.address(), sats(1_000_000));
        let (_, undo) = fx.mine(vec![pay]);
        assert_ne!(fx.utxo.len(), before.len());
        fx.utxo.undo_block(&undo);
        assert_eq!(fx.utxo.coins, before.coins);
    }

    #[test]
    fn excessive_coinbase_rejected() {
        let fx = Fixture::new();
        let params = ChainParams::regtest();
        let coinbase =
            Transaction::coinbase(1, sats(params.subsidy_at(1) + 1), fx.miner.address(), b"");
        let transactions = vec![coinbase];
        let merkle_root = Block::compute_merkle_root(&transactions);
        let mut header = BlockHeader {
            version: 1,
            prev_hash: Hash256::ZERO,
            merkle_root,
            time: 600,
            bits: params.pow_limit_bits,
            nonce: 0,
        };
        let target = header.target().unwrap();
        while !hash_meets_target(&header.hash(), &target) {
            header.nonce += 1;
        }
        let block = Block {
            header,
            transactions,
        };
        let mut utxo = fx.utxo.clone();
        let err = utxo.apply_block(&block, 1, sats(params.subsidy_at(1)));
        assert!(matches!(err, Err(UtxoError::ExcessiveCoinbase { .. })));
        // Failed application left the set untouched.
        assert_eq!(utxo.len(), fx.utxo.len());
    }

    #[test]
    fn op_return_outputs_not_stored() {
        let mut fx = Fixture::new();
        let (b1, _) = fx.mine(vec![]);
        let coinbase = &b1.transactions[0];
        let outpoint = OutPoint {
            txid: coinbase.txid(),
            vout: 0,
        };
        let mut tx = Transaction::new(
            vec![TxIn::spend(outpoint)],
            vec![
                TxOut::data(b"payment intent".to_vec()),
                TxOut::payment(coinbase.outputs[0].value - sats(500), fx.miner.address()),
            ],
        );
        tx.sign_input(0, &fx.miner, &coinbase.outputs[0].script_pubkey)
            .unwrap();
        let before = fx.utxo.len();
        fx.mine(vec![tx]);
        // One coin spent, one payment + one coinbase created; OP_RETURN skipped.
        assert_eq!(fx.utxo.len(), before - 1 + 2);
    }

    #[test]
    fn spendable_by_respects_maturity_and_sorts() {
        let mut fx = Fixture::new();
        fx.utxo = UtxoSet::new(100);
        fx.mine(vec![]);
        fx.mine(vec![]);
        let addr = fx.miner.address();
        assert!(fx.utxo.spendable_by(&addr, 3).is_empty());
        let mature = fx.utxo.spendable_by(&addr, 101);
        assert_eq!(mature.len(), 1); // only height-1 coinbase matured
        assert_eq!(fx.utxo.spendable_by(&addr, 200).len(), 2);
    }
}
