//! A 256-bit unsigned integer, used for proof-of-work targets and
//! accumulated chainwork.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Shl, Shr, Sub};

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
///
/// Supports exactly the operations Bitcoin's consensus code needs: compact
/// target decoding, `work = 2^256 / (target + 1)` per header, and chainwork
/// accumulation/comparison.
///
/// ```
/// use btcfast_btcsim::U256;
///
/// let a = U256::from_u64(1) << 200;
/// let b = U256::from_u64(1) << 199;
/// assert!(a > b);
/// assert_eq!(b + b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a `u64`.
    pub fn from_u64(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[3 - i] = u64::from_be_bytes(word);
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Index of the highest set bit (0-based), or `None` for zero.
    pub fn highest_bit(&self) -> Option<u32> {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return Some(i as u32 * 64 + 63 - self.0[i].leading_zeros());
            }
        }
        None
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            None
        } else {
            Some(U256(out))
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        if borrow != 0 {
            None
        } else {
            Some(U256(out))
        }
    }

    /// Saturating multiplication by a `u64`.
    pub fn saturating_mul_u64(&self, rhs: u64) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (i, limb) in out.iter_mut().enumerate() {
            let t = (self.0[i] as u128) * (rhs as u128) + carry;
            *limb = t as u64;
            carry = t >> 64;
        }
        if carry != 0 {
            U256::MAX
        } else {
            U256(out)
        }
    }

    /// Division by a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_u64(&self, rhs: u64) -> U256 {
        assert_ne!(rhs, 0, "division by zero");
        let mut out = [0u64; 4];
        let mut rem = 0u128;
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.0[i] as u128;
            out[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        U256(out)
    }

    /// Long division by another `U256`, returning the quotient.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &U256) -> (U256, U256) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (U256::ZERO, *self);
        }
        let shift = self.highest_bit().expect("self >= rhs > 0") as i32
            - rhs.highest_bit().expect("rhs > 0") as i32;
        let mut quotient = U256::ZERO;
        let mut remainder = *self;
        let mut divisor = *rhs << shift as u32;
        for i in (0..=shift).rev() {
            if let Some(d) = remainder.checked_sub(&divisor) {
                remainder = d;
                quotient.0[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            divisor = divisor >> 1;
        }
        (quotient, remainder)
    }

    /// Bitcoin's per-header work: `2^256 / (target + 1)`, computed as
    /// `(~target / (target + 1)) + 1` to stay inside 256 bits.
    pub fn work_from_target(target: &U256) -> U256 {
        if target == &U256::MAX {
            return U256::ONE;
        }
        let not_target = U256([!target.0[0], !target.0[1], !target.0[2], !target.0[3]]);
        let target_plus_1 = target
            .checked_add(&U256::ONE)
            .expect("target < MAX checked above");
        let (q, _) = not_target.div_rem(&target_plus_1);
        q.checked_add(&U256::ONE).unwrap_or(U256::MAX)
    }

    /// Approximate conversion to `f64` (for statistics/plots, not consensus).
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in (0..4).rev() {
            acc = acc * 2f64.powi(64) + self.0[i] as f64;
        }
        acc
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(&rhs).expect("U256 addition overflow")
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(&rhs).expect("U256 subtraction underflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(&rhs).0
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            *limb = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &U256) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &U256) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for i in (0..4).rev() {
            write!(f, "{:016x}", self.0[i])?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> U256 {
        U256::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_is_big_endian_semantics() {
        let small = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        let big = U256([0, 0, 0, 1]);
        assert!(big > small);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U256([5, 6, 7, 8]);
        let b = U256([1, 2, 3, 4]);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn overflow_detected() {
        assert!(U256::MAX.checked_add(&U256::ONE).is_none());
        assert!(U256::ZERO.checked_sub(&U256::ONE).is_none());
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!((one << 64).0, [0, 1, 0, 0]);
        assert_eq!((one << 255) >> 255, one);
        assert_eq!(one << 256, U256::ZERO);
        assert_eq!((one << 64) >> 64, one);
        assert_eq!(U256([0, 0, 0, 1]) >> 192, one);
    }

    #[test]
    fn highest_bit() {
        assert_eq!(U256::ZERO.highest_bit(), None);
        assert_eq!(U256::ONE.highest_bit(), Some(0));
        assert_eq!((U256::ONE << 200).highest_bit(), Some(200));
        assert_eq!(U256::MAX.highest_bit(), Some(255));
    }

    #[test]
    fn div_u64_matches_div_rem() {
        let v = U256([0x123456789abcdef0, 0xfedcba9876543210, 0x1111, 0]);
        let d = 12345u64;
        assert_eq!(v.div_u64(d), v.div_rem(&U256::from_u64(d)).0);
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = U256::from_u64(100).div_rem(&U256::from_u64(7));
        assert_eq!(q, U256::from_u64(14));
        assert_eq!(r, U256::from_u64(2));
    }

    #[test]
    fn div_rem_large() {
        let a = U256::ONE << 200;
        let b = U256::ONE << 100;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, U256::ONE << 100);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U256::ONE.div_rem(&U256::ZERO);
    }

    #[test]
    fn work_from_max_target_is_one() {
        assert_eq!(U256::work_from_target(&U256::MAX), U256::ONE);
    }

    #[test]
    fn work_doubles_when_target_halves() {
        // work = floor(2^256 / (target+1)):
        // target 2^224 → 2^32 - 1; target 2^223 → 2^33 - 1.
        let t1 = U256::ONE << 224;
        let t2 = U256::ONE << 223;
        let w1 = U256::work_from_target(&t1);
        let w2 = U256::work_from_target(&t2);
        assert_eq!(w1, (U256::ONE << 32) - U256::ONE);
        assert_eq!(w2, (U256::ONE << 33) - U256::ONE);
        // Halving the target (roughly) doubles the work.
        assert_eq!(w2, w1.saturating_mul_u64(2) + U256::ONE);
    }

    #[test]
    fn work_from_target_zero() {
        // Target 0 → work = 2^256/1, clamped into range as 2^256-ish; our
        // formula gives ~MAX/1 + 1 → saturates at MAX.
        let w = U256::work_from_target(&U256::ZERO);
        assert_eq!(w, U256::MAX);
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn to_f64_lossy_small() {
        assert_eq!(U256::from_u64(12345).to_f64_lossy(), 12345.0);
        let big = U256::ONE << 64;
        assert_eq!(big.to_f64_lossy(), 2f64.powi(64));
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(U256::from_u64(10).saturating_mul_u64(5), U256::from_u64(50));
        assert_eq!(U256::MAX.saturating_mul_u64(2), U256::MAX);
    }

    fn arb_u256() -> impl Strategy<Value = U256> {
        any::<[u64; 4]>().prop_map(U256)
    }

    proptest! {
        #[test]
        fn prop_div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            // a = q*b + r — verify via repeated addition only when q is small,
            // otherwise verify through the identity with saturating ops.
            if let Some(qb) = checked_mul(&q, &b) {
                prop_assert_eq!(qb.checked_add(&r).unwrap(), a);
            }
        }

        #[test]
        fn prop_shift_round_trip(a in arb_u256(), s in 0u32..255) {
            let masked = (a >> s) << s;
            // Shifting down then up clears the low bits only.
            prop_assert_eq!(masked >> s, a >> s);
        }

        #[test]
        fn prop_be_bytes_round_trip(a in arb_u256()) {
            prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
        }

        #[test]
        fn prop_ord_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
            match a.cmp(&b) {
                std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
                _ => prop_assert!(a.checked_sub(&b).is_some()),
            }
        }
    }

    /// Full 256x256 checked multiply used only by the division property test.
    fn checked_mul(a: &U256, b: &U256) -> Option<U256> {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = (a.0[i] as u128) * (b.0[j] as u128) + (out[i + j] as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + 4] = carry as u64;
        }
        if out[4..].iter().any(|&l| l != 0) {
            None
        } else {
            Some(U256([out[0], out[1], out[2], out[3]]))
        }
    }
}
