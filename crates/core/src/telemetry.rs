//! Scrapes every subsystem's cheap stat structs into one obs [`Registry`].
//!
//! Each substrate keeps its own plain counter struct next to its hot path
//! (mempool admissions, chain connects, sig-cache hits, PSC journal
//! high-water, verifier cache behavior, transport retransmissions) — no
//! substrate depends on the metrics layer. This module is the one place
//! that knows all their shapes and publishes them under stable
//! `btcfast_*` names, so `harness trace` and E12 can dump a single
//! Prometheus-style snapshot for a whole session.
//!
//! Everything is published as a **gauge** (a scraped instantaneous
//! snapshot of a monotonic source), so re-scraping the same session is
//! idempotent rather than double-counting.

use crate::chaos::ChaosSession;
use crate::engine::LoadReport;
use crate::session::FastPaySession;
use btcfast_netsim::transport::TransportStats;
use btcfast_obs::Registry;

/// Publishes every observable counter of `session` into `registry`.
///
/// Covers the BTC side (chain connect/reorg stats, mempool admissions and
/// depth, this thread's signature-cache behavior), the PSC side (height,
/// total gas, journal high-water), and the merchant's accelerated
/// evidence-verifier cache.
pub fn publish_session(registry: &Registry, session: &FastPaySession) {
    let chain = session.btc.stats();
    registry.set_gauge("btcfast_btc_blocks_connected", chain.blocks_connected);
    registry.set_gauge("btcfast_btc_txs_connected", chain.txs_connected);
    registry.set_gauge("btcfast_btc_reorgs", chain.reorgs);
    registry.set_gauge("btcfast_btc_side_chain_blocks", chain.side_chain_blocks);
    registry.set_gauge("btcfast_btc_height", session.btc.height());

    let mempool = session.mempool.stats();
    registry.set_gauge("btcfast_mempool_admitted", mempool.admitted);
    registry.set_gauge("btcfast_mempool_rejected", mempool.rejected);
    registry.set_gauge("btcfast_mempool_conflicts", mempool.conflicts);
    registry.set_gauge("btcfast_mempool_depth", session.mempool.len() as u64);

    // The signature cache is per-thread (shards never share one); this
    // scrape reports the calling thread's view.
    let sig = btcfast_btcsim::utxo::sig_cache_stats();
    registry.set_gauge("btcfast_sig_cache_hits", sig.hits);
    registry.set_gauge("btcfast_sig_cache_misses", sig.misses);
    registry.set_gauge("btcfast_sig_cache_resets", sig.resets);
    registry.set_gauge("btcfast_sig_cache_primed", sig.primed);

    // Batch-ECDSA verification work (accumulated in the shared verifier,
    // so it covers every thread that batched through this session).
    let batch = session.verifier().sig_batch_stats();
    registry.set_gauge("btcfast_batch_verify_items", batch.items);
    registry.set_gauge("btcfast_batch_verify_hinted", batch.hinted);
    registry.set_gauge("btcfast_batch_verify_oracle_checks", batch.oracle_checks);
    registry.set_gauge("btcfast_batch_verify_msm_evals", batch.msm_evals);
    registry.set_gauge("btcfast_batch_verify_bisections", batch.bisections);

    // So is the public-key precomputation-table cache inside ecdsa::verify.
    let tables = btcfast_crypto::ecdsa::pubkey_cache_stats();
    registry.set_gauge("btcfast_pubkey_table_hits", tables.hits);
    registry.set_gauge("btcfast_pubkey_table_misses", tables.misses);
    registry.set_gauge("btcfast_pubkey_table_insertions", tables.insertions);
    registry.set_gauge("btcfast_pubkey_table_evictions", tables.evictions);

    registry.set_gauge("btcfast_psc_height", session.psc.height());
    registry.set_gauge("btcfast_psc_gas_used", session.psc.total_gas_used());
    registry.set_gauge(
        "btcfast_psc_journal_high_water",
        session.psc.journal_high_water() as u64,
    );

    let cache = session.verifier().cache_stats();
    registry.set_gauge("btcfast_verify_full_hits", cache.full_hits);
    registry.set_gauge("btcfast_verify_prefix_hits", cache.prefix_hits);
    registry.set_gauge("btcfast_verify_misses", cache.misses);
    registry.set_gauge("btcfast_verify_insertions", cache.insertions);
    registry.set_gauge("btcfast_verify_evictions", cache.evictions);
    registry.set_gauge("btcfast_verify_headers_verified", cache.headers_verified);

    registry.set_gauge("btcfast_trace_dropped_events", session.trace_dropped());
}

/// Publishes reliable-transport counters into `registry`.
pub fn publish_transport(registry: &Registry, stats: &TransportStats) {
    registry.set_gauge("btcfast_transport_sent", stats.sent);
    registry.set_gauge("btcfast_transport_retransmissions", stats.retransmissions);
    registry.set_gauge("btcfast_transport_delivered", stats.delivered);
    registry.set_gauge("btcfast_transport_failed", stats.failed);
    registry.set_gauge("btcfast_transport_dedup_drops", stats.duplicates_dropped);
    registry.set_gauge(
        "btcfast_transport_backoff_wait_us",
        stats.backoff_wait_micros,
    );
    registry.set_gauge("btcfast_transport_dedup_high_water", stats.dedup_high_water);
    registry.set_gauge(
        "btcfast_transport_pending_high_water",
        stats.pending_high_water,
    );
    registry.set_gauge("btcfast_transport_dedup_evictions", stats.dedup_evictions);
    registry.set_gauge("btcfast_transport_resolved_retired", stats.resolved_retired);
}

/// Publishes the durable-store and recovery-journal counters of a
/// [`RecoveryManager`] into `registry`.
pub fn publish_recovery<S: btcfast_store::Storage>(
    registry: &Registry,
    recovery: &crate::recovery::RecoveryManager<S>,
) {
    let stats = recovery.stats();
    registry.set_gauge("btcfast_recovery_recoveries", stats.recoveries);
    registry.set_gauge("btcfast_recovery_replayed_records", stats.replayed_records);
    registry.set_gauge("btcfast_recovery_pending_resumed", stats.pending_resumed);
    registry.set_gauge("btcfast_recovery_journal_appends", stats.journal_appends);
    registry.set_gauge("btcfast_recovery_checkpoints", stats.checkpoints);
    registry.set_gauge(
        "btcfast_recovery_pending_intents",
        recovery.pending().count() as u64,
    );
    registry.set_gauge(
        "btcfast_recovery_payments_tracked",
        recovery.ledger().payments.len() as u64,
    );

    let wal = recovery.wal_stats();
    registry.set_gauge("btcfast_wal_appends", wal.appends);
    registry.set_gauge("btcfast_wal_bytes_appended", wal.bytes_appended);
    registry.set_gauge("btcfast_wal_recoveries", wal.recoveries);
    registry.set_gauge("btcfast_wal_records_recovered", wal.records_recovered);
    registry.set_gauge("btcfast_wal_truncated_bytes", wal.truncated_bytes);
    registry.set_gauge("btcfast_wal_duplicates_skipped", wal.duplicates_skipped);
}

/// Publishes an open-loop load run: aggregate offered/served/shed
/// counters plus every shard's admission depth, high-water, and shed
/// accounting under stable per-shard names.
pub fn publish_load(registry: &Registry, report: &LoadReport) {
    registry.set_gauge("btcfast_load_offered", report.offered as u64);
    registry.set_gauge("btcfast_load_executed", report.executed as u64);
    registry.set_gauge("btcfast_load_accepted", report.total_accepted() as u64);
    registry.set_gauge("btcfast_load_shed", report.shed_count() as u64);
    registry.set_gauge("btcfast_load_makespan_us", report.makespan.as_micros());
    // Residue is u128 only because escrow values are; a non-zero residue
    // is a conservation bug, so saturating the gauge is fine.
    registry.set_gauge(
        "btcfast_load_escrow_residue",
        u64::try_from(report.escrow_residue()).unwrap_or(u64::MAX),
    );
    for outcome in &report.outcomes {
        let shard = outcome.shard;
        let stats = &outcome.admission;
        registry.set_gauge(
            &format!("btcfast_admission_shard{shard}_admitted"),
            stats.admitted,
        );
        registry.set_gauge(
            &format!("btcfast_admission_shard{shard}_depth"),
            stats.depth as u64,
        );
        registry.set_gauge(
            &format!("btcfast_admission_shard{shard}_high_water"),
            stats.high_water as u64,
        );
        registry.set_gauge(
            &format!("btcfast_admission_shard{shard}_shed"),
            stats.shed(),
        );
    }
}

/// Publishes a chaos session: the wrapped protocol session plus its
/// transport fabric.
pub fn publish_chaos(registry: &Registry, chaos: &ChaosSession) {
    publish_session(registry, &chaos.session);
    publish_transport(registry, &chaos.transport_stats());
    publish_recovery(registry, chaos.recovery());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;

    #[test]
    fn scrape_publishes_every_subsystem_under_stable_names() {
        let mut session = FastPaySession::new(SessionConfig::default(), 31);
        let report = session.run_fast_payment(1_000_000).unwrap();
        assert!(report.accepted);

        let registry = Registry::new();
        publish_session(&registry, &session);
        let text = registry.render_prometheus();
        for name in [
            "btcfast_btc_blocks_connected",
            "btcfast_mempool_admitted",
            "btcfast_psc_gas_used",
            "btcfast_psc_journal_high_water",
            "btcfast_verify_headers_verified",
            "btcfast_sig_cache_hits",
            "btcfast_sig_cache_primed",
            "btcfast_batch_verify_items",
            "btcfast_batch_verify_msm_evals",
            "btcfast_pubkey_table_hits",
            "btcfast_pubkey_table_misses",
            "btcfast_pubkey_table_insertions",
            "btcfast_pubkey_table_evictions",
            "btcfast_trace_dropped_events",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // The accepted payment verified at least one signature through the
        // per-key table cache on this thread.
        let tables = btcfast_crypto::ecdsa::pubkey_cache_stats();
        assert!(tables.hits + tables.misses >= 1, "verify used the cache");
        // Provisioning mined blocks and the accepted payment is pooled.
        assert!(registry.gauge("btcfast_btc_blocks_connected").get() >= 3);
        assert_eq!(registry.gauge("btcfast_mempool_depth").get(), 1);
        assert_eq!(registry.gauge("btcfast_mempool_admitted").get(), 1);

        // Re-scraping is idempotent: gauges snapshot, they don't accumulate.
        publish_session(&registry, &session);
        assert_eq!(registry.gauge("btcfast_mempool_admitted").get(), 1);
    }

    #[test]
    fn load_scrape_publishes_aggregate_and_per_shard_admission_gauges() {
        use crate::admission::{AdmissionConfig, SheddingPolicy};
        use crate::engine::{EngineConfig, LoadArrival, PaymentEngine};
        use btcfast_netsim::time::SimTime;

        let engine = PaymentEngine::new(EngineConfig {
            session: SessionConfig::eos_flavored(),
            shards: 2,
            batch_size: 4,
            ..EngineConfig::default()
        });
        let schedule: Vec<LoadArrival> = (0..16)
            .map(|i| LoadArrival {
                at: SimTime::from_millis(i * 5),
                shard: (i % 2) as usize,
                payments: 1,
            })
            .collect();
        let report = engine
            .run_load(
                41,
                &schedule,
                AdmissionConfig::bounded(2, SheddingPolicy::RejectNew),
            )
            .unwrap();
        assert!(report.shed_count() > 0, "the burst must overload");

        let registry = Registry::new();
        publish_load(&registry, &report);
        assert_eq!(registry.gauge("btcfast_load_offered").get(), 16);
        assert_eq!(
            registry.gauge("btcfast_load_executed").get()
                + registry.gauge("btcfast_load_shed").get(),
            16
        );
        assert_eq!(registry.gauge("btcfast_load_escrow_residue").get(), 0);
        for shard in 0..2 {
            assert_eq!(
                registry
                    .gauge(&format!("btcfast_admission_shard{shard}_depth"))
                    .get(),
                0,
                "queues drain by the end of the run"
            );
            assert!(
                registry
                    .gauge(&format!("btcfast_admission_shard{shard}_high_water"))
                    .get()
                    >= 1
            );
        }
        let shed: u64 = (0..2)
            .map(|shard| {
                registry
                    .gauge(&format!("btcfast_admission_shard{shard}_shed"))
                    .get()
            })
            .sum();
        assert_eq!(shed, report.shed_count() as u64);
    }

    #[test]
    fn chaos_scrape_includes_transport_counters() {
        use crate::robustness::ChaosConfig;
        use btcfast_netsim::faults::FaultPlan;

        let mut chaos = ChaosSession::new(
            SessionConfig::default(),
            ChaosConfig::default(),
            FaultPlan::new(),
            32,
        );
        chaos.run_fast_payment_chaos(1_000_000).unwrap();
        let registry = Registry::new();
        publish_chaos(&registry, &chaos);
        assert!(registry.gauge("btcfast_transport_sent").get() >= 3);
        assert_eq!(registry.gauge("btcfast_transport_failed").get(), 0);
        // The journal saw escrow-open plus the payment's five steps, each
        // a Begin + Done append.
        assert!(registry.gauge("btcfast_recovery_journal_appends").get() >= 10);
        assert_eq!(registry.gauge("btcfast_recovery_pending_intents").get(), 0);
        assert_eq!(registry.gauge("btcfast_recovery_payments_tracked").get(), 1);
        assert!(registry.gauge("btcfast_wal_appends").get() >= 10);
        assert!(registry.gauge("btcfast_wal_bytes_appended").get() > 0);
    }

    #[test]
    fn crash_restart_surfaces_in_recovery_gauges() {
        use crate::chaos::MERCHANT_NODE;
        use crate::robustness::ChaosConfig;
        use btcfast_netsim::faults::FaultPlan;
        use btcfast_netsim::time::SimTime;

        let mut plan = FaultPlan::new();
        plan.crash_restart_at(MERCHANT_NODE, SimTime::from_millis(25));
        let mut chaos =
            ChaosSession::new(SessionConfig::default(), ChaosConfig::default(), plan, 33);
        chaos.run_fast_payment_chaos(1_000_000).unwrap();
        assert!(chaos.recoveries() >= 1);
        let registry = Registry::new();
        publish_chaos(&registry, &chaos);
        assert!(registry.gauge("btcfast_recovery_recoveries").get() >= 1);
        assert!(registry.gauge("btcfast_recovery_replayed_records").get() >= 1);
    }
}
