//! The off-chain accelerated evidence verifier: parallel PoW checking plus
//! an LRU memo of already-verified header-segment prefixes.
//!
//! The dispute hot path re-verifies the same header runs over and over:
//! overlapping disputes share an anchor, and tip-extension evidence is the
//! previous segment plus a few new headers. [`EvidenceVerifier`] exploits
//! both:
//!
//! * **Parallelism** — header hashing, compact-bits decoding, and per-header
//!   work computation are independent; large segments fan out over a
//!   [`WorkerPool`] of scoped `std::thread` workers.
//! * **Memoization** — successfully verified segments are cached in an LRU
//!   keyed by `(anchor, tip_hash, len, min_target)`. A re-submission is a
//!   cache hit (no hashing at all); a tip extension only verifies the new
//!   delta headers.
//!
//! Entries additionally pin the exact serialized header bytes, and lookups
//! compare them, so a forged segment that collides on `(anchor, tip, len)`
//! but differs anywhere in the middle can never borrow a cached verdict:
//! the verifier's result is **byte-identical** to the sequential cold
//! verifier ([`HeaderSegment::verify`]) for every input — same `Ok` work,
//! same first error, same error index. `cache_equivalence.rs` proves this
//! by property test.
//!
//! This is strictly a client/merchant-side accelerator. The on-chain
//! contract path charges full gas for every header regardless of any
//! cache (see [`crate::evidence::verify_on_chain_with`]): gas meters the
//! work an L1 validator would do, not the work our optimized client did.

use btcfast_btcsim::block::BlockHeader;
use btcfast_btcsim::pow::hash_meets_target;
use btcfast_btcsim::spv::{HeaderSegment, SpvError, SpvEvidence};
use btcfast_btcsim::u256::U256;
use btcfast_crypto::batch::{verify_batch, BatchItem, BatchOutcome, BatchStats};
use btcfast_crypto::{Hash256, WorkerPool};
use btcfast_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Serialized size of one [`BlockHeader`].
const HEADER_BYTES: usize = 88;

/// Tuning knobs for [`EvidenceVerifier`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifierConfig {
    /// Worker threads for batch hashing; `0` means host parallelism.
    pub threads: usize,
    /// Maximum number of memoized segments before LRU eviction.
    pub cache_capacity: usize,
}

impl Default for VerifierConfig {
    fn default() -> VerifierConfig {
        VerifierConfig {
            threads: 0,
            cache_capacity: 128,
        }
    }
}

/// Counters describing how the memo behaved (observability + tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full-segment hits: verification answered without hashing anything.
    pub full_hits: u64,
    /// Prefix hits: only the tip-extension delta was verified.
    pub prefix_hits: u64,
    /// Cold verifications (no reusable prefix).
    pub misses: u64,
    /// Successful verifications stored.
    pub insertions: u64,
    /// Entries dropped by the LRU policy.
    pub evictions: u64,
    /// Headers actually PoW-verified (cache hits skip these). Saturating.
    pub headers_verified: u64,
}

/// Live metric handles a host can attach to a verifier so the registry
/// sees cache behavior without polling [`EvidenceVerifier::cache_stats`].
/// Bumping these `Arc<Counter>`s is the *instrumented* hot path the
/// `header_verify_warm_6_instr` bench family measures against its plain
/// twin.
#[derive(Clone, Debug)]
pub struct VerifyMetrics {
    /// Mirrors [`CacheStats::full_hits`].
    pub full_hits: Arc<Counter>,
    /// Mirrors [`CacheStats::prefix_hits`].
    pub prefix_hits: Arc<Counter>,
    /// Mirrors [`CacheStats::misses`].
    pub misses: Arc<Counter>,
    /// Mirrors [`CacheStats::headers_verified`].
    pub headers_verified: Arc<Counter>,
}

impl VerifyMetrics {
    /// Creates the standard `payjudger_*` counters in `registry`.
    pub fn register(registry: &Registry) -> VerifyMetrics {
        VerifyMetrics {
            full_hits: registry.counter("payjudger_cache_full_hits_total"),
            prefix_hits: registry.counter("payjudger_cache_prefix_hits_total"),
            misses: registry.counter("payjudger_cache_misses_total"),
            headers_verified: registry.counter("payjudger_headers_verified_total"),
        }
    }
}

/// One memoized verified segment.
#[derive(Clone, Debug)]
struct CacheEntry {
    /// Hash of the last header — the `(anchor, tip_hash, len)` identity.
    tip: Hash256,
    /// The exact serialized headers, pinned so lookups are byte-exact.
    bytes: Box<[u8]>,
    /// Accumulated work of the verified segment.
    work: U256,
    /// LRU timestamp (monotonic use counter).
    stamp: u64,
}

/// Buckets share `(anchor, header count, min_target)`; entries inside a
/// bucket are distinguished by their bytes (equivalently, their tip hash).
type BucketKey = (Hash256, u32, [u8; 32]);

#[derive(Debug, Default)]
struct SegmentCache {
    buckets: HashMap<BucketKey, Vec<CacheEntry>>,
    len: usize,
    clock: u64,
    stats: CacheStats,
}

impl SegmentCache {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Full-segment lookup: the cached bytes must equal `encoded` exactly.
    fn lookup_full(&mut self, key: &BucketKey, encoded: &[u8]) -> Option<U256> {
        let stamp = self.tick();
        let entry = self
            .buckets
            .get_mut(key)?
            .iter_mut()
            .find(|e| e.bytes.as_ref() == encoded)?;
        entry.stamp = stamp;
        Some(entry.work)
    }

    /// Longest memoized proper prefix of `encoded` under the same anchor
    /// and min-target. Returns `(prefix_len_headers, work, tip)`.
    fn lookup_prefix(
        &mut self,
        anchor: &Hash256,
        min_target: &[u8; 32],
        encoded: &[u8],
    ) -> Option<(usize, U256, Hash256)> {
        let n = encoded.len() / HEADER_BYTES;
        for prefix in (1..n).rev() {
            let key = (*anchor, prefix as u32, *min_target);
            let Some(bucket) = self.buckets.get_mut(&key) else {
                continue;
            };
            if let Some(entry) = bucket
                .iter_mut()
                .find(|e| e.bytes.as_ref() == &encoded[..prefix * HEADER_BYTES])
            {
                let found = (prefix, entry.work, entry.tip);
                entry.stamp = self.clock + 1;
                self.clock += 1;
                return Some(found);
            }
        }
        None
    }

    fn insert(&mut self, key: BucketKey, tip: Hash256, bytes: Box<[u8]>, work: U256, cap: usize) {
        let stamp = self.tick();
        let bucket = self.buckets.entry(key).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.bytes == bytes) {
            existing.stamp = stamp;
            return;
        }
        bucket.push(CacheEntry {
            tip,
            bytes,
            work,
            stamp,
        });
        self.len += 1;
        self.stats.insertions += 1;
        while self.len > cap {
            self.evict_oldest();
        }
    }

    fn evict_oldest(&mut self) {
        let Some((key, pos)) = self
            .buckets
            .iter()
            .flat_map(|(key, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(pos, e)| (e.stamp, (*key, pos)))
            })
            .min_by_key(|(stamp, _)| *stamp)
            .map(|(_, loc)| loc)
        else {
            return;
        };
        let bucket = self.buckets.get_mut(&key).expect("located above");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.len -= 1;
        self.stats.evictions += 1;
    }
}

/// The accelerated (parallel + memoizing) evidence verifier.
///
/// Thread-safe behind `&self`; share one per role (merchant, customer) so
/// every dispute in a session warms the same memo.
#[derive(Debug)]
pub struct EvidenceVerifier {
    pool: WorkerPool,
    cache: Mutex<SegmentCache>,
    capacity: usize,
    /// Optional live metric handles; set once, bumped lock-free.
    metrics: OnceLock<VerifyMetrics>,
    /// Accumulated batch-ECDSA counters across every
    /// [`Self::verify_signature_batch`] call (any thread).
    sig_batch: Mutex<BatchStats>,
}

impl Default for EvidenceVerifier {
    fn default() -> EvidenceVerifier {
        EvidenceVerifier::new(VerifierConfig::default())
    }
}

impl EvidenceVerifier {
    /// Builds a verifier with the given tuning.
    pub fn new(config: VerifierConfig) -> EvidenceVerifier {
        let pool = if config.threads == 0 {
            WorkerPool::with_default_parallelism()
        } else {
            WorkerPool::new(config.threads)
        };
        EvidenceVerifier {
            pool,
            cache: Mutex::new(SegmentCache::default()),
            capacity: config.cache_capacity.max(1),
            metrics: OnceLock::new(),
            sig_batch: Mutex::new(BatchStats::default()),
        }
    }

    /// Verifies a batch of ECDSA signature statements with the randomized
    /// linear-combination verifier (`btcfast_crypto::batch`), accumulating
    /// its work counters for [`Self::sig_batch_stats`].
    ///
    /// The verdict — valid set and named culprits — is exactly what a
    /// sequential `ecdsa::verify` loop over `items` would produce; only the
    /// cost differs. `seed` drives the deterministic randomizer stream, so
    /// the same `(items, seed)` pair replays identical work.
    pub fn verify_signature_batch(&self, items: &[BatchItem], seed: u64) -> BatchOutcome {
        let outcome = verify_batch(items, seed);
        self.sig_batch
            .lock()
            .expect("sig batch stats poisoned")
            .absorb(&outcome.stats);
        outcome
    }

    /// Accumulated batch-ECDSA counters since construction.
    pub fn sig_batch_stats(&self) -> BatchStats {
        *self.sig_batch.lock().expect("sig batch stats poisoned")
    }

    /// Attaches live metric handles. The first attachment wins; later
    /// calls are ignored (the verifier is shared behind `Arc`).
    pub fn attach_metrics(&self, metrics: VerifyMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// The worker count actually in use.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// A snapshot of the memo counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache poisoned").stats
    }

    /// Drops every memoized segment (counters survive).
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("cache poisoned");
        cache.buckets.clear();
        cache.len = 0;
    }

    /// Verifies a header segment, byte-equivalently to
    /// [`HeaderSegment::verify`], using the memo and the worker pool.
    ///
    /// # Errors
    ///
    /// Exactly the [`SpvError`] the sequential verifier would return.
    pub fn verify_segment(
        &self,
        segment: &HeaderSegment,
        min_target: &U256,
    ) -> Result<U256, SpvError> {
        if segment.headers.is_empty() {
            return Err(SpvError::EmptySegment);
        }
        if segment.headers[0].prev_hash != segment.anchor {
            return Err(SpvError::AnchorMismatch);
        }
        let n = segment.headers.len();
        let mut encoded = Vec::with_capacity(n * HEADER_BYTES);
        for header in &segment.headers {
            encoded.extend_from_slice(&header.encode());
        }
        let min_target_bytes = min_target.to_be_bytes();
        let full_key = (segment.anchor, n as u32, min_target_bytes);

        let (start, mut total, mut prev_hash) = {
            let mut cache = self.cache.lock().expect("cache poisoned");
            if let Some(work) = cache.lookup_full(&full_key, &encoded) {
                cache.stats.full_hits += 1;
                if let Some(metrics) = self.metrics.get() {
                    metrics.full_hits.inc();
                }
                return Ok(work);
            }
            match cache.lookup_prefix(&segment.anchor, &min_target_bytes, &encoded) {
                Some((prefix, work, tip)) => {
                    cache.stats.prefix_hits += 1;
                    if let Some(metrics) = self.metrics.get() {
                        metrics.prefix_hits.inc();
                    }
                    (prefix, work, tip)
                }
                None => {
                    cache.stats.misses += 1;
                    if let Some(metrics) = self.metrics.get() {
                        metrics.misses.inc();
                    }
                    (0, U256::ZERO, segment.anchor)
                }
            }
        };

        // Hash/decode/work for the unverified delta, batched in parallel.
        // Per-header checks then run in segment order so the first error —
        // and its index — match the sequential verifier exactly.
        let delta = &segment.headers[start..];
        let precomputed = self.pool.map(delta, precompute_header);
        for (offset, header) in delta.iter().enumerate() {
            let index = start + offset;
            if header.prev_hash != prev_hash {
                return Err(SpvError::BrokenLink { index });
            }
            let (hash, decoded) = &precomputed[offset];
            let (target, work) = decoded.as_ref().map_err(|_| SpvError::BadBits { index })?;
            if *target > *min_target {
                return Err(SpvError::TargetTooEasy { index });
            }
            if !hash_meets_target(hash, target) {
                return Err(SpvError::PowFailure { index });
            }
            total = total
                .checked_add(work)
                .expect("segment work cannot overflow");
            prev_hash = *hash;
        }

        let mut cache = self.cache.lock().expect("cache poisoned");
        let capacity = self.capacity;
        cache.stats.headers_verified = cache
            .stats
            .headers_verified
            .saturating_add(delta.len() as u64);
        if let Some(metrics) = self.metrics.get() {
            metrics.headers_verified.add(delta.len() as u64);
        }
        cache.insert(
            full_key,
            prev_hash,
            encoded.into_boxed_slice(),
            total,
            capacity,
        );
        Ok(total)
    }

    /// Verifies a full evidence bundle, byte-equivalently to
    /// [`SpvEvidence::verify`].
    ///
    /// # Errors
    ///
    /// Exactly the [`SpvError`] the sequential verifier would return.
    pub fn verify_evidence(
        &self,
        evidence: &SpvEvidence,
        min_target: &U256,
    ) -> Result<U256, SpvError> {
        let work = self.verify_segment(&evidence.segment, min_target)?;
        if let Some(inclusion) = &evidence.inclusion {
            inclusion.verify(&evidence.segment)?;
        }
        Ok(work)
    }
}

/// The per-header parallel portion: hash, target, and work. Link order and
/// policy checks stay sequential in the caller.
#[allow(clippy::type_complexity)]
fn precompute_header(header: &BlockHeader) -> (Hash256, Result<(U256, U256), ()>) {
    let hash = header.hash();
    let decoded = header
        .target()
        .map(|target| {
            let work = U256::work_from_target(&target);
            (target, work)
        })
        .map_err(|_| ());
    (hash, decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcfast_btcsim::chain::Chain;
    use btcfast_btcsim::miner::Miner;
    use btcfast_btcsim::params::ChainParams;
    use btcfast_crypto::keys::KeyPair;

    fn chain(n: u64) -> Chain {
        let params = ChainParams::regtest();
        let mut chain = Chain::new(params.clone());
        let mut miner = Miner::new(params, KeyPair::from_seed(b"verify pool").address());
        for i in 1..=n {
            let block = miner.mine_block(&chain, vec![], i * 600);
            chain.submit_block(block).unwrap();
        }
        chain
    }

    fn limit() -> U256 {
        ChainParams::regtest().pow_limit()
    }

    fn verifier() -> EvidenceVerifier {
        EvidenceVerifier::new(VerifierConfig {
            threads: 2,
            cache_capacity: 8,
        })
    }

    #[test]
    fn cold_verify_matches_sequential() {
        let chain = chain(10);
        let v = verifier();
        for (from, to) in [(1u64, 10u64), (3, 7), (5, 5)] {
            let segment = HeaderSegment::from_chain(&chain, from, to);
            assert_eq!(
                v.verify_segment(&segment, &limit()),
                segment.verify(&limit())
            );
        }
        assert_eq!(v.cache_stats().full_hits, 0);
    }

    #[test]
    fn resubmission_is_a_full_hit_with_identical_work() {
        let chain = chain(8);
        let segment = HeaderSegment::from_chain(&chain, 1, 8);
        let v = verifier();
        let cold = v.verify_segment(&segment, &limit()).unwrap();
        let warm = v.verify_segment(&segment, &limit()).unwrap();
        assert_eq!(cold, warm);
        let stats = v.cache_stats();
        assert_eq!(stats.full_hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn tip_extension_only_verifies_the_delta() {
        let chain = chain(12);
        let v = verifier();
        let short = HeaderSegment::from_chain(&chain, 1, 8);
        v.verify_segment(&short, &limit()).unwrap();
        let long = HeaderSegment::from_chain(&chain, 1, 12);
        let work = v.verify_segment(&long, &limit()).unwrap();
        assert_eq!(work, long.verify(&limit()).unwrap());
        let stats = v.cache_stats();
        assert_eq!(stats.prefix_hits, 1);
        // 8 cold headers plus the 4-header extension delta.
        assert_eq!(stats.headers_verified, 12);
    }

    #[test]
    fn attached_metrics_mirror_cache_stats() {
        let chain = chain(10);
        let v = verifier();
        let registry = Registry::new();
        v.attach_metrics(VerifyMetrics::register(&registry));
        let short = HeaderSegment::from_chain(&chain, 1, 6);
        v.verify_segment(&short, &limit()).unwrap(); // miss
        v.verify_segment(&short, &limit()).unwrap(); // full hit
        let long = HeaderSegment::from_chain(&chain, 1, 10);
        v.verify_segment(&long, &limit()).unwrap(); // prefix hit
        let stats = v.cache_stats();
        assert_eq!(
            registry.counter("payjudger_cache_misses_total").get(),
            stats.misses
        );
        assert_eq!(
            registry.counter("payjudger_cache_full_hits_total").get(),
            stats.full_hits
        );
        assert_eq!(
            registry.counter("payjudger_cache_prefix_hits_total").get(),
            stats.prefix_hits
        );
        assert_eq!(
            registry.counter("payjudger_headers_verified_total").get(),
            stats.headers_verified
        );
        assert_eq!(stats.headers_verified, 10);
    }

    #[test]
    fn forged_middle_header_cannot_borrow_a_cached_verdict() {
        let chain = chain(8);
        let v = verifier();
        let segment = HeaderSegment::from_chain(&chain, 1, 8);
        v.verify_segment(&segment, &limit()).unwrap();
        // Same anchor, same len, same tip header — but a corrupted middle.
        let mut forged = segment.clone();
        forged.headers[3].time ^= 1;
        assert_eq!(
            v.verify_segment(&forged, &limit()),
            forged.verify(&limit()),
            "forged segment must fail identically to the sequential verifier"
        );
        assert!(v.verify_segment(&forged, &limit()).is_err());
    }

    #[test]
    fn different_min_target_does_not_share_cache_entries() {
        let chain = chain(6);
        let v = verifier();
        let segment = HeaderSegment::from_chain(&chain, 1, 6);
        v.verify_segment(&segment, &limit()).unwrap();
        // A stricter minimum must re-verify (and reject), not hit the memo.
        let strict = limit() >> 64;
        assert_eq!(v.verify_segment(&segment, &strict), segment.verify(&strict));
    }

    #[test]
    fn lru_evicts_oldest_entries() {
        let chain = chain(12);
        let v = EvidenceVerifier::new(VerifierConfig {
            threads: 1,
            cache_capacity: 2,
        });
        for to in [3u64, 5, 7, 9] {
            let segment = HeaderSegment::from_chain(&chain, 1, to);
            v.verify_segment(&segment, &limit()).unwrap();
        }
        let stats = v.cache_stats();
        assert_eq!(stats.insertions, 4);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn clear_cache_forces_cold_verification() {
        let chain = chain(6);
        let v = verifier();
        let segment = HeaderSegment::from_chain(&chain, 1, 6);
        v.verify_segment(&segment, &limit()).unwrap();
        v.clear_cache();
        v.verify_segment(&segment, &limit()).unwrap();
        assert_eq!(v.cache_stats().full_hits, 0);
        assert_eq!(v.cache_stats().misses, 2);
    }

    #[test]
    fn signature_batches_accumulate_stats_and_name_culprits() {
        let v = verifier();
        let mut items = Vec::new();
        for i in 0..6u8 {
            let kp = KeyPair::from_seed(&[b"batch stats", &[i][..]].concat());
            let digest = btcfast_crypto::sha256::sha256d(&[i]).0;
            let (signature, recovery) = kp.sign_recoverable(&digest);
            items.push(BatchItem {
                pubkey: *kp.public().point(),
                digest,
                signature,
                recovery: Some(recovery),
            });
        }
        items[4].digest[0] ^= 1; // one culprit
        let outcome = v.verify_signature_batch(&items, 7);
        assert_eq!(outcome.invalid, vec![4]);
        let stats = v.sig_batch_stats();
        assert_eq!(stats.items, 6);
        assert!(stats.msm_evals >= 1);

        // A second batch accumulates on top of the first.
        let outcome = v.verify_signature_batch(&items[..4], 8);
        assert!(outcome.all_valid());
        assert_eq!(v.sig_batch_stats().items, 10);
    }

    #[test]
    fn evidence_with_inclusion_matches_sequential() {
        // Inclusion proofs ride through unchanged (cheap, never cached).
        let params = ChainParams::regtest();
        let mut chain = Chain::new(params.clone());
        let key = KeyPair::from_seed(b"verify inc");
        let mut miner = Miner::new(params, key.address());
        for i in 1..=6u64 {
            let block = miner.mine_block(&chain, vec![], i * 600);
            chain.submit_block(block).unwrap();
        }
        let coinbase_txid = chain.block_at_height(1).unwrap().transactions[0].txid();
        let evidence = SpvEvidence::from_chain(&chain, 1, 6, Some(&coinbase_txid));
        assert!(evidence.inclusion.is_some());
        let v = verifier();
        assert_eq!(
            v.verify_evidence(&evidence, &limit()),
            evidence.verify(&limit())
        );
        // Warm pass exercises full-hit + inclusion re-check.
        assert_eq!(
            v.verify_evidence(&evidence, &limit()),
            evidence.verify(&limit())
        );
        assert_eq!(v.cache_stats().full_hits, 1);
    }
}
