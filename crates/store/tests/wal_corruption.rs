//! Property suite for WAL corruption handling: every class of media
//! damage the recovery contract names — torn tails, truncated length
//! prefixes, flipped checksum bytes, duplicate records — plus the
//! crash-at-random-offset equivalence at the heart of the durability
//! story: opening a log cut at *any* byte offset recovers exactly the
//! records the pure scanner salvages from that prefix, and appending
//! afterwards leaves a clean log.

use btcfast_store::wal::{scan, Corruption, HEADER_BYTES};
use btcfast_store::{MemStorage, Storage, StoreError, Wal};
use proptest::prelude::*;
use proptest::sample::Index;

/// Builds a WAL over `payloads` and returns the medium plus the byte
/// offset where each frame starts (with the total length appended, so
/// `frames[i]..frames[i + 1]` brackets frame `i`).
fn build_wal(payloads: &[Vec<u8>]) -> (MemStorage, Vec<usize>) {
    let medium = MemStorage::new();
    let (mut wal, _) = Wal::open(medium.clone()).expect("open fresh medium");
    let mut frames = vec![0usize];
    for p in payloads {
        wal.append(p).expect("append");
        frames.push(wal.len_bytes() as usize);
    }
    (medium, frames)
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..8)
}

proptest! {
    /// Crash-at-random-offset equivalence: cutting the medium at any
    /// byte offset and re-opening recovers exactly the records whose
    /// frames fit wholly inside the cut — the longest clean prefix — and
    /// a mid-frame cut is reported as a torn tail, never a panic or a
    /// phantom record.
    #[test]
    fn crash_at_any_offset_recovers_the_clean_prefix(
        payloads in payloads(),
        cut_sel in any::<Index>(),
    ) {
        let (medium, frames) = build_wal(&payloads);
        let full = medium.bytes();
        let cut = cut_sel.index(full.len() + 1);
        let torn = MemStorage::from_bytes(full[..cut].to_vec());

        let (mut wal, recovered) = Wal::open(torn.clone()).expect("open torn medium");
        let survivors = frames.iter().skip(1).filter(|&&end| end <= cut).count();
        prop_assert_eq!(recovered.records.len(), survivors);
        for (i, (seq, payload)) in recovered.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(payload, &payloads[i]);
        }
        prop_assert_eq!(recovered.valid_len, frames[survivors] as u64);
        if cut == frames[survivors] {
            prop_assert_eq!(recovered.corruption, None);
        } else {
            prop_assert!(matches!(
                recovered.corruption,
                Some(Corruption::TornTail { offset }) if offset == frames[survivors] as u64
            ));
        }

        // Equivalence with the pure scanner, and repair is durable: the
        // torn bytes are gone from the medium itself.
        prop_assert_eq!(&scan(&full[..cut]), &recovered);
        prop_assert_eq!(torn.len(), recovered.valid_len);

        // Appending after repair resumes the sequence on a clean log.
        wal.append(b"post-crash").expect("append after repair");
        let after = scan(&torn.bytes());
        prop_assert_eq!(after.corruption, None);
        prop_assert_eq!(after.records.len(), survivors + 1);
        prop_assert_eq!(&after.records[survivors].1, &b"post-crash".to_vec());
    }

    /// A cut inside a frame *header* (the truncated-length-prefix case)
    /// is a torn tail at that frame: everything before survives, strict
    /// mode refuses the medium with a typed error.
    #[test]
    fn truncated_length_prefix_is_a_torn_tail(
        payloads in payloads(),
        frame_sel in any::<Index>(),
        header_cut in 1usize..HEADER_BYTES,
    ) {
        let (medium, frames) = build_wal(&payloads);
        let frame = frame_sel.index(payloads.len());
        let cut = frames[frame] + header_cut;
        let bytes = medium.bytes()[..cut].to_vec();

        let log = scan(&bytes);
        prop_assert_eq!(log.records.len(), frame);
        prop_assert!(matches!(
            log.corruption,
            Some(Corruption::TornTail { offset }) if offset == frames[frame] as u64
        ));
        prop_assert_eq!(log.truncated_bytes, header_cut as u64);

        let strict = Wal::open_strict(MemStorage::from_bytes(bytes));
        prop_assert!(matches!(
            strict,
            Err(StoreError::Corrupt(Corruption::TornTail { .. }))
        ));
    }

    /// Flipping any bit of a frame's checksum field kills exactly that
    /// record: the scan accepts every earlier record, stops at the
    /// damaged frame, and strict mode surfaces the checksum mismatch.
    #[test]
    fn flipped_checksum_byte_stops_the_scan_at_that_frame(
        payloads in payloads(),
        frame_sel in any::<Index>(),
        crc_byte in 0usize..4,
        bit in 0u8..8,
    ) {
        let (medium, frames) = build_wal(&payloads);
        let frame = frame_sel.index(payloads.len());
        let mut bytes = medium.bytes();
        bytes[frames[frame] + 4 + crc_byte] ^= 1 << bit;

        let log = scan(&bytes);
        prop_assert_eq!(log.records.len(), frame);
        for (i, (seq, payload)) in log.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(payload, &payloads[i]);
        }
        prop_assert!(matches!(
            log.corruption,
            Some(Corruption::BadChecksum { offset }) if offset == frames[frame] as u64
        ));
        prop_assert_eq!(log.valid_len, frames[frame] as u64);

        let strict = Wal::open_strict(MemStorage::from_bytes(bytes));
        prop_assert!(matches!(
            strict,
            Err(StoreError::Corrupt(Corruption::BadChecksum { .. }))
        ));
    }

    /// Flipping any single byte anywhere in the medium never panics the
    /// scanner, and every record *before* the damaged frame survives
    /// intact (bytes ahead of the flip are untouched, so the sequential
    /// scan must accept them).
    #[test]
    fn any_single_byte_flip_preserves_the_untouched_prefix(
        payloads in payloads(),
        pos_sel in any::<Index>(),
        flip in 1u8..=255,
    ) {
        let (medium, frames) = build_wal(&payloads);
        let mut bytes = medium.bytes();
        let pos = pos_sel.index(bytes.len());
        bytes[pos] ^= flip;

        let log = scan(&bytes);
        prop_assert_eq!(log.valid_len + log.truncated_bytes, bytes.len() as u64);
        let untouched = frames.iter().skip(1).filter(|&&end| end <= pos).count();
        prop_assert!(log.records.len() >= untouched);
        for (i, (seq, payload)) in log.records.iter().take(untouched).enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }

    /// Re-appending an already-applied frame (at-least-once journaling)
    /// is skipped, counted, and leaves the log clean: recovery is
    /// idempotent under duplicate records.
    #[test]
    fn duplicate_records_are_skipped_not_reapplied(
        payloads in payloads(),
        frame_sel in any::<Index>(),
    ) {
        let (medium, frames) = build_wal(&payloads);
        let frame = frame_sel.index(payloads.len());
        let mut bytes = medium.bytes();
        let dup = bytes[frames[frame]..frames[frame + 1]].to_vec();
        bytes.extend_from_slice(&dup);

        let log = scan(&bytes);
        prop_assert_eq!(log.corruption, None);
        prop_assert_eq!(log.duplicates_skipped, 1);
        prop_assert_eq!(log.records.len(), payloads.len());
        prop_assert_eq!(log.valid_len, bytes.len() as u64);

        // The appender resumes past the duplicate with a fresh sequence.
        let (wal, _) = Wal::open(MemStorage::from_bytes(bytes)).expect("open with duplicate");
        prop_assert_eq!(wal.next_seq(), payloads.len() as u64);
    }
}
