//! The secp256k1 scalar field GF(n), where `n` is the group order.

use crate::limbs;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The group order `n`, little-endian limbs.
const N: [u64; 4] = [
    0xBFD25E8CD0364141,
    0xBAAEDCE6AF48A03B,
    0xFFFFFFFFFFFFFFFE,
    0xFFFFFFFFFFFFFFFF,
];

/// `2^256 - n` (about 129 bits), little-endian limbs.
const C: [u64; 4] = [0x402DA1732FC9BEBF, 0x4551231950B75FC4, 0x1, 0x0];

/// A scalar modulo the secp256k1 group order, always stored fully reduced.
///
/// Scalars are private keys, ECDSA nonces, and signature components.
///
/// ```
/// use btcfast_crypto::scalar::Scalar;
///
/// let two = Scalar::from_u64(2);
/// let three = Scalar::from_u64(3);
/// assert_eq!(two * three, Scalar::from_u64(6));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar([u64; 4]);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Creates a scalar from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes, reducing modulo `n`. This is how message
    /// digests become the ECDSA `z` value.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Scalar {
        let v = limbs::from_be_bytes(bytes);
        Scalar(limbs::reduce_small(v, 0, &N, &C))
    }

    /// Parses 32 big-endian bytes, returning `None` if the value is `>= n`.
    /// RFC 6979 nonce candidates use this to reject out-of-range values.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let v = limbs::from_be_bytes(bytes);
        if limbs::cmp(&v, &N) == std::cmp::Ordering::Less {
            Some(Scalar(v))
        } else {
            None
        }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        limbs::to_be_bytes(&self.0)
    }

    /// Returns true for the additive identity.
    pub fn is_zero(&self) -> bool {
        limbs::is_zero(&self.0)
    }

    /// Returns true when the value fits in 128 bits. Multiplying by such a
    /// scalar skips the GLV split: its wNAF ladder is already half-length,
    /// and splitting would spread the same magnitude across *two* digit
    /// streams, doubling the nonzero-digit count. The batch verifier's
    /// randomizers are 128-bit by construction and take this path.
    pub(crate) fn fits_128_bits(&self) -> bool {
        self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns true if the scalar exceeds `n/2`. ECDSA signatures normalize
    /// `s` to the low half to rule out the `(r, s) / (r, n-s)` malleability.
    pub fn is_high(&self) -> bool {
        // n/2 rounded down.
        const HALF_N: [u64; 4] = [
            0xDFE92F46681B20A0,
            0x5D576E7357A4501D,
            0xFFFFFFFFFFFFFFFF,
            0x7FFFFFFFFFFFFFFF,
        ];
        limbs::cmp(&self.0, &HALF_N) == std::cmp::Ordering::Greater
    }

    /// Iterates the 256 bits of the scalar from most significant to least.
    pub fn bits_msb_first(&self) -> impl Iterator<Item = bool> + '_ {
        (0..256).map(move |i| {
            let limb = 3 - i / 64;
            let bit = 63 - (i % 64);
            (self.0[limb] >> bit) & 1 == 1
        })
    }

    /// Squares the scalar via the dedicated squaring routine.
    pub fn square(self) -> Scalar {
        let wide = limbs::sqr_wide(&self.0);
        Scalar(limbs::reduce_wide_c3(wide, &N, &C))
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(n-2)`),
    /// computed with a fixed 4-bit window: 256 squarings plus at most 64
    /// table multiplications, versus ~194 multiplications for naive
    /// square-and-multiply over the high-Hamming-weight exponent. One scalar
    /// inversion (`s^-1`) sits on every ECDSA verify.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn invert(self) -> Scalar {
        assert!(!self.is_zero(), "zero has no multiplicative inverse");
        let mut exp = limbs::to_be_bytes(&N);
        // N ends in 0x41; subtracting 2 cannot borrow.
        exp[31] -= 2;
        // odd_and_even[d] = self^d for d in 1..=15 (index 0 unused).
        let mut pow = [Scalar::ONE; 16];
        pow[1] = self;
        for d in 2..16 {
            pow[d] = pow[d - 1] * self;
        }
        let mut result = Scalar::ONE;
        let mut started = false;
        for byte in exp {
            for nibble in [byte >> 4, byte & 0x0F] {
                if started {
                    result = result.square().square().square().square();
                }
                if nibble != 0 {
                    result = if started {
                        result * pow[nibble as usize]
                    } else {
                        pow[nibble as usize]
                    };
                    started = true;
                }
            }
        }
        result
    }

    /// Windowed non-adjacent form of the scalar with the given window
    /// `width` (2..=8): least-significant digit first, every nonzero digit
    /// odd with `|d| < 2^(width-1)`, at most one nonzero digit in any
    /// `width` consecutive positions. Up to 257 digits (a trailing carry
    /// can spill one position past 256 bits).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=8`.
    pub fn wnaf(&self, width: u32) -> Vec<i8> {
        assert!((2..=8).contains(&width), "wNAF width must be in 2..=8");
        let radix = 1u64 << width;
        let half = 1i64 << (width - 1);
        // Work on a 5-limb copy: subtracting a negative digit adds up to
        // 2^(width-1), which can carry past 2^256 near the top.
        let mut v = [self.0[0], self.0[1], self.0[2], self.0[3], 0u64];
        let mut digits = Vec::with_capacity(257);
        while v.iter().any(|&l| l != 0) {
            if v[0] & 1 == 1 {
                // Odd: emit a signed odd digit in (-2^(w-1), 2^(w-1)).
                let low = (v[0] & (radix - 1)) as i64;
                let digit = if low >= half { low - radix as i64 } else { low };
                if digit >= 0 {
                    sub_small(&mut v, digit as u64);
                } else {
                    add_small(&mut v, (-digit) as u64);
                }
                digits.push(digit as i8);
            } else {
                digits.push(0);
            }
            shift_right_1(&mut v);
        }
        digits
    }

    /// Decomposes `self` into `(k1, k2)` with `self = k1 + k2·λ (mod n)`
    /// and both components of magnitude `< 2^129`, where `λ` is the cube
    /// root of unity acted out on the curve by the GLV endomorphism
    /// `φ(x, y) = (β·x, y) = λ·(x, y)`.
    ///
    /// Components are returned as `(negated, absolute value)` pairs so
    /// callers can negate the *point* instead of working with scalars near
    /// `n`. Splitting a 256-bit scalar multiplication into two half-width
    /// ones halves the doubling count of wNAF ladders — the single largest
    /// cost on the ECDSA accept path.
    pub(crate) fn split_glv(&self) -> ((bool, Scalar), (bool, Scalar)) {
        // Lattice basis constants from the standard secp256k1 decomposition:
        // c1 = round(g1·k / 2^384), c2 = round(g2·k / 2^384), then
        // k2 = c1·(-b1) + c2·(-b2) and k1 = k - k2·λ.
        const MINUS_B1: Scalar = Scalar([0x6F547FA90ABFE4C3, 0xE4437ED6010E8828, 0, 0]);
        const MINUS_B2: Scalar = Scalar([
            0xD765CDA83DB1562C,
            0x8A280AC50774346D,
            0xFFFFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFFFFF,
        ]);
        const G1: [u64; 4] = [
            0xE893209A45DBE88C,
            0x3DAA8A1471E8CA7F,
            0xE86C90E49284EB15,
            0x3086D221A7D46BCD,
        ];
        const G2: [u64; 4] = [
            0x1571B4AE8AC47F71,
            0x221208AC9DF506C6,
            0x6F547FA90ABFE4C4,
            0xE4437ED6010E8828,
        ];
        // round((k·g) / 2^384): bits 384.. of the 512-bit product, plus the
        // rounding bit at position 383.
        fn mul_shift_384(k: &[u64; 4], g: &[u64; 4]) -> Scalar {
            let wide = limbs::mul_wide(k, g);
            let round = wide[5] >> 63;
            let (lo, carry) = wide[6].overflowing_add(round);
            Scalar([lo, wide[7] + carry as u64, 0, 0])
        }
        // Small-magnitude scalars are represented mod n; anything above n/2
        // is a negative value in disguise.
        fn sign_abs(k: Scalar) -> (bool, Scalar) {
            if k.is_high() {
                (true, -k)
            } else {
                (false, k)
            }
        }
        let c1 = mul_shift_384(&self.0, &G1);
        let c2 = mul_shift_384(&self.0, &G2);
        let k2 = c1 * MINUS_B1 + c2 * MINUS_B2;
        let k1 = *self - k2 * Scalar::LAMBDA;
        (sign_abs(k1), sign_abs(k2))
    }

    /// `λ`: the scalar the GLV endomorphism multiplies by (a primitive cube
    /// root of unity modulo `n`).
    pub(crate) const LAMBDA: Scalar = Scalar([
        0xDF02967C1B23BD72,
        0x122E22EA20816678,
        0xA5261C028812645A,
        0x5363AD4CC05C30E0,
    ]);

    /// Returns `self + n` as 32 big-endian bytes, or `None` when the sum
    /// overflows 256 bits. ECDSA verification uses this for the second
    /// `r` candidate when checking the x-coordinate without an inversion.
    pub(crate) fn plus_order_bytes(&self) -> Option<[u8; 32]> {
        let (sum, carry) = limbs::add(&self.0, &N);
        if carry != 0 {
            None
        } else {
            Some(limbs::to_be_bytes(&sum))
        }
    }
}

/// In-place `v += d` over 5 little-endian limbs.
fn add_small(v: &mut [u64; 5], d: u64) {
    let mut carry = d;
    for limb in v.iter_mut() {
        let (s, c) = limb.overflowing_add(carry);
        *limb = s;
        carry = c as u64;
        if carry == 0 {
            break;
        }
    }
    debug_assert_eq!(carry, 0, "wNAF working value fits in 5 limbs");
}

/// In-place `v -= d` over 5 little-endian limbs; `v >= d` is guaranteed by
/// the caller (the digit is extracted from `v`'s own low bits).
fn sub_small(v: &mut [u64; 5], d: u64) {
    let mut borrow = d;
    for limb in v.iter_mut() {
        let (s, b) = limb.overflowing_sub(borrow);
        *limb = s;
        borrow = b as u64;
        if borrow == 0 {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "wNAF digit never exceeds the value");
}

/// In-place logical right shift by one bit over 5 little-endian limbs.
fn shift_right_1(v: &mut [u64; 5]) {
    for i in 0..4 {
        v[i] = (v[i] >> 1) | (v[i + 1] << 63);
    }
    v[4] >>= 1;
}

impl Add for Scalar {
    type Output = Scalar;
    fn add(self, rhs: Scalar) -> Scalar {
        let (sum, carry) = limbs::add(&self.0, &rhs.0);
        Scalar(limbs::reduce_small(sum, carry, &N, &C))
    }
}

impl Sub for Scalar {
    type Output = Scalar;
    fn sub(self, rhs: Scalar) -> Scalar {
        let (diff, borrow) = limbs::sub(&self.0, &rhs.0);
        if borrow == 0 {
            Scalar(diff)
        } else {
            let (fixed, _) = limbs::add(&diff, &N);
            Scalar(fixed)
        }
    }
}

impl Mul for Scalar {
    type Output = Scalar;
    fn mul(self, rhs: Scalar) -> Scalar {
        let wide = limbs::mul_wide(&self.0, &rhs.0);
        Scalar(limbs::reduce_wide_c3(wide, &N, &C))
    }
}

impl Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar::ZERO - self
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar({})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn n_reduces_to_zero() {
        let n_bytes = limbs::to_be_bytes(&N);
        assert!(Scalar::from_be_bytes(&n_bytes).is_none());
        assert!(Scalar::from_be_bytes_reduced(&n_bytes).is_zero());
    }

    #[test]
    fn n_minus_one_is_negative_one() {
        let mut bytes = limbs::to_be_bytes(&N);
        bytes[31] -= 1;
        let nm1 = Scalar::from_be_bytes(&bytes).unwrap();
        assert_eq!(nm1 + Scalar::ONE, Scalar::ZERO);
        assert_eq!(-Scalar::ONE, nm1);
    }

    #[test]
    fn two_to_256_mod_n_is_c() {
        // 2^256 mod n = C; check via (2^128)^2.
        let two_128 = {
            let mut b = [0u8; 32];
            b[15] = 1;
            Scalar::from_be_bytes(&b).unwrap()
        };
        let got = two_128 * two_128;
        assert_eq!(got.0, C);
    }

    #[test]
    fn half_n_boundary() {
        // (n-1)/2 is not high; (n-1)/2 + 1 is high.
        let half = Scalar::from_be_bytes(&crate::hex_arr(
            "7FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF5D576E7357A4501DDFE92F46681B20A0",
        ))
        .unwrap();
        assert!(!half.is_high());
        assert!((half + Scalar::ONE).is_high());
        assert!(!Scalar::ZERO.is_high());
        assert!(!Scalar::ONE.is_high());
    }

    #[test]
    fn inverse_small_values() {
        for v in 1..40u64 {
            let x = Scalar::from_u64(v);
            assert_eq!(x * x.invert(), Scalar::ONE, "v = {v}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        let _ = Scalar::ZERO.invert();
    }

    #[test]
    fn bits_msb_first_of_one() {
        let bits: Vec<bool> = Scalar::ONE.bits_msb_first().collect();
        assert_eq!(bits.len(), 256);
        assert!(bits[..255].iter().all(|&b| !b));
        assert!(bits[255]);
    }

    #[test]
    fn bits_msb_first_of_high_bit() {
        let mut b = [0u8; 32];
        b[0] = 0x80;
        // 2^255 >= n, so reduce; instead test 2^200.
        let mut b2 = [0u8; 32];
        b2[31 - 25] = 1; // byte index 6 → 2^200
        let s = Scalar::from_be_bytes(&b2).unwrap();
        let bits: Vec<bool> = s.bits_msb_first().collect();
        assert_eq!(bits.iter().filter(|&&x| x).count(), 1);
        assert!(bits[255 - 200]);
        let _ = b;
    }

    /// Reconstructs the scalar value a wNAF expansion encodes, as 5 limbs
    /// (the expansion can exceed 256 bits by one position).
    fn wnaf_value(digits: &[i8]) -> [u64; 5] {
        let mut acc = [0u64; 5];
        for &d in digits.iter().rev() {
            // acc = acc * 2
            let mut carry = 0u64;
            for limb in acc.iter_mut() {
                let t = (*limb >> 63, *limb << 1);
                *limb = t.1 | carry;
                carry = t.0;
            }
            assert_eq!(carry, 0);
            // acc += d (signed)
            if d >= 0 {
                let mut c = d as u64;
                for limb in acc.iter_mut() {
                    let (s, c2) = limb.overflowing_add(c);
                    *limb = s;
                    c = c2 as u64;
                }
                assert_eq!(c, 0);
            } else {
                let mut b = (-(d as i64)) as u64;
                for limb in acc.iter_mut() {
                    let (s, b2) = limb.overflowing_sub(b);
                    *limb = s;
                    b = b2 as u64;
                }
                assert_eq!(b, 0);
            }
        }
        acc
    }

    fn check_wnaf(s: Scalar, width: u32) {
        let digits = s.wnaf(width);
        assert!(digits.len() <= 257, "at most 257 digits");
        let half = 1i16 << (width - 1);
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                assert!(d % 2 != 0, "digit {i} = {d} must be odd");
                assert!((d as i16).abs() < half, "digit {i} = {d} out of range");
                // Non-adjacency: next width-1 digits are zero.
                for j in (i + 1)..digits.len().min(i + width as usize) {
                    assert_eq!(digits[j], 0, "digits {i} and {j} both nonzero");
                }
            }
        }
        let v = wnaf_value(&digits);
        assert_eq!([v[0], v[1], v[2], v[3]], s.0, "wnaf encodes the scalar");
        assert_eq!(v[4], 0);
    }

    #[test]
    fn wnaf_edge_scalars_all_widths() {
        let mut edges = vec![
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(2),
            -Scalar::ONE,
            -Scalar::from_u64(2),
        ];
        for k in [1, 63, 64, 127, 128, 191, 255] {
            let mut b = [0u8; 32];
            b[31 - k / 8] = 1 << (k % 8);
            edges.push(Scalar::from_be_bytes_reduced(&b));
        }
        edges.push(Scalar::from_be_bytes_reduced(&[0xFF; 32]));
        for s in edges {
            for width in 2..=8 {
                check_wnaf(s, width);
            }
        }
    }

    #[test]
    fn wnaf_of_zero_is_empty() {
        for width in 2..=8 {
            assert!(Scalar::ZERO.wnaf(width).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "wNAF width")]
    fn wnaf_rejects_width_one() {
        let _ = Scalar::ONE.wnaf(1);
    }

    #[test]
    fn plus_order_bytes_boundary() {
        // 0 + n fits; anything >= 2^256 - n overflows.
        assert_eq!(
            Scalar::ZERO.plus_order_bytes().unwrap(),
            limbs::to_be_bytes(&N)
        );
        let c = Scalar(C);
        assert!(c.plus_order_bytes().is_none());
        assert!((c - Scalar::ONE).plus_order_bytes().is_some());
    }

    #[test]
    fn lambda_is_a_nontrivial_cube_root_of_unity() {
        let l = Scalar::LAMBDA;
        assert_ne!(l, Scalar::ONE);
        assert_eq!(l * l * l, Scalar::ONE);
    }

    /// Reconstructs `k` from a GLV decomposition and checks the magnitude
    /// bound `|k1|, |k2| < 2^129`.
    fn check_split(k: Scalar) {
        let ((neg1, a1), (neg2, a2)) = k.split_glv();
        let k1 = if neg1 { -a1 } else { a1 };
        let k2 = if neg2 { -a2 } else { a2 };
        assert_eq!(k1 + k2 * Scalar::LAMBDA, k, "k = {k:?}");
        for (name, abs) in [("k1", a1), ("k2", a2)] {
            let bytes = abs.to_be_bytes();
            assert!(
                bytes[..15] == [0; 15] && bytes[15] <= 1,
                "{name} magnitude exceeds 2^129 for k = {k:?}"
            );
        }
    }

    #[test]
    fn split_glv_edge_scalars() {
        check_split(Scalar::ZERO);
        check_split(Scalar::ONE);
        check_split(-Scalar::ONE);
        check_split(Scalar::LAMBDA);
        check_split(-Scalar::LAMBDA);
        check_split(Scalar::from_be_bytes_reduced(&[0xFF; 32]));
        for k in 0..=256u32 {
            let mut b = [0u8; 32];
            if k < 256 {
                b[31 - (k as usize) / 8] = 1 << (k % 8);
            } else {
                b = [0xAA; 32];
            }
            check_split(Scalar::from_be_bytes_reduced(&b));
        }
    }

    fn arb_scalar() -> impl Strategy<Value = Scalar> {
        any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_scalar(), b in arb_scalar()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_mul_distributes(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_add_round_trip(a in arb_scalar(), b in arb_scalar()) {
            prop_assert_eq!((a - b) + b, a);
        }

        #[test]
        fn prop_neg_is_sub_from_zero(a in arb_scalar()) {
            prop_assert_eq!(-a, Scalar::ZERO - a);
            prop_assert_eq!(a + (-a), Scalar::ZERO);
        }

        #[test]
        fn prop_inverse(a in arb_scalar()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.invert(), Scalar::ONE);
            }
        }

        #[test]
        fn prop_bytes_round_trip(a in arb_scalar()) {
            prop_assert_eq!(Scalar::from_be_bytes(&a.to_be_bytes()).unwrap(), a);
        }

        #[test]
        fn prop_wnaf_round_trip(a in arb_scalar(), width in 2u32..=8) {
            check_wnaf(a, width);
        }

        #[test]
        fn prop_square_matches_mul(a in arb_scalar()) {
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn prop_split_glv_reconstructs(a in arb_scalar()) {
            check_split(a);
        }

        #[test]
        fn prop_exactly_one_of_s_negs_is_high(a in arb_scalar()) {
            // For nonzero s, exactly one of {s, -s} is high (n is odd so
            // s != -s unless s == 0).
            if !a.is_zero() {
                prop_assert!(a.is_high() != (-a).is_high());
            }
        }
    }
}
