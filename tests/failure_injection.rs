//! Integration: failure injection — lossy/partitioned networks, withheld
//! evidence, expired windows, gas exhaustion.

use btcfast_suite::btcsim::spv::SpvEvidence;
use btcfast_suite::netsim::latency::LatencyModel;
use btcfast_suite::netsim::network::{Network, NodeId};
use btcfast_suite::netsim::time::SimTime;
use btcfast_suite::payjudger::types::DisputeVerdict;
use btcfast_suite::payjudger::PayJudgerClient;
use btcfast_suite::protocol::{FastPaySession, SessionConfig};
use btcfast_suite::pscsim::tx::TxStatus;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn partitioned_network_drops_offer_delivery() {
    // Fabric-level check: a partition between customer and merchant nodes
    // suppresses delivery; healing restores it.
    let mut net = Network::new(2, LatencyModel::wan());
    let mut rng = StdRng::seed_from_u64(1);
    net.partition(NodeId(0), NodeId(1));
    assert!(net
        .send(NodeId(0), NodeId(1), "offer", SimTime::ZERO, &mut rng)
        .is_none());
    net.heal(NodeId(0), NodeId(1));
    let delivery = net
        .send(NodeId(0), NodeId(1), "offer", SimTime::ZERO, &mut rng)
        .expect("healed link delivers");
    assert!(delivery.at > SimTime::ZERO);
}

#[test]
fn evidence_withheld_defaults_to_merchant() {
    // The customer never answers the dispute: judgment defaults against
    // them after the window.
    let config = SessionConfig {
        challenge_window_secs: 1200,
        ..SessionConfig::default()
    };
    let mut session = FastPaySession::new(config, 300);
    let customer_id = session.customer.psc_account();

    let report = session.run_fast_payment(800_000).expect("payment");
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");

    let dispute = session.merchant.build_dispute(
        &session.judger,
        &session.psc,
        customer_id,
        report.payment_id,
    );
    assert!(session
        .run_psc_tx(dispute)
        .expect("psc tx executes")
        .status
        .is_success());

    // Nobody submits anything. Window passes.
    session.advance_clock(SimTime::from_secs(1300));
    let judge = session.merchant.build_judge(
        &session.judger,
        &session.psc,
        customer_id,
        report.payment_id,
    );
    let receipt = session.run_psc_tx(judge).expect("psc tx executes");
    assert_eq!(
        PayJudgerClient::verdict_from(&receipt),
        Some(DisputeVerdict::MerchantWins)
    );
}

#[test]
fn dispute_after_expiry_is_rejected_and_customer_closes() {
    let config = SessionConfig {
        challenge_window_secs: 600,
        ..SessionConfig::default()
    };
    let mut session = FastPaySession::new(config, 301);
    let customer_id = session.customer.psc_account();

    let report = session.run_fast_payment(800_000).expect("payment");
    session.advance_clock(SimTime::from_secs(700));

    let dispute = session.merchant.build_dispute(
        &session.judger,
        &session.psc,
        customer_id,
        report.payment_id,
    );
    let receipt = session.run_psc_tx(dispute).expect("psc tx executes");
    assert!(matches!(receipt.status, TxStatus::Reverted(_)));

    let close =
        session
            .customer
            .build_close_payment(&session.judger, &session.psc, report.payment_id);
    assert!(session
        .run_psc_tx(close)
        .expect("psc tx executes")
        .status
        .is_success());
}

#[test]
fn out_of_gas_evidence_is_billed_and_retriable() {
    let config = SessionConfig {
        challenge_window_secs: 5_000,
        ..SessionConfig::default()
    };
    let mut session = FastPaySession::new(config, 302);
    let customer_id = session.customer.psc_account();

    let report = session.run_fast_payment(800_000).expect("payment");
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");

    let dispute = session.merchant.build_dispute(
        &session.judger,
        &session.psc,
        customer_id,
        report.payment_id,
    );
    assert!(session
        .run_psc_tx(dispute)
        .expect("psc tx executes")
        .status
        .is_success());

    // Customer submits evidence with an absurdly small gas limit.
    let evidence =
        SpvEvidence::from_chain(&session.btc, 1, session.btc.height(), Some(&report.txid));
    let mut starved = session.customer.build_evidence_submission(
        &session.judger,
        &session.psc,
        report.payment_id,
        evidence.clone(),
    );
    starved.gas_limit = 30_000;
    starved.signature = None;
    let starved = starved.sign(session.customer.psc_keys());
    let receipt = session.run_psc_tx(starved).expect("psc tx executes");
    assert_eq!(receipt.status, TxStatus::OutOfGas);
    assert_eq!(receipt.gas_used, 30_000); // full limit burned

    // Retry with proper gas succeeds.
    let retry = session.customer.build_evidence_submission(
        &session.judger,
        &session.psc,
        report.payment_id,
        evidence,
    );
    assert!(session
        .run_psc_tx(retry)
        .expect("psc tx executes")
        .status
        .is_success());
}

#[test]
fn lossy_network_delays_but_does_not_break_fastpay() {
    // 30% real message loss injected through the reliable transport: the
    // fast payment must still complete on the protected path, and the
    // retransmission counters must show the transport actually recovered
    // dropped messages rather than getting lucky.
    use btcfast_suite::netsim::faults::FaultPlan;
    use btcfast_suite::protocol::chaos::ChaosSession;
    use btcfast_suite::protocol::robustness::ChaosConfig;

    let config = SessionConfig {
        latency: LatencyModel::Uniform {
            min_secs: 0.05,
            max_secs: 0.4,
        },
        ..SessionConfig::default()
    };
    let mut plan = FaultPlan::new();
    plan.loss_window(SimTime::ZERO, SimTime::from_secs(86_400), 0.3);

    // Aggregate across seeds so the retransmission assertion is about the
    // mechanism, not one lucky loss draw.
    let mut recovered = 0u64;
    for seed in 303..308 {
        let mut chaos =
            ChaosSession::new(config.clone(), ChaosConfig::default(), plan.clone(), seed);
        let report = chaos.run_fast_payment_chaos(800_000).expect("payment");
        assert!(report.accepted, "seed {seed}: payment refused under loss");
        assert!(
            report.protected && !report.fell_back,
            "seed {seed}: retransmission should keep the escrow path alive"
        );
        let stats = chaos.transport_stats();
        assert_eq!(
            stats.failed, 0,
            "seed {seed}: no delivery may fail outright"
        );
        recovered += stats.retransmissions;
        // Slower than a clean run, but still point-of-sale latency.
        assert!(
            report.waiting.as_secs_f64() < 10.0,
            "seed {seed}: waiting {} too slow",
            report.waiting
        );
    }
    assert!(
        recovered > 0,
        "30% loss across 5 seeds must force at least one retransmission"
    );
}

#[test]
fn conflicting_broadcast_before_offer_rejects_at_counter() {
    // The attacker broadcasts the conflicting spend BEFORE presenting the
    // offer: the merchant's mempool check must refuse on the spot.
    use btcfast_suite::protocol::protocol::RejectReason;

    let mut session = FastPaySession::new(SessionConfig::default(), 305);

    // Build the payment + registration by hand (not via run_fast_payment,
    // which would relay the honest tx first).
    let tx = session
        .customer
        .build_btc_payment(
            &session.btc,
            session.merchant.btc_wallet().address(),
            btcfast_suite::btcsim::Amount::from_sats(500_000).unwrap(),
            btcfast_suite::btcsim::Amount::from_sats(1_000).unwrap(),
            None,
        )
        .unwrap();
    let open = session.customer.build_open_payment(
        &session.judger,
        &session.psc,
        session.merchant.psc_account(),
        tx.txid(),
        500_000,
        600_000,
    );
    let receipt = session.run_psc_tx(open).expect("psc tx executes");
    assert!(receipt.status.is_success());
    let payment_id = btcfast_suite::payjudger::PayJudgerClient::payment_id_from(&receipt).unwrap();

    // The conflicting spend hits the network first.
    let steal = session.customer.btc_wallet().create_conflicting_spend(
        &session.btc,
        &tx,
        btcfast_suite::btcsim::Amount::from_sats(2_000).unwrap(),
    );
    session
        .mempool
        .insert(
            steal,
            session.btc.utxo(),
            session.btc.height() + 1,
            session.clock.as_secs(),
        )
        .unwrap();

    // The merchant sees the conflict and refuses.
    let offer = session.customer.make_offer(tx, payment_id, 500_000);
    let decision = session.merchant.evaluate_offer(
        &offer,
        &session.btc,
        &session.mempool,
        &session.psc,
        &session.judger,
    );
    assert!(matches!(
        decision,
        Err(RejectReason::MempoolConflict { .. })
    ));
}

#[test]
fn mempool_conflict_blocks_acceptance() {
    // A conflicting spend arrives at the merchant's mempool before the
    // offer: the merchant must refuse instantly.
    let mut session = FastPaySession::new(SessionConfig::default(), 304);

    // Build the payment and register it honestly.
    let first = session.run_fast_payment(800_000).expect("payment 1");
    assert!(first.accepted);

    // The customer now tries a *second* offer double-spending the same
    // coins (the first is still pooled).
    let accepted_tx = session.mempool.get(&first.txid).unwrap().tx.clone();
    let steal = session.customer.btc_wallet().create_conflicting_spend(
        &session.btc,
        &accepted_tx,
        btcfast_suite::btcsim::Amount::from_sats(2_000).unwrap(),
    );
    // It cannot enter the mempool...
    let err = session.mempool.insert(
        steal,
        session.btc.utxo(),
        session.btc.height() + 1,
        session.clock.as_secs(),
    );
    assert!(err.is_err(), "conflict must be detected");
}
