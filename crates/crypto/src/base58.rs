//! Base58 and Base58Check (Bitcoin address) encoding.

use std::error::Error;
use std::fmt;

const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Errors decoding Base58 / Base58Check strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base58Error {
    /// A character outside the Base58 alphabet.
    BadChar(char),
    /// The 4-byte double-SHA256 checksum did not match.
    BadChecksum,
    /// The payload was too short to contain version + checksum, or had an
    /// unexpected length for the caller's type.
    BadLength,
}

impl fmt::Display for Base58Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Base58Error::BadChar(c) => write!(f, "invalid base58 character {c:?}"),
            Base58Error::BadChecksum => write!(f, "base58check checksum mismatch"),
            Base58Error::BadLength => write!(f, "base58check payload has invalid length"),
        }
    }
}

impl Error for Base58Error {}

/// Encodes bytes as Base58.
pub fn encode(data: &[u8]) -> String {
    // Count leading zero bytes — they map to leading '1's.
    let zeros = data.iter().take_while(|&&b| b == 0).count();
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in data {
        let mut carry = byte as u32;
        for digit in digits.iter_mut() {
            carry += (*digit as u32) << 8;
            *digit = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(ALPHABET[d as usize] as char);
    }
    out
}

/// Decodes a Base58 string to bytes.
///
/// # Errors
///
/// Returns [`Base58Error::BadChar`] on characters outside the alphabet.
pub fn decode(s: &str) -> Result<Vec<u8>, Base58Error> {
    let zeros = s.chars().take_while(|&c| c == '1').count();
    let mut bytes: Vec<u8> = Vec::with_capacity(s.len() * 733 / 1000 + 1);
    for c in s.chars() {
        let value = ALPHABET
            .iter()
            .position(|&a| a as char == c)
            .ok_or(Base58Error::BadChar(c))? as u32;
        let mut carry = value;
        for byte in bytes.iter_mut() {
            carry += (*byte as u32) * 58;
            *byte = carry as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push(carry as u8);
            carry >>= 8;
        }
    }
    let mut out = vec![0u8; zeros];
    out.extend(bytes.iter().rev());
    // Strip the zero bytes the big-number phase may have produced for the
    // leading '1's (they were re-added above).
    let produced_zeros = bytes.len() - bytes.iter().rev().take_while(|&&b| b == 0).count();
    let _ = produced_zeros;
    Ok(out)
}

/// Base58Check encode: `version || payload || first4(SHA256d(version||payload))`.
pub fn check_encode(version: u8, payload: &[u8]) -> String {
    let mut data = Vec::with_capacity(1 + payload.len() + 4);
    data.push(version);
    data.extend_from_slice(payload);
    let checksum = crate::sha256::sha256d(&data);
    data.extend_from_slice(&checksum.0[..4]);
    encode(&data)
}

/// Base58Check decode, returning `(version, payload)`.
///
/// # Errors
///
/// Returns [`Base58Error::BadChecksum`] or [`Base58Error::BadLength`] on
/// malformed input.
pub fn check_decode(s: &str) -> Result<(u8, Vec<u8>), Base58Error> {
    let data = decode(s)?;
    if data.len() < 5 {
        return Err(Base58Error::BadLength);
    }
    let (body, checksum) = data.split_at(data.len() - 4);
    let expected = crate::sha256::sha256d(body);
    if &expected.0[..4] != checksum {
        return Err(Base58Error::BadChecksum);
    }
    Ok((body[0], body[1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Vectors from the Bitcoin Core base58 test suite.
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (&[0x61], "2g"),
            (&[0x62, 0x62, 0x62], "a3gV"),
            (&[0x63, 0x63, 0x63], "aPEr"),
            (
                &[
                    0x73, 0x69, 0x6d, 0x70, 0x6c, 0x79, 0x20, 0x61, 0x20, 0x6c, 0x6f, 0x6e, 0x67,
                    0x20, 0x73, 0x74, 0x72, 0x69, 0x6e, 0x67,
                ],
                "2cFupjhnEsSn59qHXstmK2ffpLv2",
            ),
            (&[0x00, 0x00, 0x00, 0x28, 0x7f, 0xb4, 0xcd], "111233QC4"),
        ];
        for (input, expected) in cases {
            assert_eq!(encode(input), *expected);
            assert_eq!(decode(expected).unwrap(), input.to_vec());
        }
    }

    #[test]
    fn leading_zeros_preserved() {
        let data = [0u8, 0, 0, 1, 2, 3];
        assert_eq!(decode(&encode(&data)).unwrap(), data.to_vec());
    }

    #[test]
    fn decode_rejects_bad_chars() {
        // '0', 'O', 'I', 'l' are excluded from the alphabet.
        for bad in ["0", "O", "I", "l", "hello world"] {
            assert!(matches!(decode(bad), Err(Base58Error::BadChar(_))), "{bad}");
        }
    }

    #[test]
    fn check_round_trip() {
        let payload = [0xde, 0xad, 0xbe, 0xef];
        let s = check_encode(0x42, &payload);
        let (version, decoded) = check_decode(&s).unwrap();
        assert_eq!(version, 0x42);
        assert_eq!(decoded, payload.to_vec());
    }

    #[test]
    fn check_detects_corruption() {
        let s = check_encode(0x00, &[1, 2, 3, 4, 5]);
        // Flip one character to another alphabet character.
        let mut chars: Vec<char> = s.chars().collect();
        let idx = chars.len() / 2;
        chars[idx] = if chars[idx] == '2' { '3' } else { '2' };
        let corrupted: String = chars.into_iter().collect();
        assert!(matches!(
            check_decode(&corrupted),
            Err(Base58Error::BadChecksum) | Err(Base58Error::BadLength)
        ));
    }

    #[test]
    fn check_rejects_too_short() {
        assert_eq!(check_decode("2g"), Err(Base58Error::BadLength));
    }

    #[test]
    fn genesis_address_vector() {
        // The famous genesis-block address encodes hash160
        // 62e907b15cbf27d5425399ebf6f0fb50ebb88f18 with version 0.
        let payload = crate::hex::decode("62e907b15cbf27d5425399ebf6f0fb50ebb88f18").unwrap();
        assert_eq!(
            check_encode(0x00, &payload),
            "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa"
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_check_round_trip(version in any::<u8>(),
                                 data in proptest::collection::vec(any::<u8>(), 0..40)) {
            let s = check_encode(version, &data);
            let (v, p) = check_decode(&s).unwrap();
            prop_assert_eq!(v, version);
            prop_assert_eq!(p, data);
        }
    }
}
