//! Property: the incrementally-maintained chain state is history-free.
//!
//! A chain that lived through an arbitrary fork/reorg schedule — side
//! branches mined, abandoned, re-extended, timestamps swinging around the
//! median-time-past boundary — must be indistinguishable from a fresh
//! chain that only ever saw the final active blocks, in order. The
//! comparison is exact: [`UtxoSet`] equality covers the coin map *and*
//! the per-address index, the fingerprint covers canonical serialisation,
//! and per-transaction confirmations cover the transaction index that
//! reorgs rewire.
//!
//! This is the shrinkable proptest twin of the `diff/chain-reorg` fuzz
//! target in `btcfast-audit`: same property, but driven by a model that
//! proptest can minimise when it fails.

use btcfast_btcsim::miner::Miner;
use btcfast_btcsim::params::ChainParams;
use btcfast_btcsim::wallet::Wallet;
use btcfast_btcsim::{Amount, Chain};
use btcfast_crypto::keys::Address;
use btcfast_crypto::Hash256;
use proptest::prelude::*;

/// One mining step: which known block to build on, a timestamp offset in
/// `[-900, +1800]` around the parent (median-time-past edges in both
/// directions), and whether to include a wallet payment.
type Schedule = Vec<(u8, u16, bool, u32)>;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(
        (any::<u8>(), 0u16..2_701, any::<bool>(), 1u32..100_000_000),
        4..14,
    )
}

/// Runs the schedule through one incrementally-updated chain. Returns the
/// chain; rejected blocks (bad timestamps, stale forks) are simply not
/// added to the parent pool, mirroring a real node dropping them.
fn run_schedule(schedule: &Schedule, params: &ChainParams) -> Chain {
    let wallet = Wallet::from_seed(b"reorg replay wallet");
    let mut chain = Chain::new(params.clone());
    let mut miner = Miner::new(params.clone(), wallet.address());

    let mut known = vec![Hash256::ZERO];
    for (step, &(selector, jitter, pay, sats)) in schedule.iter().enumerate() {
        let parent = known[selector as usize % known.len()];
        let parent_time = if parent == Hash256::ZERO {
            0
        } else {
            chain.block(&parent).expect("known parent").header.time
        };
        let time = (parent_time + u64::from(jitter) + 600).saturating_sub(900);
        let txs = if parent == chain.tip_hash() && pay {
            wallet
                .create_payment(
                    &chain,
                    Address([0x24; 20]),
                    Amount::from_sats(u64::from(sats)).expect("bounded amount"),
                    Amount::from_sats(1_000).expect("bounded fee"),
                    // Distinct memos keep txids unique across competing tips.
                    Some(vec![step as u8]),
                )
                .ok()
                .into_iter()
                .collect()
        } else {
            Vec::new()
        };
        let block = miner.mine_block_on(&chain, parent, txs, time);
        let hash = block.hash();
        if chain.submit_block(block).is_ok() {
            known.push(hash);
        }
    }
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental-with-reorgs and linear-from-scratch agree on every
    /// observable: tip, height, accumulated work, the full UTXO set with
    /// its address index, the canonical fingerprint, and the confirmation
    /// count of every transaction ever mined into the surviving chain.
    #[test]
    fn reorged_chain_equals_fresh_replay(schedule in schedule_strategy()) {
        let params = ChainParams::regtest();
        let chain = run_schedule(&schedule, &params);

        let mut fresh = Chain::new(params);
        for hash in chain.active_hashes().to_vec() {
            let block = chain.block(&hash).expect("active block in store").clone();
            fresh
                .submit_block(block)
                .expect("surviving active blocks replay linearly");
        }

        prop_assert_eq!(fresh.tip_hash(), chain.tip_hash());
        prop_assert_eq!(fresh.height(), chain.height());
        prop_assert_eq!(fresh.tip_work(), chain.tip_work());
        prop_assert_eq!(
            fresh.utxo(),
            chain.utxo(),
            "incremental UTXO set (coins + address index) diverged from rebuild"
        );
        prop_assert_eq!(fresh.utxo().fingerprint(), chain.utxo().fingerprint());

        for hash in chain.active_hashes() {
            let block = chain.block(hash).expect("active block in store");
            for tx in &block.transactions {
                let txid = tx.txid();
                prop_assert_eq!(
                    chain.confirmations(&txid),
                    fresh.confirmations(&txid),
                    "confirmations diverged for {:?}",
                    txid
                );
            }
        }
    }
}
