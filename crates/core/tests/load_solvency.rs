//! Property suite: load shedding never violates escrow solvency.
//!
//! Whatever the arrival schedule, admission capacity, and shedding
//! policy, payments the admission layer refuses must leave no trace in
//! any shard's escrow: the locked collateral accounts *exactly* for the
//! payments actually served (zero residue), the lock never exceeds the
//! escrow balance (solvency), and every offered payment is either served
//! or in the shed set (no silent loss).

use btcfast::admission::{AdmissionConfig, SheddingPolicy};
use btcfast::engine::{EngineConfig, LoadArrival, PaymentEngine};
use btcfast::SessionConfig;
use btcfast_netsim::time::SimTime;
use proptest::prelude::*;

const SHARDS: usize = 2;

fn policy() -> impl Strategy<Value = SheddingPolicy> {
    prop_oneof![
        Just(SheddingPolicy::RejectNew),
        Just(SheddingPolicy::DropOldest),
        Just(SheddingPolicy::FairPerShard),
    ]
}

/// Random sorted schedules: up to 9 arrivals of 1–2 payments each, with
/// millisecond-scale gaps — far faster than a shard serves, so bounded
/// capacities genuinely shed.
fn schedule() -> impl Strategy<Value = Vec<LoadArrival>> {
    proptest::collection::vec((1u64..80, 0usize..SHARDS, 1usize..3), 1..10).prop_map(|steps| {
        let mut at = SimTime::ZERO;
        steps
            .into_iter()
            .map(|(gap_ms, shard, payments)| {
                at += SimTime::from_millis(gap_ms);
                LoadArrival {
                    at,
                    shard,
                    payments,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shedding_never_violates_escrow_solvency(
        seed in 0u64..1_000,
        capacity in 0usize..6,
        policy in policy(),
        schedule in schedule(),
    ) {
        let engine = PaymentEngine::new(EngineConfig {
            session: SessionConfig::eos_flavored(),
            shards: SHARDS,
            batch_size: 3,
            ..EngineConfig::default()
        });
        let report = engine
            .run_load(seed, &schedule, AdmissionConfig::bounded(capacity, policy))
            .expect("load run");

        let offered: usize = schedule.iter().map(|a| a.payments).sum();
        prop_assert_eq!(report.offered, offered);
        // No silent loss: every offered payment is served or shed.
        prop_assert_eq!(report.executed + report.shed_count(), offered);
        // Zero residue: shed payments leave nothing behind in escrow.
        prop_assert_eq!(report.escrow_residue(), 0u128);
        for outcome in &report.outcomes {
            prop_assert_eq!(outcome.escrow_locked, outcome.expected_locked);
            // Solvency: the lock never exceeds the deposit backing it.
            prop_assert!(
                outcome.escrow_locked <= outcome.escrow_balance,
                "shard {} locked {} > balance {}",
                outcome.shard,
                outcome.escrow_locked,
                outcome.escrow_balance
            );
            // Admitted tickets are served unless DropOldest displaced
            // them after admission.
            prop_assert_eq!(
                outcome.executed as u64,
                outcome.admission.admitted - outcome.admission.dropped_oldest
            );
        }
    }
}
