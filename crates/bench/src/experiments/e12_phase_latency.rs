//! E12 — per-phase latency attribution on the accept path.
//!
//! Claim C1 of the paper is the headline: point-of-sale acceptance is
//! sub-second because every slow step (escrow funding, registration
//! finality) is checkout preparation, off the critical path. This
//! experiment *shows the decomposition* instead of asserting the total:
//! a traced session runs a batch workload and the per-phase spans on its
//! sim-time trace are aggregated into a latency-breakdown table — offer
//! delivery, merchant verification, and acceptance delivery are the only
//! phases inside the measured wait, and their sum is the accept span.
//!
//! Two companion tables dump the scraped subsystem counters (mempool,
//! chains, verifier cache) and the determinism evidence: two sharded
//! engine runs at the same seed, whose fingerprints — which hash the
//! rendered JSONL traces — must match byte for byte.

use crate::table::{f3, Table};
use btcfast::config::SessionConfig;
use btcfast::engine::{EngineConfig, PaymentEngine};
use btcfast::session::FastPaySession;
use btcfast::telemetry;
use btcfast_crypto::WorkerPool;
use btcfast_obs::{stats, MetricValue, Registry, TraceEvent};

/// The fixed seed every E12 run replays.
pub const SEED: u64 = 0xE12;

/// Runs the traced workload E12 attributes: `payments` full fast payments
/// back to back, each followed by a confirming BTC block, so every phase
/// span — registration, offer delivery, merchant verification, acceptance
/// delivery, and the end-to-end accept wait — lands on the trace once per
/// payment.
fn run_workload(payments: usize) -> FastPaySession {
    let mut session = FastPaySession::new(SessionConfig::default(), SEED);
    for _ in 0..payments {
        let report = session
            .run_fast_payment(1_000_000)
            .expect("honest payment succeeds");
        assert!(report.accepted, "{:?}", report.reject);
        session.mine_public_block().expect("block connects");
    }
    session
}

/// Aggregates span durations by phase name, in first-occurrence order.
fn phase_table(events: &[TraceEvent]) -> Table {
    let mut order: Vec<&'static str> = Vec::new();
    let mut durations: std::collections::HashMap<&'static str, Vec<u64>> =
        std::collections::HashMap::new();
    for event in events {
        let Some(dur) = event.dur_micros else {
            continue;
        };
        if !durations.contains_key(event.name) {
            order.push(event.name);
        }
        durations.entry(event.name).or_default().push(dur);
    }

    let mut table = Table::new(
        "E12 — accept-path latency attribution (sim-time, claim C1)",
        &["phase", "count", "mean (ms)", "p50 (ms)", "p95 (ms)"],
    );
    for name in order {
        let mut micros = durations.remove(name).expect("collected above");
        micros.sort_unstable();
        let mean = micros.iter().map(|&v| v as f64).sum::<f64>() / micros.len() as f64;
        let p50 = stats::quantile_sorted_u64(&micros, 0.50).expect("nonempty") as f64;
        let p95 = stats::quantile_sorted_u64(&micros, 0.95).expect("nonempty") as f64;
        table.push(vec![
            name.to_string(),
            micros.len().to_string(),
            f3(mean / 1e3),
            f3(p50 / 1e3),
            f3(p95 / 1e3),
        ]);
    }
    table
}

/// Dumps the scraped metric registry as a name/value table.
fn metrics_table(registry: &Registry) -> Table {
    let mut table = Table::new("E12 — scraped subsystem counters", &["metric", "value"]);
    for (name, value) in registry.snapshot() {
        let rendered = match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(count, sum, p50, p95, p99) => {
                format!("count={count} sum={sum} p50={p50} p95={p95} p99={p99}")
            }
        };
        table.push(vec![name, rendered]);
    }
    table
}

/// Two engine runs at [`SEED`]; returns `(fingerprint_hex, traces_match)`.
fn replay_evidence(quick: bool) -> (String, bool) {
    let engine = PaymentEngine::new(EngineConfig {
        shards: 2,
        payments_per_shard: if quick { 2 } else { 6 },
        batch_size: 2,
        ..EngineConfig::default()
    });
    let pool = WorkerPool::with_default_parallelism();
    let first = engine.run(SEED, &pool).expect("engine run succeeds");
    let second = engine.run(SEED, &pool).expect("engine run succeeds");
    let traces_match = first.fingerprint == second.fingerprint
        && first
            .outcomes
            .iter()
            .zip(&second.outcomes)
            .all(|(a, b)| a.trace_jsonl == b.trace_jsonl && !a.trace_jsonl.is_empty());
    (format!("{}", first.fingerprint), traces_match)
}

/// Runs E12.
pub fn run(quick: bool) -> Vec<Table> {
    let session = run_workload(if quick { 8 } else { 32 });

    let registry = Registry::new();
    telemetry::publish_session(&registry, &session);

    let (fingerprint, traces_match) = replay_evidence(quick);
    let mut replay = Table::new(
        "E12 — deterministic replay (fingerprint covers traces)",
        &["engine fingerprint (seed 0xE12)", "traces byte-identical"],
    );
    assert!(
        traces_match,
        "same-seed engine runs must produce byte-identical traces"
    );
    replay.push(vec![fingerprint, traces_match.to_string()]);

    vec![
        phase_table(session.trace()),
        metrics_table(&registry),
        replay,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_runs_same_seed_produce_byte_identical_traces() {
        // The PR's acceptance criterion, asserted directly on trace bytes.
        let once = btcfast_obs::render_jsonl(run_workload(3).trace());
        let twice = btcfast_obs::render_jsonl(run_workload(3).trace());
        assert!(!once.is_empty());
        assert_eq!(once, twice);
        // And through the sharded engine, where the fingerprint hashes
        // the rendered traces.
        let (_, traces_match) = replay_evidence(true);
        assert!(traces_match);
    }

    #[test]
    fn e12_emits_phase_metrics_and_replay_tables() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| !t.is_empty()));
        let phases = tables[0].render();
        for phase in [
            "session.offer_delivery",
            "session.merchant_verify",
            "session.acceptance_delivery",
            "session.accept",
            "session.register",
            "session.escrow_open",
        ] {
            assert!(phases.contains(phase), "missing {phase} in:\n{phases}");
        }
        assert!(tables[1].render().contains("btcfast_mempool_admitted"));
    }
}
