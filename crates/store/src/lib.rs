//! `btcfast-store`: crash-safe durable state for protocol participants.
//!
//! Production nodes restart. The paper's fast-payment guarantee survives a
//! restart only if every side-effecting protocol step — escrow opens,
//! offers, acceptances, broadcasts, dispute evidence, verdicts — is on
//! durable media *before* it executes, so the node can re-hydrate and
//! resume exactly where it died. This crate is the durable half of that
//! story:
//!
//! * [`wal::Wal`] — an append-only write-ahead log of length-prefixed,
//!   CRC-checksummed, sequence-numbered records. Torn tails (a crash mid
//!   `append`) and flipped bits are *detected*, never trusted: recovery
//!   either repairs the log by clean prefix truncation or reports a typed
//!   [`StoreError`] — it never panics on hostile bytes.
//! * [`snapshot::SnapshotStore`] — a single-slot checkpoint of encoded
//!   state plus the WAL sequence it covers, so recovery replays only the
//!   tail of the log.
//! * [`storage::Storage`] — the durable-medium abstraction:
//!   [`storage::MemStorage`] (a handle-shared byte vector modelling a disk
//!   that survives simulated process crashes, fully deterministic) and
//!   [`storage::FileStorage`] (a real file, for processes that actually
//!   restart).
//!
//! The encoding follows the workspace codec idiom: little-endian
//! fixed-width integers and length-prefixed byte strings, with hard caps
//! on hostile length prefixes. Everything is deterministic: the same
//! append sequence produces byte-identical media, and recovery of
//! identical media produces identical state — the property the audit
//! crate's `store` engine checks at every possible crash offset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshot;
pub mod storage;
pub mod wal;

pub use snapshot::SnapshotStore;
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{Corruption, RecoveredLog, Wal, WalStats};

use std::error::Error;
use std::fmt;

/// Why a store operation failed. Corruption of durable media is a
/// *condition to handle* (usually by truncating to the last clean prefix),
/// never a reason to panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying medium failed (I/O error, detached handle).
    Io(String),
    /// A record or snapshot failed validation and strict mode was asked
    /// to surface it rather than repair it.
    Corrupt(Corruption),
    /// A record payload exceeds the hard encoding cap.
    RecordTooLarge {
        /// The payload length requested.
        len: usize,
        /// The maximum the format accepts.
        max: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage I/O failure: {msg}"),
            StoreError::Corrupt(c) => write!(f, "corrupt store: {c}"),
            StoreError::RecordTooLarge { len, max } => {
                write!(f, "record payload {len} bytes exceeds cap {max}")
            }
        }
    }
}

impl Error for StoreError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the WAL record checksum.
/// Table-driven; the table is computed at compile time so the crate stays
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn errors_render_with_context() {
        let e = StoreError::RecordTooLarge { len: 9, max: 4 };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Io("disk gone".into());
        assert!(e.to_string().contains("disk gone"));
    }
}
