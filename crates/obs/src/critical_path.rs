//! Per-payment span-tree reconstruction and critical-path attribution.
//!
//! The tracer renders flat JSONL; this module turns it back into causal
//! trees and answers the question the flat trace cannot: *why* was an
//! accept slow. [`build_trees`] parses the JSONL (with a small, strict,
//! dependency-free JSON-object parser — every line the tracer renders
//! must parse, property-tested), groups attributed events by `trace`,
//! and links children to parents by `(sid, pid)`, rejecting malformed
//! forests (no root, several roots, orphan parents, cycles).
//!
//! On a tree, [`breakdown`] computes each node's **self-time** — its
//! span interval minus the union of its children's intervals clipped to
//! it — and buckets it as transport / verify / escrow / queueing /
//! other by span name. Because the instrumentation emits disjoint
//! sibling spans that tile their parent, the bucketed self-times sum
//! exactly to the root's duration: the accept latency decomposes with
//! nothing missing and nothing double-counted. [`critical_path`] walks
//! the latest-ending child chain from the root, and [`check_slo`] turns
//! a set of breakdowns into a p99-vs-budget verdict that names the
//! dominant bucket when the budget is blown.
//!
//! Everything here is deterministic: trees sort by trace id, ties break
//! structurally, and no floats enter the self-time math.

use crate::stats::quantile_sorted_u64;
use crate::trace::TraceContext;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON scalar from one trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonScalar {
    /// Any integer (the tracer never emits floats).
    Num(i128),
    /// A boolean.
    Bool(bool),
    /// An unescaped string.
    Str(String),
}

impl JsonScalar {
    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Parses one rendered trace line as a flat JSON object of scalar
/// values. Strict: the whole line must be consumed, keys must be
/// strings, values must be integers, booleans, or strings (exactly the
/// shapes [`crate::trace::render_event`] emits). Returns `None` on any
/// deviation rather than panicking.
pub fn parse_json_line(line: &str) -> Option<Vec<(String, JsonScalar)>> {
    let mut chars = line.chars().peekable();
    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    let mut pairs = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next()? != ':' {
                return None;
            }
            skip_ws(&mut chars);
            let value = parse_scalar(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next()? {
                ',' => continue,
                '}' => break,
                _ => return None,
            }
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(pairs)
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{0008}'),
                'f' => out.push('\u{000c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None,
            c => out.push(c),
        }
    }
}

fn parse_scalar(chars: &mut Chars<'_>) -> Option<JsonScalar> {
    match chars.peek()? {
        '"' => parse_string(chars).map(JsonScalar::Str),
        't' => parse_literal(chars, "true").map(|()| JsonScalar::Bool(true)),
        'f' => parse_literal(chars, "false").map(|()| JsonScalar::Bool(false)),
        '-' | '0'..='9' => {
            let negative = chars.peek() == Some(&'-');
            if negative {
                chars.next();
            }
            let mut digits = 0u32;
            let mut value: i128 = 0;
            while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                chars.next();
                value = value.checked_mul(10)?.checked_add(i128::from(d))?;
                digits += 1;
            }
            (digits > 0 && digits <= 39).then_some(JsonScalar::Num(if negative {
                -value
            } else {
                value
            }))
        }
        _ => None,
    }
}

fn parse_literal(chars: &mut Chars<'_>, lit: &str) -> Option<()> {
    for expected in lit.chars() {
        if chars.next()? != expected {
            return None;
        }
    }
    Some(())
}

/// One node of a reconstructed span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span/event name.
    pub name: String,
    /// Start (or occurrence time, for points), sim-time µs.
    pub start_us: u64,
    /// End, sim-time µs; equals `start_us` for point events.
    pub end_us: u64,
    /// True for spans, false for point events.
    pub is_span: bool,
    /// This node's span id.
    pub span_id: u64,
    /// The parent span id (`0` for the root).
    pub parent_id: u64,
    /// The payment id, when the event carried a `payment` field.
    pub payment: Option<u64>,
    /// Indices of this node's children within [`SpanTree::nodes`].
    pub children: Vec<usize>,
}

/// One payment's reconstructed causal tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    /// The trace (payment root) id.
    pub trace_id: u64,
    /// Index of the root node in `nodes`.
    pub root: usize,
    /// All nodes, in trace-line order.
    pub nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// The root node.
    pub fn root_node(&self) -> &SpanNode {
        &self.nodes[self.root]
    }

    /// The root span's duration — the per-payment accept latency.
    pub fn root_duration_us(&self) -> u64 {
        self.root_node().end_us - self.root_node().start_us
    }

    /// The payment id, from the root or the first node that carries one.
    pub fn payment(&self) -> Option<u64> {
        self.root_node()
            .payment
            .or_else(|| self.nodes.iter().find_map(|n| n.payment))
    }
}

/// Why a JSONL trace failed to reconstruct as well-formed span trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A line was not a parseable flat JSON object of the traced shape.
    Parse {
        /// 1-based line number.
        line: usize,
    },
    /// A trace had attributed events but no root span (`pid == 0`).
    NoRoot {
        /// The offending trace id.
        trace_id: u64,
    },
    /// A trace had more than one root span.
    MultipleRoots {
        /// The offending trace id.
        trace_id: u64,
    },
    /// A node referenced a parent span id absent from its trace.
    OrphanParent {
        /// The offending trace id.
        trace_id: u64,
        /// The span id whose parent is missing.
        span_id: u64,
    },
    /// Two nodes in one trace claimed the same span id.
    DuplicateSpanId {
        /// The offending trace id.
        trace_id: u64,
        /// The colliding span id.
        span_id: u64,
    },
    /// Parent links loop: some nodes are unreachable from the root.
    Cycle {
        /// The offending trace id.
        trace_id: u64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Parse { line } => write!(f, "line {line}: not a valid trace object"),
            TreeError::NoRoot { trace_id } => write!(f, "trace {trace_id}: no root span"),
            TreeError::MultipleRoots { trace_id } => {
                write!(f, "trace {trace_id}: multiple root spans")
            }
            TreeError::OrphanParent { trace_id, span_id } => {
                write!(
                    f,
                    "trace {trace_id}: span {span_id} has an orphan parent_id"
                )
            }
            TreeError::DuplicateSpanId { trace_id, span_id } => {
                write!(f, "trace {trace_id}: duplicate span id {span_id}")
            }
            TreeError::Cycle { trace_id } => {
                write!(f, "trace {trace_id}: parent links form a cycle")
            }
        }
    }
}

/// Reconstructs the per-payment span trees from rendered JSONL.
///
/// Unattributed lines (no causal triple) are skipped — they are
/// harness-level annotations, not tree members. Trees return sorted by
/// `trace_id`, so equal traces reconstruct to equal forests.
///
/// # Errors
///
/// Returns a [`TreeError`] naming the first malformation found: an
/// unparseable line, a rootless or multi-rooted trace, an orphan
/// `parent_id`, a duplicated span id, or a parent-link cycle.
pub fn build_trees(jsonl: &str) -> Result<Vec<SpanTree>, TreeError> {
    struct Raw {
        name: String,
        start_us: u64,
        end_us: u64,
        is_span: bool,
        ctx: TraceContext,
        payment: Option<u64>,
    }

    let mut by_trace: BTreeMap<u64, Vec<Raw>> = BTreeMap::new();
    for (index, line) in jsonl.lines().enumerate() {
        let parse_err = TreeError::Parse { line: index + 1 };
        let pairs = parse_json_line(line).ok_or(parse_err.clone())?;
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let t = get("t").and_then(JsonScalar::as_u64).ok_or(parse_err)?;
        let (name, is_span) = match (get("span"), get("event")) {
            (Some(JsonScalar::Str(s)), _) => (s.clone(), true),
            (None, Some(JsonScalar::Str(s))) => (s.clone(), false),
            _ => return Err(TreeError::Parse { line: index + 1 }),
        };
        let Some(trace_id) = get("trace").and_then(JsonScalar::as_u64) else {
            continue; // unattributed: not part of any tree
        };
        let ctx = TraceContext {
            trace_id,
            span_id: get("sid").and_then(JsonScalar::as_u64).unwrap_or(0),
            parent_id: get("pid").and_then(JsonScalar::as_u64).unwrap_or(0),
        };
        if !ctx.is_attributed() {
            continue;
        }
        let dur = get("dur_us").and_then(JsonScalar::as_u64).unwrap_or(0);
        by_trace.entry(trace_id).or_default().push(Raw {
            name,
            start_us: t,
            end_us: t.saturating_add(if is_span { dur } else { 0 }),
            is_span,
            ctx,
            payment: get("payment").and_then(JsonScalar::as_u64),
        });
    }

    let mut trees = Vec::with_capacity(by_trace.len());
    for (trace_id, raws) in by_trace {
        let mut nodes: Vec<SpanNode> = Vec::with_capacity(raws.len());
        let mut by_sid: BTreeMap<u64, usize> = BTreeMap::new();
        let mut root = None;
        for raw in raws {
            let index = nodes.len();
            if by_sid.insert(raw.ctx.span_id, index).is_some() {
                return Err(TreeError::DuplicateSpanId {
                    trace_id,
                    span_id: raw.ctx.span_id,
                });
            }
            if raw.ctx.parent_id == 0 && root.replace(index).is_some() {
                return Err(TreeError::MultipleRoots { trace_id });
            }
            nodes.push(SpanNode {
                name: raw.name,
                start_us: raw.start_us,
                end_us: raw.end_us,
                is_span: raw.is_span,
                span_id: raw.ctx.span_id,
                parent_id: raw.ctx.parent_id,
                payment: raw.payment,
                children: Vec::new(),
            });
        }
        let root = root.ok_or(TreeError::NoRoot { trace_id })?;
        for index in 0..nodes.len() {
            let parent_id = nodes[index].parent_id;
            if parent_id == 0 {
                continue;
            }
            let parent = *by_sid.get(&parent_id).ok_or(TreeError::OrphanParent {
                trace_id,
                span_id: nodes[index].span_id,
            })?;
            nodes[parent].children.push(index);
        }
        // Every node must be reachable from the root, else the parent
        // links loop among themselves.
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![root];
        while let Some(index) = stack.pop() {
            if std::mem::replace(&mut seen[index], true) {
                continue;
            }
            stack.extend(nodes[index].children.iter().copied());
        }
        if seen.iter().any(|s| !s) {
            return Err(TreeError::Cycle { trace_id });
        }
        trees.push(SpanTree {
            trace_id,
            root,
            nodes,
        });
    }
    Ok(trees)
}

/// Verifies the sim-time nesting invariant: every child **span**'s
/// interval lies within its parent span's interval. Point events are
/// exempt (a dedup drop can trail its leg's delivery).
///
/// # Errors
///
/// Returns `(parent span id, child span id)` of the first violation.
pub fn check_nesting(tree: &SpanTree) -> Result<(), (u64, u64)> {
    for node in &tree.nodes {
        if !node.is_span {
            continue;
        }
        for &child in &node.children {
            let c = &tree.nodes[child];
            if c.is_span && (c.start_us < node.start_us || c.end_us > node.end_us) {
                return Err((node.span_id, c.span_id));
            }
        }
    }
    Ok(())
}

/// The latency buckets self-time is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bucket {
    /// Message delivery, retransmission backoff, dedup handling.
    Transport,
    /// Merchant-side offer verification.
    Verify,
    /// Escrow registration / PSC interaction.
    Escrow,
    /// Time inside the payment not covered by any instrumented phase:
    /// queueing and scheduling gaps.
    Queueing,
    /// Anything else (dispute phases, harness annotations).
    Other,
}

impl Bucket {
    /// Stable iteration order for reports.
    pub const ALL: [Bucket; 5] = [
        Bucket::Transport,
        Bucket::Verify,
        Bucket::Escrow,
        Bucket::Queueing,
        Bucket::Other,
    ];

    /// The bucket's report label.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Transport => "transport",
            Bucket::Verify => "verify",
            Bucket::Escrow => "escrow",
            Bucket::Queueing => "queueing",
            Bucket::Other => "other",
        }
    }
}

/// Buckets a span name. The payment root and the accept wrapper land in
/// [`Bucket::Queueing`] because their *self*-time is exactly the time no
/// instrumented phase accounts for — waiting between phases.
pub fn classify(name: &str) -> Bucket {
    if name.starts_with("transport.") || name.contains("delivery") {
        Bucket::Transport
    } else if name.contains("verify") {
        Bucket::Verify
    } else if name.contains("register") || name.contains("escrow") {
        Bucket::Escrow
    } else if name.contains("queue") || name.ends_with(".payment") || name.ends_with(".accept") {
        Bucket::Queueing
    } else {
        Bucket::Other
    }
}

/// One payment's bucketed self-time decomposition, in µs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// The payment id, when the trace carried one.
    pub payment: Option<u64>,
    /// The root span's duration: the accept latency being decomposed.
    pub total_us: u64,
    /// Self-time in message delivery, backoff, and dedup.
    pub transport_us: u64,
    /// Self-time in merchant verification.
    pub verify_us: u64,
    /// Self-time in escrow registration.
    pub escrow_us: u64,
    /// Self-time in queueing/scheduling gaps.
    pub queueing_us: u64,
    /// Self-time everywhere else.
    pub other_us: u64,
}

impl Breakdown {
    /// The bucket self-times, in [`Bucket::ALL`] order.
    pub fn by_bucket(&self) -> [u64; 5] {
        [
            self.transport_us,
            self.verify_us,
            self.escrow_us,
            self.queueing_us,
            self.other_us,
        ]
    }

    /// Sum of every bucket — equals `total_us` when the instrumentation
    /// tiles the root with disjoint children (asserted by E15).
    pub fn bucket_sum_us(&self) -> u64 {
        self.by_bucket().iter().sum()
    }
}

/// A node's self-time: its span length minus the union of its children's
/// span intervals clipped to it. Points have zero self-time.
pub fn self_time_us(tree: &SpanTree, index: usize) -> u64 {
    let node = &tree.nodes[index];
    if !node.is_span {
        return 0;
    }
    let mut intervals: Vec<(u64, u64)> = node
        .children
        .iter()
        .map(|&c| &tree.nodes[c])
        .filter(|c| c.is_span)
        .map(|c| (c.start_us.max(node.start_us), c.end_us.min(node.end_us)))
        .filter(|(s, e)| e > s)
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = node.start_us;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            covered += end - start;
            cursor = end;
        }
    }
    (node.end_us - node.start_us).saturating_sub(covered)
}

/// Decomposes one payment tree into bucketed time.
///
/// The root interval is partitioned into elementary slices at every
/// span boundary, and each slice is attributed to the **deepest** span
/// covering it (ties break to the later-starting, then later-recorded
/// span). Because this is an exact partition of the root interval, the
/// buckets always sum to the root duration — even when a
/// watermark-extended phase span overlaps its successor, as happens
/// when retransmission timers trail the delivery that advanced the
/// session clock.
pub fn breakdown(tree: &SpanTree) -> Breakdown {
    let mut out = Breakdown {
        payment: tree.payment(),
        total_us: tree.root_duration_us(),
        ..Breakdown::default()
    };
    let root = &tree.nodes[tree.root];
    let (lo, hi) = (root.start_us, root.end_us);
    if hi <= lo {
        return out;
    }

    // Depth of every node, root = 0 (the forest is acyclic by
    // construction in `build_trees`).
    let mut depth = vec![0usize; tree.nodes.len()];
    let mut stack = vec![tree.root];
    while let Some(index) = stack.pop() {
        for &child in &tree.nodes[index].children {
            depth[child] = depth[index] + 1;
            stack.push(child);
        }
    }

    let spans: Vec<usize> = (0..tree.nodes.len())
        .filter(|&i| tree.nodes[i].is_span && tree.nodes[i].end_us > tree.nodes[i].start_us)
        .collect();
    let mut cuts: Vec<u64> = spans
        .iter()
        .flat_map(|&i| [tree.nodes[i].start_us, tree.nodes[i].end_us])
        .filter(|&t| t > lo && t < hi)
        .collect();
    cuts.push(lo);
    cuts.push(hi);
    cuts.sort_unstable();
    cuts.dedup();

    for pair in cuts.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        let owner = spans
            .iter()
            .copied()
            .filter(|&i| tree.nodes[i].start_us <= start && tree.nodes[i].end_us >= end)
            .max_by(|&a, &b| {
                depth[a]
                    .cmp(&depth[b])
                    .then(tree.nodes[a].start_us.cmp(&tree.nodes[b].start_us))
                    .then(a.cmp(&b))
            });
        // The root span covers every slice, so an owner always exists.
        let Some(owner) = owner else { continue };
        let slice = end - start;
        match classify(&tree.nodes[owner].name) {
            Bucket::Transport => out.transport_us += slice,
            Bucket::Verify => out.verify_us += slice,
            Bucket::Escrow => out.escrow_us += slice,
            Bucket::Queueing => out.queueing_us += slice,
            Bucket::Other => out.other_us += slice,
        }
    }
    out
}

/// The critical path: the chain of spans, root first, obtained by
/// repeatedly descending into the latest-ending child span (ties break
/// to the earlier-starting, then first-recorded child — deterministic).
pub fn critical_path(tree: &SpanTree) -> Vec<usize> {
    let mut path = vec![tree.root];
    let mut current = tree.root;
    loop {
        let next = tree.nodes[current]
            .children
            .iter()
            .copied()
            .filter(|&c| tree.nodes[c].is_span)
            .max_by(|&a, &b| {
                let (na, nb) = (&tree.nodes[a], &tree.nodes[b]);
                na.end_us
                    .cmp(&nb.end_us)
                    .then(nb.start_us.cmp(&na.start_us))
                    .then(b.cmp(&a))
            });
        match next {
            Some(child) => {
                path.push(child);
                current = child;
            }
            None => return path,
        }
    }
}

/// The verdict of [`check_slo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloVerdict {
    /// p99 of the per-payment root durations, µs.
    pub p99_us: u64,
    /// The budget the p99 is held to, µs.
    pub budget_us: u64,
    /// `p99_us <= budget_us`.
    pub ok: bool,
    /// The bucket holding the most aggregate self-time — the dominant
    /// critical-path contributor to name when the budget is blown.
    pub dominant: Bucket,
    /// That bucket's aggregate self-time, µs.
    pub dominant_us: u64,
}

impl fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok {
            write!(
                f,
                "ok: accept_p99 {}us <= budget {}us",
                self.p99_us, self.budget_us
            )
        } else {
            write!(
                f,
                "VIOLATION: accept_p99 {}us > budget {}us; dominant contributor: {} ({}us)",
                self.p99_us,
                self.budget_us,
                self.dominant.label(),
                self.dominant_us
            )
        }
    }
}

/// Checks `accept_p99 <= budget` over a set of payment breakdowns and
/// names the dominant bucket. Returns `None` on an empty set.
pub fn check_slo(breakdowns: &[Breakdown], budget_us: u64) -> Option<SloVerdict> {
    if breakdowns.is_empty() {
        return None;
    }
    let mut totals = [0u64; 5];
    let mut durations: Vec<u64> = Vec::with_capacity(breakdowns.len());
    for b in breakdowns {
        durations.push(b.total_us);
        for (slot, v) in totals.iter_mut().zip(b.by_bucket()) {
            *slot += v;
        }
    }
    durations.sort_unstable();
    let p99_us = quantile_sorted_u64(&durations, 0.99)?;
    // Highest total wins; ties break to the earlier bucket in ALL order.
    let (dominant_index, dominant_us) = totals
        .iter()
        .copied()
        .enumerate()
        .rev()
        .max_by_key(|&(_, v)| v)?;
    Some(SloVerdict {
        p99_us,
        budget_us,
        ok: p99_us <= budget_us,
        dominant: Bucket::ALL[dominant_index],
        dominant_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{render_jsonl, Tracer};

    /// A hand-built two-payment trace: root → (escrow, accept → legs).
    fn sample_jsonl() -> (String, Vec<u64>) {
        let mut t = Tracer::with_seed(true, 0xCAFE);
        let mut roots = Vec::new();
        for payment in 0..2u64 {
            let base = payment * 1_000_000;
            let root = t.mint_root();
            roots.push(root.trace_id);
            let register = t.child_of(&root);
            let accept = t.child_of(&root);
            let offer = t.child_of(&accept);
            let verify = t.child_of(&accept);
            let response = t.child_of(&accept);
            t.span_ctx(
                "session.payment",
                root,
                base,
                base + 300,
                vec![("payment", payment.into())],
            );
            t.span_ctx("session.register", register, base, base + 100, vec![]);
            t.span_ctx("session.accept", accept, base + 100, base + 300, vec![]);
            t.span_ctx(
                "session.offer_delivery",
                offer,
                base + 100,
                base + 150,
                vec![],
            );
            t.span_ctx(
                "session.merchant_verify",
                verify,
                base + 150,
                base + 250,
                vec![],
            );
            t.span_ctx(
                "session.acceptance_delivery",
                response,
                base + 250,
                base + 290,
                vec![],
            );
            t.point("engine.batch", base, vec![("size", 1usize.into())]);
        }
        (render_jsonl(t.events()), roots)
    }

    #[test]
    fn every_rendered_line_parses() {
        let (jsonl, _) = sample_jsonl();
        for line in jsonl.lines() {
            assert!(parse_json_line(line).is_some(), "unparseable: {line}");
        }
        // Hostile shapes are rejected, not panicked on.
        for bad in [
            "",
            "{",
            "{}x",
            "{\"a\":}",
            "{\"a\":01e9}",
            "{\"a\":\"unterminated",
            "[1,2]",
            "{\"a\":nope}",
        ] {
            assert!(parse_json_line(bad).is_none(), "accepted: {bad:?}");
        }
        assert_eq!(parse_json_line("{}"), Some(vec![]));
        assert_eq!(
            parse_json_line("{\"n\":-42}"),
            Some(vec![("n".into(), JsonScalar::Num(-42))])
        );
    }

    #[test]
    fn trees_rebuild_with_one_root_per_payment() {
        let (jsonl, roots) = sample_jsonl();
        let trees = build_trees(&jsonl).expect("well-formed");
        assert_eq!(trees.len(), 2);
        let mut tree_ids: Vec<u64> = trees.iter().map(|t| t.trace_id).collect();
        let mut roots = roots;
        roots.sort_unstable();
        tree_ids.sort_unstable();
        assert_eq!(tree_ids, roots);
        for tree in &trees {
            assert_eq!(tree.root_node().name, "session.payment");
            assert_eq!(tree.root_duration_us(), 300);
            assert!(check_nesting(tree).is_ok());
            assert_eq!(tree.nodes.len(), 6, "the unattributed point is skipped");
        }
    }

    #[test]
    fn breakdown_buckets_sum_to_the_root_duration() {
        let (jsonl, _) = sample_jsonl();
        let trees = build_trees(&jsonl).expect("well-formed");
        for tree in &trees {
            let b = breakdown(tree);
            assert_eq!(b.total_us, 300);
            assert_eq!(b.escrow_us, 100);
            assert_eq!(b.transport_us, 50 + 40);
            assert_eq!(b.verify_us, 100);
            // accept self-time: 200 - (50+100+40) = 10; root self: 0.
            assert_eq!(b.queueing_us, 10);
            assert_eq!(b.other_us, 0);
            assert_eq!(b.bucket_sum_us(), b.total_us);
        }
    }

    #[test]
    fn critical_path_follows_the_latest_ending_chain() {
        let (jsonl, _) = sample_jsonl();
        let trees = build_trees(&jsonl).expect("well-formed");
        let path: Vec<&str> = critical_path(&trees[0])
            .into_iter()
            .map(|i| trees[0].nodes[i].name.as_str())
            .collect();
        assert_eq!(
            path,
            vec![
                "session.payment",
                "session.accept",
                "session.acceptance_delivery"
            ]
        );
    }

    #[test]
    fn slo_checker_names_the_dominant_bucket_on_violation() {
        let (jsonl, _) = sample_jsonl();
        let trees = build_trees(&jsonl).expect("well-formed");
        let breakdowns: Vec<Breakdown> = trees.iter().map(breakdown).collect();
        let pass = check_slo(&breakdowns, 400).expect("nonempty");
        assert!(pass.ok);
        let fail = check_slo(&breakdowns, 200).expect("nonempty");
        assert!(!fail.ok);
        assert_eq!(fail.p99_us, 300);
        // verify (200us total) and transport (180us) compete; verify wins.
        assert_eq!(fail.dominant, Bucket::Verify);
        assert!(fail.to_string().contains("dominant contributor: verify"));
        assert!(check_slo(&[], 1).is_none());
    }

    #[test]
    fn malformed_forests_are_rejected_with_typed_errors() {
        // Orphan parent.
        let orphan = "{\"t\":0,\"span\":\"a\",\"dur_us\":5,\"trace\":7,\"sid\":7,\"pid\":0}\n\
                      {\"t\":1,\"span\":\"b\",\"dur_us\":2,\"trace\":7,\"sid\":8,\"pid\":99}\n";
        assert_eq!(
            build_trees(orphan),
            Err(TreeError::OrphanParent {
                trace_id: 7,
                span_id: 8
            })
        );
        // Two roots.
        let two_roots = "{\"t\":0,\"span\":\"a\",\"dur_us\":5,\"trace\":7,\"sid\":7,\"pid\":0}\n\
                         {\"t\":1,\"span\":\"b\",\"dur_us\":2,\"trace\":7,\"sid\":8,\"pid\":0}\n";
        assert_eq!(
            build_trees(two_roots),
            Err(TreeError::MultipleRoots { trace_id: 7 })
        );
        // No root.
        let no_root = "{\"t\":0,\"span\":\"a\",\"dur_us\":5,\"trace\":7,\"sid\":7,\"pid\":7}\n";
        assert_eq!(build_trees(no_root), Err(TreeError::NoRoot { trace_id: 7 }));
        // Cycle: two nodes parenting each other besides a valid root.
        let cycle = "{\"t\":0,\"span\":\"r\",\"dur_us\":9,\"trace\":7,\"sid\":7,\"pid\":0}\n\
                     {\"t\":1,\"span\":\"a\",\"dur_us\":1,\"trace\":7,\"sid\":8,\"pid\":9}\n\
                     {\"t\":2,\"span\":\"b\",\"dur_us\":1,\"trace\":7,\"sid\":9,\"pid\":8}\n";
        assert_eq!(build_trees(cycle), Err(TreeError::Cycle { trace_id: 7 }));
        // Duplicate sid.
        let dup = "{\"t\":0,\"span\":\"r\",\"dur_us\":9,\"trace\":7,\"sid\":7,\"pid\":0}\n\
                   {\"t\":1,\"span\":\"a\",\"dur_us\":1,\"trace\":7,\"sid\":7,\"pid\":7}\n";
        assert_eq!(
            build_trees(dup),
            Err(TreeError::DuplicateSpanId {
                trace_id: 7,
                span_id: 7
            })
        );
        // Unparseable line.
        assert_eq!(build_trees("not json\n"), Err(TreeError::Parse { line: 1 }));
        // Unattributed-only traces build an empty forest.
        assert_eq!(build_trees("{\"t\":0,\"event\":\"x\"}\n"), Ok(vec![]));
    }

    #[test]
    fn nesting_violations_are_caught() {
        let escaped = "{\"t\":10,\"span\":\"r\",\"dur_us\":10,\"trace\":7,\"sid\":7,\"pid\":0}\n\
                       {\"t\":5,\"span\":\"a\",\"dur_us\":2,\"trace\":7,\"sid\":8,\"pid\":7}\n";
        let trees = build_trees(escaped).expect("structurally fine");
        assert_eq!(check_nesting(&trees[0]), Err((7, 8)));
    }
}
