//! Shared 256-bit little-endian limb arithmetic used by the secp256k1 field
//! and scalar implementations.
//!
//! Values are `[u64; 4]` in little-endian limb order. Both secp256k1 moduli
//! have the form `m = 2^256 - c` with small-ish `c`, so reduction of a
//! 512-bit product folds the high half down via `2^256 ≡ c (mod m)`.

/// Adds `a + b`, returning the 4-limb sum and the carry-out bit.
pub(crate) fn add(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut carry = 0u64;
    for i in 0..4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    (out, carry)
}

/// Subtracts `a - b`, returning the 4-limb difference and the borrow-out bit.
pub(crate) fn sub(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    (out, borrow)
}

/// Compares `a` and `b` as 256-bit integers.
pub(crate) fn cmp(a: &[u64; 4], b: &[u64; 4]) -> std::cmp::Ordering {
    for i in (0..4).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Returns true if all limbs are zero.
pub(crate) fn is_zero(a: &[u64; 4]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Schoolbook multiplication `a * b` into an 8-limb (512-bit) product.
pub(crate) fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u128;
        for j in 0..4 {
            let t = (a[i] as u128) * (b[j] as u128) + (out[i + j] as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        out[i + 4] = carry as u64;
    }
    out
}

/// Reduces an 8-limb value modulo `m = 2^256 - c` (with `c` given as 4 limbs,
/// high limb zero in practice), returning a fully reduced 4-limb value.
pub(crate) fn reduce_wide(mut wide: [u64; 8], modulus: &[u64; 4], c: &[u64; 4]) -> [u64; 4] {
    // Fold the high half down: v = hi * 2^256 + lo ≡ hi * c + lo (mod m).
    // Each fold shrinks the value; a few iterations reach < 2^256.
    loop {
        let hi = [wide[4], wide[5], wide[6], wide[7]];
        if is_zero(&hi) {
            break;
        }
        let lo = [wide[0], wide[1], wide[2], wide[3]];
        let prod = mul_wide(&hi, c); // hi * c, up to 512 bits but much smaller
                                     // wide = prod + lo
        let mut out = [0u64; 8];
        let mut carry = 0u64;
        for i in 0..8 {
            let lo_limb = if i < 4 { lo[i] } else { 0 };
            let (s1, c1) = prod[i].overflowing_add(lo_limb);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(carry, 0, "fold cannot overflow 512 bits");
        wide = out;
    }
    let mut v = [wide[0], wide[1], wide[2], wide[3]];
    // At most a couple of conditional subtractions remain.
    while cmp(&v, modulus) != std::cmp::Ordering::Less {
        let (d, borrow) = sub(&v, modulus);
        debug_assert_eq!(borrow, 0);
        v = d;
    }
    v
}

/// Reduces a 4-limb value (possibly >= m, plus an optional carry bit from an
/// addition) modulo `m = 2^256 - c`.
pub(crate) fn reduce_small(v: [u64; 4], carry: u64, modulus: &[u64; 4], c: &[u64; 4]) -> [u64; 4] {
    let mut wide = [v[0], v[1], v[2], v[3], carry, 0, 0, 0];
    if carry == 0 {
        let mut out = v;
        while cmp(&out, modulus) != std::cmp::Ordering::Less {
            let (d, _) = sub(&out, modulus);
            out = d;
        }
        return out;
    }
    // carry * 2^256 ≡ carry * c (mod m)
    wide[4] = carry;
    reduce_wide(wide, modulus, c)
}

/// Parses 32 big-endian bytes into little-endian limbs (no reduction).
pub(crate) fn from_be_bytes(bytes: &[u8; 32]) -> [u64; 4] {
    let mut limbs = [0u64; 4];
    for i in 0..4 {
        let mut word = [0u8; 8];
        word.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
        limbs[3 - i] = u64::from_be_bytes(word);
    }
    limbs
}

/// Serializes little-endian limbs into 32 big-endian bytes.
pub(crate) fn to_be_bytes(limbs: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: [u64; 4] = [
        // secp256k1 field prime p, little-endian limbs
        0xFFFFFFFEFFFFFC2F,
        0xFFFFFFFFFFFFFFFF,
        0xFFFFFFFFFFFFFFFF,
        0xFFFFFFFFFFFFFFFF,
    ];
    const C: [u64; 4] = [0x1000003D1, 0, 0, 0]; // 2^256 - p

    #[test]
    fn add_carries() {
        let a = [u64::MAX, u64::MAX, u64::MAX, u64::MAX];
        let b = [1, 0, 0, 0];
        let (s, carry) = add(&a, &b);
        assert_eq!(s, [0, 0, 0, 0]);
        assert_eq!(carry, 1);
    }

    #[test]
    fn sub_borrows() {
        let a = [0, 0, 0, 0];
        let b = [1, 0, 0, 0];
        let (d, borrow) = sub(&a, &b);
        assert_eq!(d, [u64::MAX, u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = [0x1234, 0x5678, 0x9abc, 0x0def];
        let b = [0xfeed, 0xbeef, 0xdead, 0x0123];
        let (s, c) = add(&a, &b);
        assert_eq!(c, 0);
        let (d, b2) = sub(&s, &b);
        assert_eq!(b2, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn mul_wide_small() {
        let a = [7, 0, 0, 0];
        let b = [9, 0, 0, 0];
        let p = mul_wide(&a, &b);
        assert_eq!(p, [63, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mul_wide_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let a = [u64::MAX; 4];
        let p = mul_wide(&a, &a);
        assert_eq!(p[0], 1);
        for limb in &p[1..4] {
            assert_eq!(*limb, 0);
        }
        assert_eq!(p[4], 0xFFFFFFFFFFFFFFFE);
        for limb in &p[5..8] {
            assert_eq!(*limb, u64::MAX);
        }
    }

    #[test]
    fn reduce_identity_below_modulus() {
        let v = [42, 0, 0, 0];
        let wide = [42, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &M, &C), v);
    }

    #[test]
    fn reduce_exactly_modulus_is_zero() {
        let wide = [M[0], M[1], M[2], M[3], 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &M, &C), [0, 0, 0, 0]);
    }

    #[test]
    fn reduce_two_to_256() {
        // 2^256 mod p = c
        let wide = [0, 0, 0, 0, 1, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &M, &C), C);
    }

    #[test]
    fn byte_round_trip() {
        let limbs = [0x0123456789abcdef, 0xfedcba9876543210, 0x1111, 0x2222];
        assert_eq!(from_be_bytes(&to_be_bytes(&limbs)), limbs);
    }

    #[test]
    fn be_bytes_order() {
        let limbs = [1u64, 0, 0, 0];
        let bytes = to_be_bytes(&limbs);
        assert_eq!(bytes[31], 1);
        assert!(bytes[..31].iter().all(|&b| b == 0));
    }
}
