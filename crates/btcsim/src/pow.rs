//! Proof-of-work primitives: compact target encoding ("nBits"), target
//! checks, and difficulty retargeting.

use crate::u256::U256;
use btcfast_crypto::Hash256;
use std::error::Error;
use std::fmt;

/// Bitcoin's compact 32-bit target encoding (`nBits`).
///
/// Layout: 1 exponent byte followed by a 3-byte mantissa;
/// `target = mantissa * 256^(exponent - 3)`.
///
/// ```
/// use btcfast_btcsim::pow::CompactBits;
///
/// // Bitcoin genesis difficulty.
/// let bits = CompactBits(0x1d00ffff);
/// let target = bits.to_target().unwrap();
/// assert_eq!(CompactBits::from_target(&target), bits);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompactBits(pub u32);

/// Errors decoding compact bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactBitsError {
    /// The encoding sets the mantissa sign bit, which Bitcoin treats as
    /// negative and rejects for targets.
    Negative,
    /// The implied target overflows 256 bits.
    Overflow,
    /// The target decodes to zero, which no hash can satisfy.
    Zero,
}

impl fmt::Display for CompactBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactBitsError::Negative => write!(f, "compact target is negative"),
            CompactBitsError::Overflow => write!(f, "compact target overflows 256 bits"),
            CompactBitsError::Zero => write!(f, "compact target is zero"),
        }
    }
}

impl Error for CompactBitsError {}

impl CompactBits {
    /// Decodes into a full 256-bit target.
    ///
    /// # Errors
    ///
    /// See [`CompactBitsError`].
    pub fn to_target(self) -> Result<U256, CompactBitsError> {
        let exponent = self.0 >> 24;
        let mantissa = self.0 & 0x007f_ffff;
        if mantissa == 0 {
            // A zero mantissa encodes the value zero regardless of the
            // exponent or sign bit, mirroring Bitcoin's SetCompact.
            return Err(CompactBitsError::Zero);
        }
        if self.0 & 0x0080_0000 != 0 {
            return Err(CompactBitsError::Negative);
        }
        let target = if exponent <= 3 {
            U256::from_u64((mantissa >> (8 * (3 - exponent))) as u64)
        } else {
            let shift = 8 * (exponent - 3);
            if shift >= 256 {
                return Err(CompactBitsError::Overflow);
            }
            let base = U256::from_u64(mantissa as u64);
            let shifted = base << shift;
            // Detect overflow: shifting back must reproduce the mantissa.
            if (shifted >> shift) != base {
                return Err(CompactBitsError::Overflow);
            }
            shifted
        };
        if target.is_zero() {
            return Err(CompactBitsError::Zero);
        }
        Ok(target)
    }

    /// Encodes a 256-bit target into compact form (canonical encoding).
    ///
    /// The mantissa is taken directly from the three most significant
    /// bytes of the big-endian representation, so no intermediate shift
    /// can truncate through a limb boundary.
    pub fn from_target(target: &U256) -> CompactBits {
        let be = target.to_be_bytes();
        let size = 32 - be.iter().take_while(|&&b| b == 0).count();
        if size == 0 {
            return CompactBits(0);
        }
        let mut mantissa: u32 = 0;
        for i in 0..3 {
            let sig = size as i64 - 1 - i as i64;
            let byte = if sig >= 0 { be[31 - sig as usize] } else { 0 };
            mantissa = (mantissa << 8) | u32::from(byte);
        }
        let mut exponent = size as u32;
        // Avoid the sign bit by bumping the exponent.
        if mantissa & 0x0080_0000 != 0 {
            mantissa >>= 8;
            exponent += 1;
        }
        CompactBits((exponent << 24) | mantissa)
    }
}

impl fmt::Debug for CompactBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompactBits(0x{:08x})", self.0)
    }
}

/// Checks whether a block-header hash satisfies a target.
///
/// The header hash (a [`Hash256`] in digest order) is interpreted as a
/// little-endian 256-bit integer, per Bitcoin consensus.
pub fn hash_meets_target(hash: &Hash256, target: &U256) -> bool {
    let mut le = hash.0;
    le.reverse(); // digest order → big-endian integer bytes
    let value = U256::from_be_bytes(&le);
    value <= *target
}

/// Difficulty retarget: scales the previous target by
/// `actual_timespan / expected_timespan`, clamped to `[1/4, 4]` and to the
/// PoW limit, mirroring Bitcoin's rule.
pub fn retarget(
    prev_target: &U256,
    actual_timespan_secs: u64,
    expected_timespan_secs: u64,
    pow_limit: &U256,
) -> U256 {
    let min = expected_timespan_secs / 4;
    let max = expected_timespan_secs * 4;
    let clamped = actual_timespan_secs.clamp(min.max(1), max);
    // Multiply-then-divide preserves precision; when the product would
    // overflow 256 bits, divide first (the target is large enough that the
    // precision loss is negligible there).
    let product = prev_target.saturating_mul_u64(clamped);
    let scaled = if product == U256::MAX {
        prev_target
            .div_u64(expected_timespan_secs.max(1))
            .saturating_mul_u64(clamped)
    } else {
        product.div_u64(expected_timespan_secs.max(1))
    };
    if scaled > *pow_limit {
        *pow_limit
    } else if scaled.is_zero() {
        U256::ONE
    } else {
        scaled
    }
}

/// Difficulty relative to a reference target: `reference / target`
/// (as `f64`, for reporting).
pub fn difficulty(target: &U256, reference: &U256) -> f64 {
    reference.to_f64_lossy() / target.to_f64_lossy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcfast_crypto::sha256::sha256d;
    use proptest::prelude::*;

    #[test]
    fn genesis_bits_round_trip() {
        let bits = CompactBits(0x1d00ffff);
        let target = bits.to_target().unwrap();
        // 0x00000000FFFF0000...0000 — the famous genesis target.
        assert_eq!(target.highest_bit(), Some(223));
        assert_eq!(CompactBits::from_target(&target), bits);
    }

    #[test]
    fn small_exponents() {
        // exponent 1: mantissa shifted down by 16 bits.
        let bits = CompactBits(0x01123456);
        assert_eq!(bits.to_target().unwrap(), U256::from_u64(0x12));
        let bits = CompactBits(0x02123456);
        assert_eq!(bits.to_target().unwrap(), U256::from_u64(0x1234));
        let bits = CompactBits(0x03123456);
        assert_eq!(bits.to_target().unwrap(), U256::from_u64(0x123456));
        let bits = CompactBits(0x04123456);
        assert_eq!(bits.to_target().unwrap(), U256::from_u64(0x12345600));
    }

    #[test]
    fn negative_rejected() {
        assert_eq!(
            CompactBits(0x01803456).to_target(),
            Err(CompactBitsError::Negative)
        );
    }

    #[test]
    fn sign_bit_with_zero_mantissa_decodes_as_zero() {
        // Bitcoin's SetCompact only treats the encoding as negative when
        // the mantissa is nonzero; 0x..800000 is the value zero. The old
        // decoder misclassified these as Negative.
        for bits in [0x0080_0000u32, 0x0380_0000, 0x2080_0000, 0xff80_0000] {
            assert_eq!(
                CompactBits(bits).to_target(),
                Err(CompactBitsError::Zero),
                "bits 0x{bits:08x}"
            );
        }
        // A nonzero mantissa with the sign bit set really is negative.
        assert_eq!(
            CompactBits(0x0480_0001).to_target(),
            Err(CompactBitsError::Negative)
        );
    }

    #[test]
    fn exponent_boundary_extremes() {
        // Exponent 0: all mantissa bytes shift out, leaving zero.
        assert_eq!(
            CompactBits(0x00123456).to_target(),
            Err(CompactBitsError::Zero)
        );
        // Exponent 32 never overflows (23-bit mantissa tops out at bit 254).
        let bits = CompactBits(0x207f_ffff);
        assert_eq!(CompactBits::from_target(&bits.to_target().unwrap()), bits);
        // Exponent 33 holds two mantissa bytes; three overflow.
        let bits = CompactBits(0x2100ffff);
        assert_eq!(CompactBits::from_target(&bits.to_target().unwrap()), bits);
        assert_eq!(
            CompactBits(0x2101_0000).to_target(),
            Err(CompactBitsError::Overflow)
        );
        // Exponent 34 holds one mantissa byte; two overflow.
        let ok = CompactBits(0x2200_00ff).to_target().unwrap();
        assert_eq!(ok, U256::from_u64(0xff) << 248);
        assert_eq!(
            CompactBits(0x2200_0100).to_target(),
            Err(CompactBitsError::Overflow)
        );
        // Exponent >= 35 always overflows for a nonzero mantissa.
        assert_eq!(
            CompactBits(0x2300_0001).to_target(),
            Err(CompactBitsError::Overflow)
        );
        assert_eq!(
            CompactBits(0xff00_0001).to_target(),
            Err(CompactBitsError::Overflow)
        );
    }

    #[test]
    fn max_target_encodes_canonically() {
        // U256::MAX has a 0xffffff top mantissa whose sign bit forces the
        // exponent bump; the byte-extraction encoder must land on
        // 0x2100ffff, not truncate through a limb boundary.
        let bits = CompactBits::from_target(&U256::MAX);
        assert_eq!(bits, CompactBits(0x2100ffff));
        // Round trip through decode is a fixpoint.
        let target = bits.to_target().unwrap();
        assert_eq!(CompactBits::from_target(&target), bits);
    }

    #[test]
    fn non_canonical_encodings_re_encode_canonically() {
        // 0x220000ff and 0x2100ff00 denote the same target; re-encoding
        // must pick the canonical form with the smaller exponent.
        let a = CompactBits(0x2200_00ff).to_target().unwrap();
        let b = CompactBits(0x2100_ff00).to_target().unwrap();
        assert_eq!(a, b);
        assert_eq!(CompactBits::from_target(&a), CompactBits(0x2100_ff00));
    }

    #[test]
    fn zero_rejected() {
        assert_eq!(
            CompactBits(0x01000000).to_target(),
            Err(CompactBitsError::Zero)
        );
        assert_eq!(
            CompactBits(0x00000000).to_target(),
            Err(CompactBitsError::Zero)
        );
    }

    #[test]
    fn overflow_rejected() {
        assert_eq!(
            CompactBits(0xff123456).to_target(),
            Err(CompactBitsError::Overflow)
        );
    }

    #[test]
    fn sign_bit_avoided_in_encoding() {
        // A target whose top mantissa byte would be >= 0x80 must encode
        // with a larger exponent.
        let target = U256::from_u64(0x0080_0000);
        let bits = CompactBits::from_target(&target);
        assert_eq!(bits.to_target().unwrap(), target);
        assert_eq!(bits.0 & 0x0080_0000, 0);
    }

    #[test]
    fn hash_meets_target_boundaries() {
        let easy = U256::MAX;
        let h = sha256d(b"any hash");
        assert!(hash_meets_target(&h, &easy));
        assert!(!hash_meets_target(&h, &U256::ZERO));
    }

    #[test]
    fn hash_target_uses_le_interpretation() {
        // A hash with many trailing zero *digest* bytes is numerically small.
        let mut digest = [0xffu8; 32];
        for b in digest[16..].iter_mut() {
            *b = 0;
        }
        let h = Hash256(digest);
        let threshold = U256::ONE << 129; // value is < 2^128
        assert!(hash_meets_target(&h, &threshold));
        let tight = U256::ONE << 127;
        assert!(!hash_meets_target(&h, &tight));
    }

    #[test]
    fn retarget_scales_and_clamps() {
        let limit = CompactBits(0x1d00ffff).to_target().unwrap();
        let prev = limit >> 8;
        let expected = 2016 * 600;

        // Blocks came in twice as fast → target halves.
        let faster = retarget(&prev, expected / 2, expected, &limit);
        assert_eq!(faster, prev >> 1);

        // Blocks twice as slow → target doubles.
        let slower = retarget(&prev, expected * 2, expected, &limit);
        assert_eq!(slower, prev << 1);

        // Clamped at 4x either way.
        let way_fast = retarget(&prev, 1, expected, &limit);
        assert_eq!(way_fast, prev.div_u64(4));
        let way_slow = retarget(&prev, expected * 100, expected, &limit);
        assert_eq!(way_slow, prev.saturating_mul_u64(4));

        // Never exceeds the pow limit.
        let at_limit = retarget(&limit, expected * 4, expected, &limit);
        assert_eq!(at_limit, limit);
    }

    #[test]
    fn difficulty_reporting() {
        let reference = U256::ONE << 224;
        assert_eq!(difficulty(&reference, &reference), 1.0);
        assert_eq!(difficulty(&(reference >> 1), &reference), 2.0);
    }

    proptest! {
        #[test]
        fn prop_compact_round_trip(exp in 0u32..=40, mantissa in 0u32..0x0100_0000) {
            // The full 24-bit mantissa range includes the sign bit.
            let bits = CompactBits((exp << 24) | mantissa);
            if let Ok(target) = bits.to_target() {
                let re = CompactBits::from_target(&target);
                // Canonical re-encoding decodes to the same target and is
                // a fixpoint of encode∘decode.
                prop_assert_eq!(re.to_target().unwrap(), target);
                prop_assert_eq!(CompactBits::from_target(&re.to_target().unwrap()), re);
            }
        }
    }
}
