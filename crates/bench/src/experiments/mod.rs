//! The evaluation experiments, one module per table/figure.
//!
//! Every module exposes `run(quick: bool) -> Vec<Table>`; `quick` trims
//! trial counts so the experiment suite can run inside the test suite.

pub mod e10_robustness;
pub mod e11_engine_scaling;
pub mod e12_phase_latency;
pub mod e13_crash_recovery;
pub mod e14_load;
pub mod e15_critical_path;
pub mod e1_waiting_time;
pub mod e2_double_spend;
pub mod e3_btcfast_security;
pub mod e4_fees;
pub mod e5_dispute_latency;
pub mod e6_throughput;
pub mod e7_latency_cdf;
pub mod e8_collateral;
pub mod e9_judgment_accuracy;

use crate::table::Table;

/// Runs one experiment by id ("e1".."e15") or all of them ("all").
///
/// Returns the rendered tables; unknown ids return an empty list.
pub fn run(id: &str, quick: bool) -> Vec<Table> {
    match id {
        "e1" => e1_waiting_time::run(quick),
        "e2" => e2_double_spend::run(quick),
        "e3" => e3_btcfast_security::run(quick),
        "e4" => e4_fees::run(quick),
        "e5" => e5_dispute_latency::run(quick),
        "e6" => e6_throughput::run(quick),
        "e7" => e7_latency_cdf::run(quick),
        "e8" => e8_collateral::run(quick),
        "e9" => e9_judgment_accuracy::run(quick),
        "e10" => e10_robustness::run(quick),
        "e11" => e11_engine_scaling::run(quick),
        "e12" => e12_phase_latency::run(quick),
        "e13" => e13_crash_recovery::run(quick),
        "e14" => e14_load::run(quick),
        "e15" => e15_critical_path::run(quick),
        "all" => {
            let mut tables = Vec::new();
            for id in ALL_IDS {
                tables.extend(run(id, quick));
            }
            tables
        }
        _ => Vec::new(),
    }
}

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_id_yields_no_tables() {
        assert!(super::run("e99", true).is_empty());
        assert!(super::run("", true).is_empty());
    }
}
