//! Differential executors: the same fuzzed schedule runs through the
//! optimised incremental path **and** a naive from-scratch reference, and
//! every observable artifact must match byte-for-byte.
//!
//! * `chain-reorg` — a block/fork/timestamp schedule drives
//!   `Chain::submit_block` (reorgs, side branches, median-time-past
//!   edges); the reference is a fresh chain fed only the final active
//!   hashes. UTXO set, address index, tip work, and per-transaction
//!   confirmations must be identical.
//! * `psc-replay` — a transaction schedule (hostile faucets, saturating
//!   gas prices, reverting and overflowing contract calls) runs on two
//!   chains; receipts, state commitments, and submit verdicts must match,
//!   and native value must be conserved after every block.
//! * `evidence-cache` — the parallel memoizing [`EvidenceVerifier`] must
//!   return the byte-identical verdict as the sequential verifier, cold
//!   and warm, and cache hits must not change gas accounting.

use crate::codec_fuzz::shared_btc;
use crate::invariants::check_chain;
use crate::source::ByteSource;
use btcfast_btcsim::miner::Miner;
use btcfast_btcsim::params::ChainParams;
use btcfast_btcsim::spv::SpvEvidence;
use btcfast_btcsim::wallet::Wallet;
use btcfast_btcsim::{Amount, Chain, U256};
use btcfast_crypto::{Hash256, KeyPair};
use btcfast_payjudger::evidence::{verify_on_chain_with, EvidenceBundle};
use btcfast_payjudger::{EvidenceVerifier, VerifierConfig};
use btcfast_pscsim::account::AccountId;
use btcfast_pscsim::codec::{Decode, Encode};
use btcfast_pscsim::contract::{Contract, ContractError, Env, HostStorage, Storage};
use btcfast_pscsim::gas::{GasMeter, GasSchedule};
use btcfast_pscsim::params::PscParams;
use btcfast_pscsim::state::WorldState;
use btcfast_pscsim::tx::{Action, PscTransaction};
use btcfast_pscsim::PscChain;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// chain-reorg
// ---------------------------------------------------------------------------

/// Fuzzes reorg schedules and compares against a from-scratch rebuild.
pub fn diff_chain_reorg(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let params = ChainParams::regtest();
    let wallet = Wallet::from_seed(b"audit reorg wallet");
    let mut chain = Chain::new(params.clone());
    let mut miner = Miner::new(params.clone(), wallet.address());

    let mut known = vec![Hash256::ZERO];
    let mut prev_work = U256::ZERO;
    let steps = 4 + src.choice(9);
    for step in 0..steps {
        let parent = known[src.choice(known.len())];
        let parent_time = if parent == Hash256::ZERO {
            0
        } else {
            chain
                .block(&parent)
                .ok_or("known parent vanished from the store")?
                .header
                .time
        };
        // Timestamps swing [-900, +1800] around the parent to exercise the
        // median-time-past boundary in both directions.
        let time = (parent_time + u64::from(src.u32() % 2701) + 600).saturating_sub(900);
        let txs = if parent == chain.tip_hash() && src.bool() {
            let sats = 1 + u64::from(src.u32()) % 100_000_000;
            wallet
                .create_payment(
                    &chain,
                    btcfast_crypto::keys::Address([0x24; 20]),
                    Amount::from_sats(sats).expect("bounded amount"),
                    Amount::from_sats(1_000).expect("bounded fee"),
                    // A unique memo per step keeps txids distinct even when
                    // competing tips yield identical coin selections.
                    Some(vec![step as u8]),
                )
                .ok()
                .into_iter()
                .collect()
        } else {
            Vec::new()
        };
        let block = miner.mine_block_on(&chain, parent, txs, time);
        let hash = block.hash();
        if chain.submit_block(block).is_ok() {
            known.push(hash);
        }

        // Invariants hold after every step, accepted or rejected.
        check_chain(&chain)?;
        let work = chain.tip_work();
        if work < prev_work {
            return Err("tip work decreased across a submission".into());
        }
        prev_work = work;
    }

    // Reference: a fresh chain fed only the surviving active hashes must
    // land on the identical state.
    let mut fresh = Chain::new(params);
    for hash in chain.active_hashes().to_vec() {
        let block = chain
            .block(&hash)
            .ok_or("active hash missing from the block store")?
            .clone();
        fresh
            .submit_block(block)
            .map_err(|e| format!("active block rejected on linear replay: {e}"))?;
    }
    if fresh.tip_hash() != chain.tip_hash() || fresh.height() != chain.height() {
        return Err(format!(
            "replay tip diverged: {:?}@{} vs {:?}@{}",
            fresh.tip_hash(),
            fresh.height(),
            chain.tip_hash(),
            chain.height()
        ));
    }
    if fresh.tip_work() != chain.tip_work() {
        return Err("replay accumulated different tip work".into());
    }
    if fresh.utxo() != chain.utxo() {
        return Err("incremental UTXO set diverged from the from-scratch rebuild".into());
    }
    if fresh.utxo().fingerprint() != chain.utxo().fingerprint() {
        return Err("UTXO fingerprints diverged despite equal sets".into());
    }
    for hash in chain.active_hashes() {
        let block = chain.block(hash).ok_or("active block missing")?;
        for tx in &block.transactions {
            let txid = tx.txid();
            if chain.confirmations(&txid) != fresh.confirmations(&txid) {
                return Err(format!("confirmations diverged for {txid:?}"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// psc-replay
// ---------------------------------------------------------------------------

/// A scratch contract with one happy path, one reverting path, and one
/// value-escape path — enough surface for the journal and fee machinery.
struct AuditBank;

impl Contract for AuditBank {
    fn code_id(&self) -> &'static str {
        "audit-bank"
    }

    fn call(
        &self,
        _env: &Env,
        method: &str,
        args: &[u8],
        storage: &mut dyn Storage,
    ) -> Result<Vec<u8>, ContractError> {
        match method {
            "init" => Ok(vec![]),
            "store" => {
                storage.set(&args[..1.min(args.len())], args)?;
                Ok(vec![])
            }
            "boom" => {
                storage.set(b"doomed", args)?;
                Err(ContractError::Revert("boom".into()))
            }
            "pay" => {
                let mut input = args;
                let to = AccountId::decode_from(&mut input)
                    .map_err(|e| ContractError::Revert(format!("bad args: {e}")))?;
                let value = u128::decode_from(&mut input)
                    .map_err(|e| ContractError::Revert(format!("bad args: {e}")))?;
                storage.transfer_out(to, value)?;
                Ok(vec![])
            }
            other => Err(ContractError::UnknownMethod(other.into())),
        }
    }
}

/// One schedule entry for the PSC replay differential.
#[derive(Clone, Debug)]
enum PscOp {
    Faucet {
        who: usize,
        amount: u128,
    },
    Transfer {
        from: usize,
        to: usize,
        value: u128,
        hostile_gas: bool,
    },
    Store {
        from: usize,
        payload: Vec<u8>,
    },
    Boom {
        from: usize,
    },
    Pay {
        from: usize,
        to: usize,
        deposit: u128,
        payout: u128,
    },
    Seal,
}

fn draw_schedule(src: &mut ByteSource<'_>) -> Vec<PscOp> {
    let steps = 4 + src.choice(9);
    let mut ops = Vec::with_capacity(steps + 1);
    for _ in 0..steps {
        let op = match src.u8() % 6 {
            0 => PscOp::Faucet {
                who: src.choice(3),
                amount: if src.bool() {
                    u128::MAX
                } else {
                    u128::from(src.u64())
                },
            },
            1 => PscOp::Transfer {
                from: src.choice(3),
                to: src.choice(4),
                value: u128::from(src.u32()),
                hostile_gas: src.u8() % 4 == 0,
            },
            2 => {
                let from = src.choice(3);
                let len = 1 + src.choice(24);
                PscOp::Store {
                    from,
                    payload: src.bytes(len),
                }
            }
            3 => PscOp::Boom {
                from: src.choice(3),
            },
            4 => PscOp::Pay {
                from: src.choice(3),
                to: src.choice(4),
                deposit: u128::from(src.u16()),
                payout: if src.bool() {
                    u128::MAX
                } else {
                    u128::from(src.u16())
                },
            },
            _ => PscOp::Seal,
        };
        ops.push(op);
    }
    ops.push(PscOp::Seal);
    ops
}

/// Runs a schedule on a fresh chain, returning a transcript of every
/// observable artifact plus the per-block conservation audit.
fn run_psc_schedule(
    ops: &[PscOp],
    keys: &[KeyPair],
    sink: AccountId,
) -> Result<Vec<String>, String> {
    let params = PscParams::ethereum_like();
    let gas_price = params.gas_price;
    let mut chain = PscChain::new(params);
    chain.register_code(Arc::new(AuditBank));

    let mut minted: u128 = 0;
    for key in keys {
        minted = minted.wrapping_add(chain.faucet(key.address().into(), 1_000_000_000));
    }
    let deploy = PscTransaction::new(
        *keys[0].public(),
        0,
        0,
        Action::Deploy {
            code_id: "audit-bank".into(),
            args: vec![],
        },
    )
    .with_gas(1_000_000, gas_price)
    .sign(&keys[0]);
    let deploy_hash = chain
        .submit_transaction(deploy)
        .map_err(|e| format!("deploy rejected: {e:?}"))?;
    let mut time = 15u64;
    chain.produce_block(time);
    let contract = chain
        .receipt(&deploy_hash)
        .and_then(|r| r.contract_address)
        .ok_or("deploy produced no contract address")?;

    let mut transcript = Vec::new();
    let mut pending = Vec::new();
    let submit = |chain: &mut PscChain,
                  transcript: &mut Vec<String>,
                  pending: &mut Vec<Hash256>,
                  tx: PscTransaction| {
        match chain.submit_transaction(tx) {
            Ok(hash) => pending.push(hash),
            Err(e) => transcript.push(format!("rejected: {e:?}")),
        }
    };

    for op in ops {
        match op {
            PscOp::Faucet { who, amount } => {
                // Accumulate modulo 2^128: hostile faucets push several
                // accounts toward u128::MAX, so the *sum* of credited value
                // can exceed the type even though each balance cannot.
                // Conservation is exact over the integers, hence also exact
                // modulo 2^128 — wrapping keeps the check sound.
                minted = minted.wrapping_add(chain.faucet(keys[*who].address().into(), *amount));
            }
            PscOp::Transfer {
                from,
                to,
                value,
                hostile_gas,
            } => {
                let key = &keys[*from];
                let recipient: AccountId = if *to < keys.len() {
                    keys[*to].address().into()
                } else {
                    sink
                };
                let price = if *hostile_gas { u128::MAX } else { gas_price };
                let tx = PscTransaction::new(
                    *key.public(),
                    chain.nonce_of(&key.address().into()),
                    *value,
                    Action::Transfer { to: recipient },
                )
                .with_gas(100_000, price)
                .sign(key);
                submit(&mut chain, &mut transcript, &mut pending, tx);
            }
            PscOp::Store { from, payload } => {
                let key = &keys[*from];
                let tx = PscTransaction::new(
                    *key.public(),
                    chain.nonce_of(&key.address().into()),
                    0,
                    Action::Call {
                        contract,
                        method: "store".into(),
                        args: payload.clone(),
                    },
                )
                .with_gas(1_000_000, gas_price)
                .sign(key);
                submit(&mut chain, &mut transcript, &mut pending, tx);
            }
            PscOp::Boom { from } => {
                let key = &keys[*from];
                let tx = PscTransaction::new(
                    *key.public(),
                    chain.nonce_of(&key.address().into()),
                    0,
                    Action::Call {
                        contract,
                        method: "boom".into(),
                        args: vec![],
                    },
                )
                .with_gas(1_000_000, gas_price)
                .sign(key);
                submit(&mut chain, &mut transcript, &mut pending, tx);
            }
            PscOp::Pay {
                from,
                to,
                deposit,
                payout,
            } => {
                let key = &keys[*from];
                let recipient: AccountId = if *to < keys.len() {
                    keys[*to].address().into()
                } else {
                    sink
                };
                let mut args = Vec::new();
                recipient.encode_to(&mut args);
                payout.encode_to(&mut args);
                let tx = PscTransaction::new(
                    *key.public(),
                    chain.nonce_of(&key.address().into()),
                    *deposit,
                    Action::Call {
                        contract,
                        method: "pay".into(),
                        args,
                    },
                )
                .with_gas(1_000_000, gas_price)
                .sign(key);
                submit(&mut chain, &mut transcript, &mut pending, tx);
            }
            PscOp::Seal => {
                time += 15;
                chain.produce_block(time);
                for hash in pending.drain(..) {
                    let receipt = chain
                        .receipt(&hash)
                        .ok_or("sealed transaction has no receipt")?;
                    transcript.push(format!(
                        "receipt: {:?} gas={} fee={}",
                        receipt.status, receipt.gas_used, receipt.fee_paid
                    ));
                }
                transcript.push(format!("commitment: {:?}", chain.state_commitment()));

                // Conservation: every unit in the system came from a faucet.
                let mut total: u128 = 0;
                for key in keys {
                    total = total.wrapping_add(chain.balance_of(&key.address().into()));
                }
                total = total.wrapping_add(chain.balance_of(&sink));
                total = total.wrapping_add(chain.balance_of(&contract));
                total = total.wrapping_add(chain.balance_of(&chain.validator()));
                if total != minted {
                    return Err(format!(
                        "value not conserved: {total} on the books vs {minted} minted"
                    ));
                }
            }
        }
    }
    Ok(transcript)
}

/// Fuzzes PSC transaction schedules and replays them on a second chain.
pub fn diff_psc_replay(bytes: &[u8]) -> Result<(), String> {
    let mut src = ByteSource::new(bytes);
    let ops = draw_schedule(&mut src);
    let keys = [
        KeyPair::from_seed(b"audit psc key 0"),
        KeyPair::from_seed(b"audit psc key 1"),
        KeyPair::from_seed(b"audit psc key 2"),
    ];
    let sink = AccountId([0xD0; 20]);
    let first = run_psc_schedule(&ops, &keys, sink)?;
    let second = run_psc_schedule(&ops, &keys, sink)?;
    if first != second {
        let divergence = first
            .iter()
            .zip(second.iter())
            .position(|(a, b)| a != b)
            .map(|i| format!("entry {i}: {:?} vs {:?}", first[i], second[i]))
            .unwrap_or_else(|| "transcripts differ in length".into());
        return Err(format!("replay transcript diverged: {divergence}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// evidence-cache
// ---------------------------------------------------------------------------

/// Runs the metered on-chain verification path, returning the verdict
/// transcript and the gas consumed.
fn metered_verdict(
    bundle: &EvidenceBundle,
    expected_txid: &Hash256,
    accel: Option<&EvidenceVerifier>,
) -> (String, u64) {
    let mut world = WorldState::new();
    let mut meter = GasMeter::new(50_000_000);
    let schedule = GasSchedule::evm_shaped();
    let mut storage = HostStorage {
        world: &mut world,
        meter: &mut meter,
        schedule: &schedule,
        contract: AccountId([0xEE; 20]),
        events: Vec::new(),
        transfers: Vec::new(),
    };
    let bits = ChainParams::regtest().pow_limit_bits;
    let verdict = verify_on_chain_with(
        bundle,
        &bundle.0.segment.anchor,
        bits,
        expected_txid,
        &mut storage,
        accel,
    );
    (format!("{verdict:?}"), storage.gas_used())
}

/// Fuzzes the accelerated verifier against the sequential reference.
pub fn diff_evidence_cache(bytes: &[u8]) -> Result<(), String> {
    let shared = shared_btc();
    let mut src = ByteSource::new(bytes);
    let from = 1 + src.choice(10) as u64;
    let to = from + src.choice((10 - from as usize).max(1)) as u64;
    let expected_txid = shared.txids[src.choice(shared.txids.len())];
    let with_inclusion = src.bool();
    let evidence = SpvEvidence::from_chain(
        &shared.chain,
        from,
        to,
        with_inclusion.then_some(&expected_txid),
    );
    let mut buf = EvidenceBundle(evidence).encode();
    if src.bool() {
        let flips = 1 + src.choice(4);
        for _ in 0..flips {
            let pos = src.choice(buf.len());
            buf[pos] ^= 1 + src.u8() % 255;
        }
    }
    let Ok(bundle) = EvidenceBundle::decode(&buf) else {
        return Ok(()); // typed rejection is a pass for this engine
    };

    let min_target = ChainParams::regtest()
        .pow_limit_bits
        .to_target()
        .expect("regtest limit decodes");
    let naive = bundle.0.verify(&min_target);
    let verifier = EvidenceVerifier::new(VerifierConfig {
        threads: 1,
        cache_capacity: 8,
    });
    let cold = verifier.verify_evidence(&bundle.0, &min_target);
    let warm = verifier.verify_evidence(&bundle.0, &min_target);
    if naive != cold {
        return Err(format!(
            "accelerated verifier diverged cold: {naive:?} vs {cold:?}"
        ));
    }
    if cold != warm {
        return Err(format!(
            "warm cache changed the verdict: {cold:?} vs {warm:?}"
        ));
    }

    // The accelerator must not perturb on-chain verdicts *or* gas.
    let (plain, plain_gas) = metered_verdict(&bundle, &expected_txid, None);
    let (accel, accel_gas) = metered_verdict(&bundle, &expected_txid, Some(&verifier));
    if plain != accel {
        return Err(format!(
            "on-chain verdict diverged with accelerator: {plain} vs {accel}"
        ));
    }
    if plain_gas != accel_gas {
        return Err(format!(
            "cache warmth leaked into gas accounting: {plain_gas} vs {accel_gas}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_accept_arbitrary_seeds() {
        for seed in 0u8..4 {
            let bytes: Vec<u8> = (0..160)
                .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
                .collect();
            diff_chain_reorg(&bytes).unwrap();
            diff_psc_replay(&bytes).unwrap();
            diff_evidence_cache(&bytes).unwrap();
        }
    }

    #[test]
    fn empty_input_is_a_boring_schedule() {
        diff_chain_reorg(&[]).unwrap();
        diff_psc_replay(&[]).unwrap();
        diff_evidence_cache(&[]).unwrap();
    }
}
