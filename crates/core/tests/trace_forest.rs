//! Well-formedness of the causal span forest (PR 9 satellite).
//!
//! Every traced run — plain sessions, batches, disputes, and chaos
//! sessions under packet loss — must render a JSONL trace that
//! reconstructs into a proper forest: exactly one root span per
//! payment, no orphaned `parent_id`, no cycles, and every child span's
//! interval nested inside its parent's. The chaos checks additionally
//! assert the critical-path invariant the e15 experiment depends on:
//! per-bucket self-times sum exactly to the root span's duration.

use btcfast::chaos::ChaosSession;
use btcfast::config::SessionConfig;
use btcfast::robustness::ChaosConfig;
use btcfast::session::FastPaySession;
use btcfast_netsim::faults::FaultPlan;
use btcfast_netsim::time::SimTime;
use btcfast_obs::critical_path::breakdown;
use btcfast_obs::{build_trees, check_nesting, render_jsonl, SpanTree};
use proptest::prelude::*;

/// Builds the forest from a rendered trace and asserts structural
/// well-formedness of every tree.
fn well_formed_forest(jsonl: &str) -> Vec<SpanTree> {
    let trees = build_trees(jsonl).expect("trace reconstructs into a forest");
    for tree in &trees {
        check_nesting(tree).unwrap_or_else(|(parent, child)| {
            panic!(
                "span {child} escapes its parent {parent} in trace {}",
                tree.trace_id
            )
        });
    }
    trees
}

fn chaos_config() -> ChaosConfig {
    let mut config = ChaosConfig::default();
    // e13-style reliability envelope: enough retries and deadline slack
    // that payments complete even under heavy injected loss.
    config.transport.max_attempts = 12;
    config.phase_deadline = SimTime::from_secs(60);
    config
}

#[test]
fn session_payments_and_disputes_build_one_tree_each() {
    let mut session = FastPaySession::new(SessionConfig::default(), 7);
    for _ in 0..3 {
        let report = session.run_fast_payment(1_000_000).unwrap();
        assert!(report.accepted);
        // Confirm the payment so the next one spends fresh coins.
        session.mine_public_block().unwrap();
    }
    let (_latency, _gas) = session.run_dispute_resolution(1_000_000, 6).unwrap();

    let jsonl = render_jsonl(session.trace());
    let trees = well_formed_forest(&jsonl);
    // Three payment roots plus the dispute-resolution payment and its
    // dispute tree.
    let payments = trees
        .iter()
        .filter(|t| t.root_node().name == "session.payment")
        .count();
    let disputes = trees
        .iter()
        .filter(|t| t.root_node().name == "session.dispute")
        .count();
    assert_eq!(payments, 4, "one session.payment root per payment");
    assert_eq!(disputes, 1, "one session.dispute root per dispute");

    // Distinct payments never share a trace id.
    let mut ids: Vec<u64> = trees.iter().map(|t| t.trace_id).collect();
    ids.dedup();
    assert_eq!(ids.len(), trees.len(), "trace ids are unique per tree");
}

#[test]
fn batch_payments_build_one_tree_per_payment() {
    let mut session = FastPaySession::new(SessionConfig::default(), 11);
    let reports = session
        .run_fast_payment_batch(&[500_000, 600_000, 700_000])
        .unwrap();
    assert!(reports.iter().all(|r| r.accepted));

    let jsonl = render_jsonl(session.trace());
    let trees = well_formed_forest(&jsonl);
    let payments = trees
        .iter()
        .filter(|t| t.root_node().name == "session.payment")
        .count();
    assert_eq!(payments, 3, "one root per batched payment");
}

#[test]
fn chaos_payments_under_loss_build_nested_trees_with_exact_self_times() {
    let mut plan = FaultPlan::new();
    plan.loss_window(SimTime::ZERO, SimTime::from_secs(86_400), 0.25);
    let mut chaos = ChaosSession::new(SessionConfig::default(), chaos_config(), plan, 0x51AB);

    for _ in 0..4 {
        let report = chaos.run_fast_payment_chaos(1_000_000).unwrap();
        assert!(report.accepted);
        chaos.session.mine_public_block().unwrap();
    }

    let jsonl = render_jsonl(chaos.session.trace());
    let trees = well_formed_forest(&jsonl);
    let payments: Vec<&SpanTree> = trees
        .iter()
        .filter(|t| t.root_node().name == "chaos.payment")
        .collect();
    assert_eq!(payments.len(), 4, "one chaos.payment root per payment");

    for tree in payments {
        let b = breakdown(tree);
        assert_eq!(
            b.bucket_sum_us(),
            tree.root_duration_us(),
            "per-bucket self-times sum exactly to the root duration"
        );
        // Injected loss forces retransmissions; the transport bucket
        // must be visible in the decomposition.
        assert!(b.transport_us > 0, "loss run attributes transport time");
    }
}

#[test]
fn chaos_dispute_builds_its_own_root_tree() {
    let mut chaos = ChaosSession::new(
        SessionConfig::default(),
        chaos_config(),
        FaultPlan::new(),
        0xD15B,
    );
    let report = chaos.run_dispute_chaos(1_000_000, 0.30, 12).unwrap();

    let jsonl = render_jsonl(chaos.session.trace());
    let trees = well_formed_forest(&jsonl);
    assert!(
        trees.iter().any(|t| t.root_node().name == "chaos.payment"),
        "the protected payment has its own tree"
    );
    if report.verdict.is_some() {
        assert!(
            trees.iter().any(|t| t.root_node().name == "chaos.dispute"),
            "the dispute flow has its own root tree"
        );
    }
}

proptest! {
    // Any seed and any moderate loss rate must yield a well-formed
    // forest: the nesting high-water mark has to hold wherever the
    // backoff schedule lands retransmission timers.
    #[test]
    fn chaos_forest_is_well_formed_for_any_seed(
        seed in 0u64..1_000_000,
        loss_centi in 0u32..35,
    ) {
        let mut plan = FaultPlan::new();
        let loss = f64::from(loss_centi) / 100.0;
        if loss > 0.0 {
            plan.loss_window(SimTime::ZERO, SimTime::from_secs(86_400), loss);
        }
        let mut chaos =
            ChaosSession::new(SessionConfig::default(), chaos_config(), plan, seed);
        let report = chaos.run_fast_payment_chaos(1_000_000).unwrap();
        prop_assert!(report.accepted);

        let jsonl = render_jsonl(chaos.session.trace());
        let trees = build_trees(&jsonl).expect("forest reconstructs");
        for tree in &trees {
            prop_assert!(check_nesting(tree).is_ok());
            if tree.root_node().name == "chaos.payment" {
                let b = breakdown(tree);
                prop_assert_eq!(b.bucket_sum_us(), tree.root_duration_us());
            }
        }
    }
}
