//! E4 — the operation fee table (claim C3: "no extra operation fee").
//!
//! Measures the gas of every PayJudger operation from a live session, then
//! converts to per-payment costs: the honest path's PSC overhead amortizes
//! over the escrow lifetime and is zero outright on an EOS-like chain,
//! leaving exactly the ordinary BTC fee — the paper's claim.

use crate::table::{f3, Table};
use btcfast::fees::{FeeModel, GasUsage};
use btcfast::session::FastPaySession;
use btcfast::SessionConfig;
use btcfast_btcsim::spv::SpvEvidence;
use btcfast_netsim::time::SimTime;

/// Drives a session through every contract operation, capturing gas.
pub fn measure_gas_usage(seed: u64) -> GasUsage {
    let mut config = SessionConfig::default();
    config.challenge_window_secs = 1200;
    let window = config.challenge_window_secs;
    let mut session = FastPaySession::new(config, seed);
    let mut usage = GasUsage {
        deploy: session.deploy_gas,
        deposit: session.deposit_gas,
        ..Default::default()
    };

    // Payment 1: acked by the merchant.
    let report = session.run_fast_payment(500_000).expect("payment 1");
    usage.open_payment = report.registration_gas;
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");
    let ack = session.merchant.build_ack(
        &session.judger,
        &session.psc,
        session.customer.psc_account(),
        report.payment_id,
    );
    let receipt = session.run_psc_tx(ack).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.ack_payment = receipt.gas_used;

    // Payment 2: closed by the customer after the window.
    let report2 = session.run_fast_payment(500_000).expect("payment 2");
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");
    session.advance_clock(SimTime::from_secs(window + 30));
    let close =
        session
            .customer
            .build_close_payment(&session.judger, &session.psc, report2.payment_id);
    let receipt = session.run_psc_tx(close).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.close_payment = receipt.gas_used;

    // Payment 3: disputed (frivolously) and judged.
    let report3 = session.run_fast_payment(500_000).expect("payment 3");
    session.advance_clock(SimTime::from_secs(5));
    session.mine_public_block().expect("block connects");
    let dispute = session.merchant.build_dispute(
        &session.judger,
        &session.psc,
        session.customer.psc_account(),
        report3.payment_id,
    );
    let receipt = session.run_psc_tx(dispute).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.dispute = receipt.gas_used;

    let evidence =
        SpvEvidence::from_chain(&session.btc, 1, session.btc.height(), Some(&report3.txid));
    let submit = session.customer.build_evidence_submission(
        &session.judger,
        &session.psc,
        report3.payment_id,
        evidence,
    );
    let receipt = session.run_psc_tx(submit).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.submit_evidence = receipt.gas_used;

    session.advance_clock(SimTime::from_secs(window + 30));
    let judge = session.merchant.build_judge(
        &session.judger,
        &session.psc,
        session.customer.psc_account(),
        report3.payment_id,
    );
    let receipt = session.run_psc_tx(judge).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.judge = receipt.gas_used;

    // Withdraw the remaining escrow.
    let escrow = session
        .judger
        .escrow(&session.psc, session.customer.psc_account())
        .expect("escrow exists");
    let withdraw =
        session
            .customer
            .build_withdraw(&session.judger, &session.psc, escrow.available());
    let receipt = session.run_psc_tx(withdraw).expect("psc tx executes");
    assert!(receipt.status.is_success(), "{:?}", receipt.status);
    usage.withdraw = receipt.gas_used;

    usage
}

/// Runs E4.
pub fn run(_quick: bool) -> Vec<Table> {
    let usage = measure_gas_usage(42);

    let mut gas_table = Table::new(
        "E4a — PayJudger gas per operation",
        &["operation", "gas", "frequency"],
    );
    for (op, gas, freq) in [
        ("deploy", usage.deploy, "once per judger"),
        ("deposit", usage.deposit, "once per escrow"),
        ("open_payment", usage.open_payment, "per payment"),
        ("close_payment", usage.close_payment, "per payment*"),
        ("ack_payment", usage.ack_payment, "alternative to close"),
        ("dispute", usage.dispute, "per dispute"),
        (
            "submit_evidence (~6-header proof)",
            usage.submit_evidence,
            "per dispute",
        ),
        ("judge", usage.judge, "per dispute"),
        ("withdraw", usage.withdraw, "once per escrow"),
    ] {
        gas_table.push(vec![op.into(), gas.to_string(), freq.into()]);
    }

    let mut cost_table = Table::new(
        "E4b — per-payment cost vs plain-BTC baseline (satoshi equivalents)",
        &[
            "scheme",
            "BTC fee",
            "PSC overhead",
            "total",
            "extra vs baseline",
        ],
    );
    // Exchange-rate framing: 1 gas-unit-price ≈ tiny fraction of a sat.
    let eth_model = FeeModel {
        btc_fee_sats: 1_000,
        gas_price: 20,
        sats_per_psc_unit: 0.000_002,
    };
    let eos_model = FeeModel {
        btc_fee_sats: 1_000,
        gas_price: 0,
        sats_per_psc_unit: 0.000_002,
    };
    let baseline = eth_model.baseline_cost();
    cost_table.push(vec![
        "plain BTC (any z)".into(),
        f3(baseline.btc_fee_sats),
        f3(0.0),
        f3(baseline.total_sats()),
        f3(0.0),
    ]);
    for (label, model, payments) in [
        ("BTCFast, ETH-like PSC, 10 payments/escrow", &eth_model, 10),
        (
            "BTCFast, ETH-like PSC, 1000 payments/escrow",
            &eth_model,
            1000,
        ),
        ("BTCFast, EOS-like PSC (resource-staked)", &eos_model, 10),
    ] {
        let cost = model.honest_cost_per_payment(&usage, payments);
        cost_table.push(vec![
            label.into(),
            f3(cost.btc_fee_sats),
            f3(cost.psc_overhead_sats),
            f3(cost.total_sats()),
            f3(cost.extra_vs_baseline_sats()),
        ]);
    }

    vec![gas_table, cost_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_gas_table_is_complete_and_eos_overhead_zero() {
        let usage = super::measure_gas_usage(7);
        assert!(usage.deploy > 0);
        assert!(usage.deposit > 21_000);
        assert!(usage.open_payment > 21_000);
        assert!(usage.close_payment > 21_000);
        assert!(usage.dispute > 21_000);
        assert!(usage.submit_evidence > usage.dispute);
        assert!(usage.judge > 21_000);
        assert!(usage.withdraw > 21_000);

        let eos = btcfast::fees::FeeModel {
            btc_fee_sats: 1_000,
            gas_price: 0,
            sats_per_psc_unit: 1.0,
        };
        let cost = eos.honest_cost_per_payment(&usage, 10);
        assert_eq!(cost.extra_vs_baseline_sats(), 0.0);
    }
}
