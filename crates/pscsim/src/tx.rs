//! PSC transactions, signatures, and receipts.

use crate::account::AccountId;
use crate::codec::Encode;
use crate::contract::Event;
use crate::gas::Gas;
use btcfast_crypto::ecdsa::Signature;
use btcfast_crypto::keys::{KeyPair, PublicKey};
use btcfast_crypto::sha256::sha256d;
use btcfast_crypto::Hash256;
use std::error::Error;
use std::fmt;

/// What a transaction does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Plain value transfer.
    Transfer {
        /// The receiving account.
        to: AccountId,
    },
    /// Deploys registered code, invoking its `init` method with `args`.
    Deploy {
        /// The registered code identifier.
        code_id: String,
        /// ABI-encoded constructor arguments.
        args: Vec<u8>,
    },
    /// Calls a method on a deployed contract.
    Call {
        /// The contract account.
        contract: AccountId,
        /// Method name.
        method: String,
        /// ABI-encoded arguments.
        args: Vec<u8>,
    },
}

impl Action {
    /// The calldata byte count used for intrinsic gas.
    pub fn calldata_len(&self) -> usize {
        match self {
            Action::Transfer { .. } => 0,
            Action::Deploy { code_id, args } => code_id.len() + args.len(),
            Action::Call { method, args, .. } => method.len() + args.len(),
        }
    }

    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Action::Transfer { to } => {
                out.push(0);
                to.encode_to(out);
            }
            Action::Deploy { code_id, args } => {
                out.push(1);
                code_id.clone().encode_to(out);
                args.clone().encode_to(out);
            }
            Action::Call {
                contract,
                method,
                args,
            } => {
                out.push(2);
                contract.encode_to(out);
                method.clone().encode_to(out);
                args.clone().encode_to(out);
            }
        }
    }
}

/// A signed PSC transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PscTransaction {
    /// The signing key (sender = its address).
    pub from: PublicKey,
    /// Sender nonce (must equal the account nonce at execution).
    pub nonce: u64,
    /// Native value attached.
    pub value: u128,
    /// The action.
    pub action: Action,
    /// Gas limit for execution.
    pub gas_limit: Gas,
    /// Gas price the sender offers.
    pub gas_price: u128,
    /// ECDSA signature over [`PscTransaction::digest`]; `None` while
    /// unsigned.
    pub signature: Option<Signature>,
}

/// Why a transaction could not be accepted or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PscTxError {
    /// Missing or invalid signature.
    BadSignature,
    /// Nonce does not match the account.
    BadNonce {
        /// What the account expects next.
        expected: u64,
        /// What the transaction carried.
        got: u64,
    },
    /// Balance cannot cover `value + gas_limit * gas_price`.
    InsufficientBalance,
    /// Deploy referenced an unregistered code id.
    UnknownCode(String),
    /// Call targeted an account with no code.
    NotAContract(AccountId),
    /// Gas limit exceeds the chain's per-tx cap.
    GasLimitTooHigh {
        /// What the transaction asked for.
        requested: Gas,
        /// The chain cap.
        cap: Gas,
    },
}

impl fmt::Display for PscTxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PscTxError::BadSignature => write!(f, "missing or invalid signature"),
            PscTxError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            PscTxError::InsufficientBalance => {
                write!(f, "balance cannot cover value plus max fee")
            }
            PscTxError::UnknownCode(id) => write!(f, "unknown code id {id:?}"),
            PscTxError::NotAContract(a) => write!(f, "account {a} holds no code"),
            PscTxError::GasLimitTooHigh { requested, cap } => {
                write!(f, "gas limit {requested} exceeds cap {cap}")
            }
        }
    }
}

impl Error for PscTxError {}

impl PscTransaction {
    /// Builds an unsigned transaction.
    pub fn new(from: PublicKey, nonce: u64, value: u128, action: Action) -> PscTransaction {
        PscTransaction {
            from,
            nonce,
            value,
            action,
            gas_limit: 1_000_000,
            gas_price: 0,
            signature: None,
        }
    }

    /// Sets the gas limit (builder style).
    pub fn with_gas(mut self, gas_limit: Gas, gas_price: u128) -> PscTransaction {
        self.gas_limit = gas_limit;
        self.gas_price = gas_price;
        self
    }

    /// The sender account.
    pub fn sender(&self) -> AccountId {
        self.from.address().into()
    }

    /// The digest signatures commit to (everything except the signature).
    pub fn digest(&self) -> Hash256 {
        let mut data = Vec::with_capacity(128);
        data.extend_from_slice(&self.from.to_compressed());
        self.nonce.encode_to(&mut data);
        self.value.encode_to(&mut data);
        self.action.encode_to(&mut data);
        self.gas_limit.encode_to(&mut data);
        self.gas_price.encode_to(&mut data);
        sha256d(&data)
    }

    /// The transaction hash (digest — signature excluded, like a txid).
    pub fn hash(&self) -> Hash256 {
        self.digest()
    }

    /// Signs with `key`, which must match `from`.
    ///
    /// # Panics
    ///
    /// Panics if `key`'s public half differs from `from`.
    pub fn sign(mut self, key: &KeyPair) -> PscTransaction {
        assert!(
            key.public() == &self.from,
            "signing key must match the from field"
        );
        self.signature = Some(key.sign(&self.digest().0));
        self
    }

    /// Verifies the signature.
    ///
    /// # Errors
    ///
    /// Returns [`PscTxError::BadSignature`] when missing or invalid.
    pub fn verify_signature(&self) -> Result<(), PscTxError> {
        let sig = self.signature.as_ref().ok_or(PscTxError::BadSignature)?;
        if self.from.verify(&self.digest().0, sig) {
            Ok(())
        } else {
            Err(PscTxError::BadSignature)
        }
    }

    /// Maximum fee this transaction can cost. Saturates on a hostile
    /// `gas_price`: the saturated cost then fails the balance pre-check,
    /// so the transaction is rejected rather than aborting execution.
    pub fn max_fee(&self) -> u128 {
        (self.gas_limit as u128).saturating_mul(self.gas_price)
    }
}

/// Execution status recorded in a receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// Executed successfully.
    Succeeded,
    /// Contract reverted (message attached); fee charged, state rolled back.
    Reverted(String),
    /// Ran out of gas; full limit charged, state rolled back.
    OutOfGas,
    /// Rejected before execution (bad nonce/signature/balance).
    Invalid(String),
}

impl TxStatus {
    /// True only for [`TxStatus::Succeeded`].
    pub fn is_success(&self) -> bool {
        matches!(self, TxStatus::Succeeded)
    }
}

/// The receipt of an executed (or rejected) transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// The transaction hash.
    pub tx_hash: Hash256,
    /// Outcome.
    pub status: TxStatus,
    /// Gas consumed.
    pub gas_used: Gas,
    /// Fee actually paid (`gas_used * gas_price`).
    pub fee_paid: u128,
    /// Events emitted (empty unless succeeded).
    pub events: Vec<Event>,
    /// ABI-encoded return value (empty unless succeeded).
    pub return_data: Vec<u8>,
    /// For deploys: the new contract's account.
    pub contract_address: Option<AccountId>,
    /// Block that included the transaction.
    pub block_number: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> KeyPair {
        KeyPair::from_seed(b"psc tx")
    }

    fn transfer_tx() -> PscTransaction {
        PscTransaction::new(
            *keypair().public(),
            0,
            100,
            Action::Transfer {
                to: AccountId([2; 20]),
            },
        )
    }

    #[test]
    fn sign_verify_round_trip() {
        let tx = transfer_tx().sign(&keypair());
        tx.verify_signature().unwrap();
    }

    #[test]
    fn unsigned_rejected() {
        assert_eq!(
            transfer_tx().verify_signature(),
            Err(PscTxError::BadSignature)
        );
    }

    #[test]
    fn tampering_invalidates_signature() {
        let mut tx = transfer_tx().sign(&keypair());
        tx.value = 999;
        assert_eq!(tx.verify_signature(), Err(PscTxError::BadSignature));
    }

    #[test]
    #[should_panic(expected = "signing key must match")]
    fn wrong_key_panics() {
        let _ = transfer_tx().sign(&KeyPair::from_seed(b"other"));
    }

    #[test]
    fn hash_excludes_signature() {
        let unsigned = transfer_tx();
        let signed = unsigned.clone().sign(&keypair());
        assert_eq!(unsigned.hash(), signed.hash());
    }

    #[test]
    fn distinct_actions_distinct_hashes() {
        let a = transfer_tx();
        let b = PscTransaction::new(
            *keypair().public(),
            0,
            100,
            Action::Call {
                contract: AccountId([2; 20]),
                method: "deposit".into(),
                args: vec![],
            },
        );
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn calldata_len() {
        assert_eq!(transfer_tx().action.calldata_len(), 0);
        let call = Action::Call {
            contract: AccountId([2; 20]),
            method: "abcd".into(),
            args: vec![0; 10],
        };
        assert_eq!(call.calldata_len(), 14);
        let deploy = Action::Deploy {
            code_id: "xy".into(),
            args: vec![0; 3],
        };
        assert_eq!(deploy.calldata_len(), 5);
    }

    #[test]
    fn max_fee() {
        let tx = transfer_tx().with_gas(1000, 5);
        assert_eq!(tx.max_fee(), 5000);
    }

    #[test]
    fn sender_is_from_address() {
        let tx = transfer_tx();
        assert_eq!(tx.sender(), keypair().address().into());
    }

    #[test]
    fn status_success_check() {
        assert!(TxStatus::Succeeded.is_success());
        assert!(!TxStatus::Reverted("x".into()).is_success());
        assert!(!TxStatus::OutOfGas.is_success());
        assert!(!TxStatus::Invalid("y".into()).is_success());
    }
}
