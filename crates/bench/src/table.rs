//! A minimal fixed-width text table renderer for harness output.

use std::fmt::Write as _;

/// A simple text table: header row plus data rows, auto-sized columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:width$}", width = widths[i]);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as GitHub-flavored markdown (for
    /// `$GITHUB_STEP_SUMMARY` and similar renderers).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(out, "|{}", " --- |".repeat(self.header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a probability in scientific-ish form.
pub fn prob(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["scheme", "wait (s)"]);
        t.push(vec!["BTCFast".into(), "0.33".into()]);
        t.push(vec!["6-confirmation".into(), "3600".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("BTCFast"));
        assert!(s.contains("6-confirmation"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown_pipes() {
        let mut t = Table::new("demo", &["scheme", "wait (s)"]);
        t.push(vec!["BTCFast".into(), "0.33".into()]);
        let md = t.render_markdown();
        assert!(md.starts_with("### demo\n"));
        assert!(md.contains("| scheme | wait (s) |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| BTCFast | 0.33 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(prob(0.0), "0");
        assert_eq!(prob(0.25), "0.2500");
        assert!(prob(0.000012).contains('e'));
    }
}
