//! The customer role: BTC wallet + PSC identity + escrow management.

use crate::protocol::PaymentOffer;
use btcfast_btcsim::chain::Chain;
use btcfast_btcsim::spv::SpvEvidence;
use btcfast_btcsim::transaction::Transaction;
use btcfast_btcsim::wallet::{Wallet, WalletError};
use btcfast_btcsim::Amount;
use btcfast_crypto::keys::KeyPair;
use btcfast_crypto::Hash256;
use btcfast_payjudger::PayJudgerClient;
use btcfast_pscsim::account::AccountId;
use btcfast_pscsim::tx::PscTransaction;
use btcfast_pscsim::PscChain;

/// A BTCFast customer: owns a BTC wallet and a PSC account holding escrow.
#[derive(Clone, Debug)]
pub struct Customer {
    btc_wallet: Wallet,
    psc_keys: KeyPair,
}

impl Customer {
    /// Derives a customer deterministically from a seed.
    pub fn from_seed(seed: &[u8]) -> Customer {
        let mut btc_seed = seed.to_vec();
        btc_seed.extend_from_slice(b"/btc");
        let mut psc_seed = seed.to_vec();
        psc_seed.extend_from_slice(b"/psc");
        Customer {
            btc_wallet: Wallet::from_seed(&btc_seed),
            psc_keys: KeyPair::from_seed(&psc_seed),
        }
    }

    /// The BTC wallet.
    pub fn btc_wallet(&self) -> &Wallet {
        &self.btc_wallet
    }

    /// The PSC signing keys.
    pub fn psc_keys(&self) -> &KeyPair {
        &self.psc_keys
    }

    /// The PSC account id.
    pub fn psc_account(&self) -> AccountId {
        self.psc_keys.address().into()
    }

    /// Builds the escrow deposit transaction (Setup phase).
    pub fn build_deposit(
        &self,
        judger: &PayJudgerClient,
        psc: &PscChain,
        value: u128,
    ) -> PscTransaction {
        judger.deposit_tx(&self.psc_keys, psc.nonce_of(&self.psc_account()), value)
    }

    /// Builds the signed BTC payment transaction (FastPay phase, step 1).
    ///
    /// # Errors
    ///
    /// Propagates [`WalletError`] on insufficient funds.
    pub fn build_btc_payment(
        &self,
        btc: &Chain,
        merchant_btc: btcfast_crypto::keys::Address,
        amount: Amount,
        fee: Amount,
        payment_tag: Option<Vec<u8>>,
    ) -> Result<Transaction, WalletError> {
        self.btc_wallet
            .create_payment(btc, merchant_btc, amount, fee, payment_tag)
    }

    /// Like [`Customer::build_btc_payment`], but never spends a coin in
    /// `exclude` — the batch driver's tool for building several payments
    /// over disjoint confirmed coins.
    ///
    /// # Errors
    ///
    /// Propagates [`WalletError`] on insufficient funds.
    pub fn build_btc_payment_excluding(
        &self,
        btc: &Chain,
        merchant_btc: btcfast_crypto::keys::Address,
        amount: Amount,
        fee: Amount,
        payment_tag: Option<Vec<u8>>,
        exclude: &std::collections::HashSet<btcfast_btcsim::transaction::OutPoint>,
    ) -> Result<Transaction, WalletError> {
        self.btc_wallet.create_payment_excluding(
            btc,
            merchant_btc,
            amount,
            fee,
            payment_tag,
            exclude,
        )
    }

    /// Builds the escrow payment registration at an *explicit* nonce.
    ///
    /// [`Customer::build_open_payment`] reads the confirmed nonce from the
    /// chain, so two registrations built before either is mined would
    /// collide. Batched registration builds K transactions at
    /// `nonce_base..nonce_base + K` and includes them all in one PSC block.
    pub fn build_open_payment_at(
        &self,
        judger: &PayJudgerClient,
        nonce: u64,
        merchant_psc: AccountId,
        btc_txid: Hash256,
        amount_sats: u64,
        collateral: u128,
    ) -> PscTransaction {
        judger.open_payment_tx(
            &self.psc_keys,
            nonce,
            merchant_psc,
            btc_txid,
            amount_sats,
            collateral,
        )
    }

    /// Builds the escrow payment registration (FastPay phase, step 2).
    pub fn build_open_payment(
        &self,
        judger: &PayJudgerClient,
        psc: &PscChain,
        merchant_psc: AccountId,
        btc_txid: Hash256,
        amount_sats: u64,
        collateral: u128,
    ) -> PscTransaction {
        judger.open_payment_tx(
            &self.psc_keys,
            psc.nonce_of(&self.psc_account()),
            merchant_psc,
            btc_txid,
            amount_sats,
            collateral,
        )
    }

    /// Assembles the point-of-sale offer once the registration's payment id
    /// is known.
    pub fn make_offer(&self, tx: Transaction, payment_id: u64, amount_sats: u64) -> PaymentOffer {
        PaymentOffer {
            tx,
            escrow_customer: self.psc_account(),
            payment_id,
            amount_sats,
        }
    }

    /// Builds the customer's defense in a dispute: an inclusion proof of the
    /// payment on the heaviest chain the customer can see.
    ///
    /// Returns `None` when the payment is no longer on the active chain
    /// (an honest customer has nothing to submit then — or was themselves
    /// the victim of a reorg).
    pub fn build_inclusion_evidence(&self, btc: &Chain, txid: &Hash256) -> Option<SpvEvidence> {
        btc.confirmations(txid)?;
        let evidence = SpvEvidence::from_chain(btc, 1, btc.height(), Some(txid));
        evidence.inclusion.as_ref()?;
        Some(evidence)
    }

    /// Builds the close transaction for an undisputed payment after the
    /// challenge window.
    pub fn build_close_payment(
        &self,
        judger: &PayJudgerClient,
        psc: &PscChain,
        payment_id: u64,
    ) -> PscTransaction {
        judger.close_payment_tx(
            &self.psc_keys,
            psc.nonce_of(&self.psc_account()),
            payment_id,
        )
    }

    /// Builds a withdrawal of unlocked escrow balance.
    pub fn build_withdraw(
        &self,
        judger: &PayJudgerClient,
        psc: &PscChain,
        amount: u128,
    ) -> PscTransaction {
        judger.withdraw_tx(&self.psc_keys, psc.nonce_of(&self.psc_account()), amount)
    }

    /// Builds the evidence-submission transaction during a dispute.
    pub fn build_evidence_submission(
        &self,
        judger: &PayJudgerClient,
        psc: &PscChain,
        payment_id: u64,
        evidence: SpvEvidence,
    ) -> PscTransaction {
        judger.submit_evidence_tx(
            &self.psc_keys,
            psc.nonce_of(&self.psc_account()),
            self.psc_account(),
            payment_id,
            evidence,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_keys() {
        let a = Customer::from_seed(b"alice");
        let b = Customer::from_seed(b"alice");
        let c = Customer::from_seed(b"carol");
        assert_eq!(a.psc_account(), b.psc_account());
        assert_ne!(a.psc_account(), c.psc_account());
        // BTC and PSC identities differ even for the same seed.
        assert_ne!(a.btc_wallet().address().0, a.psc_keys().address().0);
    }

    #[test]
    fn offer_carries_txid() {
        use btcfast_btcsim::transaction::{OutPoint, TxIn, TxOut};
        let customer = Customer::from_seed(b"alice");
        let tx = Transaction::new(
            vec![TxIn::spend(OutPoint {
                txid: Hash256([1; 32]),
                vout: 0,
            })],
            vec![TxOut::payment(
                Amount::from_sats(5).unwrap(),
                customer.btc_wallet().address(),
            )],
        );
        let txid = tx.txid();
        let offer = customer.make_offer(tx, 3, 5);
        assert_eq!(offer.txid(), txid);
        assert_eq!(offer.payment_id, 3);
        assert_eq!(offer.escrow_customer, customer.psc_account());
    }
}
