//! Nakamoto's double-spend analysis (Bitcoin whitepaper, section 11).
//!
//! The attacker with hashrate fraction `q` secretly mines while the merchant
//! waits for `z` confirmations. Attacker progress is approximated as
//! Poisson with mean `λ = z·q/p`; catching up from deficit `d` succeeds with
//! probability `(q/p)^d`.

use crate::mathutil::poisson_pmf;

/// Probability a double-spend succeeds against a merchant who waits for
/// `z` confirmations, per Nakamoto's formula.
///
/// Returns 1 for `q >= 0.5` (a majority attacker always wins eventually).
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
pub fn attack_success(q: f64, z: u64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "attacker hashrate must be in (0,1)");
    if q >= 0.5 {
        return 1.0;
    }
    if z == 0 {
        return 1.0;
    }
    let p = 1.0 - q;
    let lambda = z as f64 * q / p;
    let ratio = q / p;
    let mut probability = 1.0;
    for k in 0..=z {
        let catch_up = ratio.powi((z - k) as i32);
        probability -= poisson_pmf(k, lambda) * (1.0 - catch_up);
    }
    probability.clamp(0.0, 1.0)
}

/// The smallest confirmation count `z` such that the attack success
/// probability drops below `threshold` — Nakamoto's "how long to wait"
/// table. Returns `None` if no `z <= cap` suffices (e.g. `q >= 0.5`).
pub fn confirmations_for_risk(q: f64, threshold: f64, cap: u64) -> Option<u64> {
    (0..=cap).find(|&z| attack_success(q, z) < threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// Values published in the Bitcoin whitepaper, section 11.
    #[test]
    fn whitepaper_table_q_10_percent() {
        let expected = [
            (0u64, 1.0),
            (1, 0.2045873),
            (2, 0.0509779),
            (3, 0.0131722),
            (4, 0.0034552),
            (5, 0.0009137),
            (6, 0.0002428),
            (7, 0.0000647),
            (8, 0.0000173),
            (9, 0.0000046),
            (10, 0.0000012),
        ];
        for (z, p) in expected {
            close(attack_success(0.1, z), p, 5e-7);
        }
    }

    #[test]
    fn whitepaper_table_q_30_percent() {
        let expected = [
            (0u64, 1.0),
            (5, 0.1773523),
            (10, 0.0416605),
            (15, 0.0101008),
            (20, 0.0024804),
            (25, 0.0006132),
            (30, 0.0001522),
            (35, 0.0000379),
            (40, 0.0000095),
            (45, 0.0000024),
            (50, 0.0000006),
        ];
        for (z, p) in expected {
            close(attack_success(0.3, z), p, 5e-7);
        }
    }

    #[test]
    fn majority_always_wins() {
        assert_eq!(attack_success(0.5, 100), 1.0);
        assert_eq!(attack_success(0.7, 100), 1.0);
    }

    #[test]
    fn monotone_decreasing_in_z() {
        for q in [0.05, 0.15, 0.25, 0.4] {
            let mut last = 1.1;
            for z in 0..30 {
                let v = attack_success(q, z);
                assert!(v <= last + 1e-12, "q={q} z={z}");
                last = v;
            }
        }
    }

    #[test]
    fn monotone_increasing_in_q() {
        for z in [1u64, 3, 6, 12] {
            let mut last = 0.0;
            for i in 1..10 {
                let q = i as f64 * 0.05;
                let v = attack_success(q, z);
                assert!(v >= last - 1e-12, "q={q} z={z}");
                last = v;
            }
        }
    }

    #[test]
    fn whitepaper_less_than_0_1_percent_table() {
        // Nakamoto: "Solving for P less than 0.1%".
        assert_eq!(confirmations_for_risk(0.10, 0.001, 400), Some(5));
        assert_eq!(confirmations_for_risk(0.15, 0.001, 400), Some(8));
        assert_eq!(confirmations_for_risk(0.20, 0.001, 400), Some(11));
        assert_eq!(confirmations_for_risk(0.25, 0.001, 400), Some(15));
        assert_eq!(confirmations_for_risk(0.30, 0.001, 400), Some(24));
        assert_eq!(confirmations_for_risk(0.35, 0.001, 400), Some(41));
        assert_eq!(confirmations_for_risk(0.40, 0.001, 400), Some(89));
        assert_eq!(confirmations_for_risk(0.45, 0.001, 400), Some(340));
    }

    #[test]
    fn no_confirmation_count_tames_majority() {
        assert_eq!(confirmations_for_risk(0.5, 0.001, 1000), None);
    }

    #[test]
    #[should_panic(expected = "hashrate")]
    fn rejects_bad_q() {
        attack_success(0.0, 6);
    }
}
