//! Poisson-process helpers: exponential inter-arrival times for block
//! discovery.
//!
//! Bitcoin block discovery is a Poisson process with rate `1/600 s⁻¹`; when
//! miners split hashrate, each miner's discoveries form an independent
//! thinned process. The simulation drives miner events with these samples.

use crate::time::SimTime;
use rand::Rng;

/// Samples an exponential inter-arrival time with the given mean.
///
/// # Panics
///
/// Panics unless `mean_secs` is positive and finite.
pub fn exponential<R: Rng + ?Sized>(mean_secs: f64, rng: &mut R) -> SimTime {
    assert!(
        mean_secs.is_finite() && mean_secs > 0.0,
        "mean must be positive"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimTime::from_secs_f64(-mean_secs * u.ln())
}

/// A per-miner block arrival process: total network interval `interval_secs`
/// split by `hashrate_share`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockArrivals {
    /// Expected whole-network block interval in seconds.
    pub interval_secs: f64,
    /// This miner's share of total hashrate, in `(0, 1]`.
    pub hashrate_share: f64,
}

impl BlockArrivals {
    /// Creates a process for one miner.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hashrate_share <= 1` and `interval_secs > 0`.
    pub fn new(interval_secs: f64, hashrate_share: f64) -> BlockArrivals {
        assert!(interval_secs > 0.0, "interval must be positive");
        assert!(
            hashrate_share > 0.0 && hashrate_share <= 1.0,
            "hashrate share must be in (0, 1]"
        );
        BlockArrivals {
            interval_secs,
            hashrate_share,
        }
    }

    /// This miner's expected time between blocks.
    pub fn mean_secs(&self) -> f64 {
        self.interval_secs / self.hashrate_share
    }

    /// Samples the time until this miner's next block.
    pub fn next_block_in<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        exponential(self.mean_secs(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| exponential(600.0, &mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((550.0..650.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn exponential_always_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(exponential(1.0, &mut rng) > SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        exponential(0.0, &mut rng);
    }

    #[test]
    fn thinned_process_scales_mean() {
        let honest = BlockArrivals::new(600.0, 0.9);
        let attacker = BlockArrivals::new(600.0, 0.1);
        assert!((honest.mean_secs() - 666.67).abs() < 0.01);
        assert_eq!(attacker.mean_secs(), 6000.0);
    }

    #[test]
    fn split_processes_sum_to_network_rate() {
        // Rate(honest) + rate(attacker) == network rate.
        let q = 0.3;
        let honest = BlockArrivals::new(600.0, 1.0 - q);
        let attacker = BlockArrivals::new(600.0, q);
        let total_rate = 1.0 / honest.mean_secs() + 1.0 / attacker.mean_secs();
        assert!((total_rate - 1.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hashrate")]
    fn bad_share_panics() {
        BlockArrivals::new(600.0, 0.0);
    }
}
