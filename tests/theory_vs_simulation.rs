//! Integration: the analytical models against the simulators — each theory
//! curve must match what the machinery actually does.

use btcfast_suite::analysis::waiting::ConfirmationWait;
use btcfast_suite::analysis::{nakamoto, rosenfeld};
use btcfast_suite::btcsim::attack::{race_probability_monte_carlo, RaceParams};
use btcfast_suite::protocol::{FastPaySession, SessionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn race_simulation_matches_rosenfeld_theory() {
    let mut rng = StdRng::seed_from_u64(1);
    for (q, z) in [(0.1, 2u64), (0.2, 3), (0.3, 4)] {
        let theory = rosenfeld::attack_success(q, z);
        let simulated = race_probability_monte_carlo(
            &RaceParams {
                attacker_hashrate: q,
                confirmations: z,
                give_up_deficit: 80,
                required_lead: 0,
            },
            60_000,
            &mut rng,
        );
        let rel = (simulated - theory).abs() / theory;
        assert!(
            rel < 0.15,
            "q={q} z={z}: simulated {simulated} vs theory {theory} (rel {rel})"
        );
    }
}

#[test]
fn nakamoto_is_a_lower_bound_on_simulation() {
    let mut rng = StdRng::seed_from_u64(2);
    for (q, z) in [(0.15, 3u64), (0.25, 4)] {
        let nak = nakamoto::attack_success(q, z);
        let simulated = race_probability_monte_carlo(
            &RaceParams {
                attacker_hashrate: q,
                confirmations: z,
                give_up_deficit: 80,
                required_lead: 0,
            },
            40_000,
            &mut rng,
        );
        assert!(
            simulated > nak * 0.8,
            "q={q} z={z}: simulated {simulated} vs nakamoto {nak}"
        );
    }
}

#[test]
fn baseline_waiting_matches_erlang_mean() {
    // Average simulated 6-conf waits over several sessions and compare to
    // the Erlang mean (3600 s at 600 s blocks).
    let trials = 12;
    let mut total = 0.0;
    for t in 0..trials {
        let mut session = FastPaySession::new(SessionConfig::default(), 400 + t);
        let report = session
            .run_baseline_payment(500_000, 6)
            .expect("baseline payment");
        total += report.waiting.as_secs_f64();
    }
    let mean = total / trials as f64;
    let theory = ConfirmationWait::new(6, 600.0).mean_secs();
    // Std-error at 12 trials is ~±425 s; accept a generous band.
    assert!(
        (theory * 0.5..theory * 1.6).contains(&mean),
        "simulated mean {mean} vs theory {theory}"
    );
}

#[test]
fn full_machinery_attack_rate_tracks_theory_at_high_hashrate() {
    // At q = 0.75 with a 25-block horizon, theory says near-certain race
    // success; the full block-level machinery must agree.
    let trials = 4;
    let mut wins = 0;
    for t in 0..trials {
        let config = SessionConfig {
            challenge_window_secs: 100_000,
            ..SessionConfig::default()
        };
        let mut session = FastPaySession::new(config, 500 + t);
        let report = session
            .run_double_spend_attack(1_000_000, 0.75, 25)
            .expect("attack");
        wins += report.attacker_won_race as u32;
    }
    assert_eq!(wins, trials as u32, "majority attacker must always win");
}
