//! E5's verification kernel as a µ-benchmark: on-chain evidence validation
//! cost versus header depth.

use btcfast_btcsim::chain::Chain;
use btcfast_btcsim::miner::Miner;
use btcfast_btcsim::params::ChainParams;
use btcfast_btcsim::spv::SpvEvidence;
use btcfast_crypto::keys::KeyPair;
use btcfast_crypto::Hash256;
use btcfast_payjudger::evidence::{verify_on_chain, EvidenceBundle};
use btcfast_pscsim::account::AccountId;
use btcfast_pscsim::contract::HostStorage;
use btcfast_pscsim::gas::{GasMeter, GasSchedule};
use btcfast_pscsim::state::WorldState;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn build_chain(blocks: u64) -> Chain {
    let params = ChainParams::regtest();
    let mut chain = Chain::new(params.clone());
    let mut miner = Miner::new(params, KeyPair::from_seed(b"ev bench").address());
    for i in 1..=blocks {
        let block = miner.mine_block(&chain, vec![], i * 600);
        chain.submit_block(block).unwrap();
    }
    chain
}

fn bench_verify_on_chain(c: &mut Criterion) {
    let chain = build_chain(64);
    let bits = ChainParams::regtest().pow_limit_bits;
    let txid = Hash256([1; 32]);
    let mut group = c.benchmark_group("evidence_verify_on_chain");
    for depth in [8u64, 32, 64] {
        let bundle = EvidenceBundle(SpvEvidence::from_chain(&chain, 1, depth, None));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &bundle, |b, bundle| {
            b.iter(|| {
                let mut world = WorldState::new();
                let mut meter = GasMeter::new(1_000_000_000);
                let schedule = GasSchedule::evm_shaped();
                let mut host = HostStorage {
                    world: &mut world,
                    meter: &mut meter,
                    schedule: &schedule,
                    contract: AccountId([0xCC; 20]),
                    events: Vec::new(),
                    transfers: Vec::new(),
                };
                verify_on_chain(black_box(bundle), &Hash256::ZERO, bits, &txid, &mut host).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bundle_codec(c: &mut Criterion) {
    use btcfast_pscsim::codec::{Decode, Encode};
    let chain = build_chain(32);
    let bundle = EvidenceBundle(SpvEvidence::from_chain(&chain, 1, 32, None));
    let encoded = bundle.encode();
    c.bench_function("evidence_bundle_encode_32", |b| {
        b.iter(|| black_box(&bundle).encode())
    });
    c.bench_function("evidence_bundle_decode_32", |b| {
        b.iter(|| EvidenceBundle::decode(black_box(&encoded)).unwrap())
    });
}

criterion_group!(benches, bench_verify_on_chain, bench_bundle_codec);
criterion_main!(benches);
