//! Simulation time: microsecond resolution, totally ordered, overflow-safe
//! for millennia of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole microseconds.
    pub fn from_micros(micros: u64) -> SimTime {
        SimTime(micros)
    }

    /// From whole milliseconds.
    pub fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    /// From fractional seconds (rounds to the nearest microsecond; negative
    /// values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> SimTime {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e6).round() as u64)
    }

    /// As microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As whole seconds, truncating.
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating difference.
    pub fn saturating_sub(&self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow; use [`SimTime::saturating_sub`] for durations
    /// that may be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("sim time underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(90).as_secs(), 90);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
